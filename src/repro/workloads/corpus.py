"""Seeded synthetic MMF corpora.

Substitute for the proprietary MultiMedia Forum document base (see
DESIGN.md).  Documents are generated from topic vocabularies with a seeded
PRNG, so term placement — which paragraphs mention which topics — is fully
controlled and every run reproduces the same corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sgml.document import Element
from repro.sgml.mmf import build_document

#: Topic vocabularies (mid-1990s digital-library flavour).  The first word
#: of each list is the topic's *signal term* used by query workloads.
TOPICS: Dict[str, List[str]] = {
    "www": [
        "www", "hypertext", "browser", "server", "html", "links", "mosaic",
        "web", "http", "navigation",
    ],
    "nii": [
        "nii", "infrastructure", "policy", "broadband", "national",
        "information", "superhighway", "access", "funding", "initiative",
    ],
    "telnet": [
        "telnet", "protocol", "remote", "login", "terminal", "session",
        "host", "connection", "port", "network",
    ],
    "multimedia": [
        "multimedia", "video", "audio", "image", "animation", "streaming",
        "codec", "synchronization", "presentation", "media",
    ],
    "database": [
        "database", "schema", "transaction", "query", "object", "index",
        "recovery", "concurrency", "persistence", "storage",
    ],
    "retrieval": [
        "retrieval", "relevance", "ranking", "term", "collection",
        "indexing", "precision", "recall", "vagueness", "matching",
    ],
}

#: Neutral filler words that carry no topic signal.
FILLER = [
    "system", "report", "describes", "general", "approach", "several",
    "various", "aspects", "overall", "discussion", "section", "presents",
    "considers", "example", "detail", "context", "current", "recent",
    "development", "results",
]


@dataclass
class GeneratedDocument:
    """A generated document plus its ground truth."""

    element: Element
    title: str
    year: str
    author: str
    paragraph_topics: List[Optional[str]] = field(default_factory=list)


class CorpusGenerator:
    """Deterministic MMF corpus factory.

    Parameters
    ----------
    seed:
        PRNG seed; identical seeds generate identical corpora.
    years:
        Pool of YEAR attribute values.
    authors:
        Pool of AUTHOR attribute values.
    """

    def __init__(
        self,
        seed: int = 42,
        years: Sequence[str] = ("1993", "1994", "1995"),
        authors: Sequence[str] = ("aberer", "boehm", "volz", "klas", "neuhold"),
    ) -> None:
        self._rng = random.Random(seed)
        self._years = list(years)
        self._authors = list(authors)
        self._doc_counter = 0

    # -- text pieces ----------------------------------------------------------

    def paragraph(self, topic: Optional[str], words: int = 20) -> str:
        """One paragraph; ~40% topic words when a topic is given."""
        chosen: List[str] = []
        for _ in range(words):
            if topic is not None and self._rng.random() < 0.4:
                chosen.append(self._rng.choice(TOPICS[topic]))
            else:
                chosen.append(self._rng.choice(FILLER))
        if topic is not None and topic not in chosen:
            chosen[self._rng.randrange(words)] = topic  # guarantee the signal term
        return " ".join(chosen)

    def title(self, topic: Optional[str]) -> str:
        self._doc_counter += 1
        base = topic or self._rng.choice(FILLER)
        return f"{base.title()} Report {self._doc_counter}"

    # -- documents ---------------------------------------------------------------

    def document(
        self,
        topics: Optional[Sequence[Optional[str]]] = None,
        paragraphs: int = 5,
        words_per_paragraph: int = 20,
        sections: int = 0,
        figures: int = 0,
        year: Optional[str] = None,
    ) -> GeneratedDocument:
        """Generate one MMF document.

        ``topics`` fixes the topic of each paragraph (None = filler); when
        omitted, each paragraph independently draws a topic (or none).
        """
        if topics is None:
            topics = [
                self._rng.choice(list(TOPICS) + [None, None])
                for _ in range(paragraphs)
            ]
        main_topic = next((t for t in topics if t), None)
        title = self.title(main_topic)
        year = year or self._rng.choice(self._years)
        author = self._rng.choice(self._authors)
        body = [self.paragraph(t, words_per_paragraph) for t in topics]
        section_specs = []
        for index in range(sections):
            section_topic = self._rng.choice(list(TOPICS))
            section_specs.append(
                {
                    "title": f"Section {index + 1} on {section_topic}",
                    "paragraphs": [
                        self.paragraph(section_topic, words_per_paragraph)
                        for _ in range(2)
                    ],
                }
            )
        figure_captions = [
            self.paragraph(main_topic, 8) for _ in range(figures)
        ]
        element = build_document(
            title,
            body,
            year=year,
            author=author,
            abstract=self.paragraph(main_topic, 12),
            sections=section_specs,
            figures=figure_captions,
        )
        return GeneratedDocument(element, title, year, author, list(topics))

    def corpus(
        self,
        documents: int = 20,
        paragraphs: int = 5,
        words_per_paragraph: int = 20,
        sections: int = 0,
        figures: int = 0,
    ) -> List[GeneratedDocument]:
        """A list of generated documents."""
        return [
            self.document(
                paragraphs=paragraphs,
                words_per_paragraph=words_per_paragraph,
                sections=sections,
                figures=figures,
            )
            for _ in range(documents)
        ]


def load_corpus(system, generated: List[GeneratedDocument]) -> List:
    """Fragment generated documents into a :class:`DocumentSystem`.

    Returns the list of root DBObjects, index-aligned with ``generated``.
    """
    from repro.sgml.mmf import mmf_dtd

    dtd = mmf_dtd()
    system.register_dtd(dtd)
    return [system.add_document(g.element, dtd=dtd) for g in generated]
