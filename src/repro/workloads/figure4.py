"""The exact document base of Figure 4.

"Consider the MMF documents in Figure 6 [sic, printed as Figure 4] together
with the relevances for the terms 'WWW' and 'NII'":

=====  ==========================  =================================
 doc    paragraphs                  relevance pattern
=====  ==========================  =================================
 M1     P1, P2, P3                  P1: WWW only; P2, P3: neither
 M2     P4, P5                      P4: both WWW and NII; P5: neither
 M3     P6, P7, P8                  P6: WWW only; P7: NII only; P8: neither
 M4     P9, P10, P11                P10, P11: NII only; P9: neither
=====  ==========================  =================================

The paper's stipulations are honoured: "the terms 'WWW' and 'NII' are
treated equally by the IRS, and ... the paragraphs are of equal length" —
every paragraph below has exactly :data:`PARAGRAPH_WORDS` words, and the
two terms appear with identical frequencies in symmetric positions.

Expected outcomes for the query ``#and(WWW NII)`` over MMF documents
(paragraphs indexed, document values derived):

* the intuitive ranking is M2 > M3 > M4 (Section 4.5.2: returning only
  documents containing the top paragraph "will be document M2, although M3
  is relevant, too"; and "M3 and M4 ... their IRS values, however, should
  be different, because only M3 is relevant for both terms");
* ``maximum``/``average`` derivation cannot separate M3 from M4;
* the ``subquery`` scheme can.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.collection import _create_collection, index_objects
from repro.sgml.document import Element
from repro.sgml.mmf import build_document

#: Words per paragraph ("the paragraphs are of equal length").
PARAGRAPH_WORDS = 8

_FILLER = ["report", "describes", "general", "matters", "overall", "context"]


def _paragraph(kind: str) -> str:
    """An 8-word paragraph with the requested relevance pattern."""
    if kind == "www":
        words = ["www", "hypertext"] + _FILLER
    elif kind == "nii":
        words = ["nii", "infrastructure"] + _FILLER
    elif kind == "both":
        words = ["www", "nii"] + _FILLER
    elif kind == "none":
        words = ["plain", "matter"] + _FILLER
    else:
        raise ValueError(f"unknown paragraph kind {kind!r}")
    assert len(words) == PARAGRAPH_WORDS
    return " ".join(words)


#: Relevance pattern per document, in paragraph order (P1..P11).
PATTERNS: Dict[str, List[str]] = {
    "M1": ["www", "none", "none"],
    "M2": ["both", "none"],
    "M3": ["www", "nii", "none"],
    "M4": ["none", "nii", "nii"],
}

#: The documents that are relevant to #and(WWW NII) per Section 4.5.2
#: ("The answer will be document M2, although M3 is relevant, too").
EXPECTED_RELEVANT = ["M2", "M3"]

#: The pairwise orderings Section 4.5.2 demands of a good derivation
#: scheme: M2 strictly best, and M3 strictly above M4 ("their IRS values,
#: however, should be different, because only M3 is relevant for both
#: terms").  The M1-vs-M4 order is not constrained by the paper.
EXPECTED_PAIRS = [("M2", "M3"), ("M2", "M4"), ("M2", "M1"), ("M3", "M4"), ("M3", "M1")]


def satisfied_pairs(ranking: List[tuple]) -> List[tuple]:
    """Which of :data:`EXPECTED_PAIRS` a ranking satisfies strictly."""
    values = dict(ranking)
    return [(a, b) for a, b in EXPECTED_PAIRS if values[a] > values[b]]


def figure4_documents() -> Dict[str, Element]:
    """The four MMF document trees, keyed M1..M4."""
    documents = {}
    for name, kinds in PATTERNS.items():
        documents[name] = build_document(
            name,
            [_paragraph(kind) for kind in kinds],
            year="1994",
            logbook="figure4",
        )
    return documents


def load_figure4(system) -> Dict[str, object]:
    """Load the Figure 4 base into a DocumentSystem.

    Returns a dict with:

    * ``roots`` — {"M1": root DBObject, ...}
    * ``paragraphs`` — {"P1": PARA DBObject, ...} numbered in document and
      figure order (P1..P11)
    * ``collection`` — a paragraph-level COLLECTION named ``collPara`` (the
      figure's setting: "only paragraphs are represented in the collection")
    """
    from repro.sgml.mmf import mmf_dtd

    dtd = mmf_dtd()
    system.register_dtd(dtd)
    roots = {}
    paragraphs = {}
    counter = 1
    for name, element in figure4_documents().items():
        root = system.add_document(element, dtd=dtd)
        roots[name] = root
        for child in root.send("getChildren"):
            if child.get("tag") == "PARA":
                paragraphs[f"P{counter}"] = child
                counter += 1
    collection = _create_collection(
        system.db, "collPara", "ACCESS p FROM p IN PARA", derivation="maximum"
    )
    index_objects(collection)
    return {"roots": roots, "paragraphs": paragraphs, "collection": collection}


def rank_documents(roots: Dict[str, object], collection, irs_query: str, scheme: str) -> List[tuple]:
    """Rank M1..M4 for ``irs_query`` under a derivation scheme.

    Returns (name, value) best first, name as tiebreaker.
    """
    collection.set("derivation", scheme)
    # Derived values are amended into the persistent buffer under the same
    # query key, so switching schemes requires invalidating it first.
    collection.set("buffer", {})
    scored = [
        (name, root.send("getIRSValue", collection, irs_query))
        for name, root in roots.items()
    ]
    return sorted(scored, key=lambda kv: (-kv[1], kv[0]))
