"""``repro.workloads`` — corpora, query workloads and metrics.

The paper's MMF document base is proprietary; this package generates
seeded synthetic MMF corpora with controllable topic placement (so every
experiment is reproducible bit-for-bit), reconstructs the exact Figure 4
document base, and provides the counters/metrics the benchmarks print.
"""

from repro.workloads.corpus import CorpusGenerator, TOPICS
from repro.workloads.figure4 import load_figure4, figure4_documents
from repro.workloads.queries import MixedQueryGenerator
from repro.workloads import metrics

__all__ = [
    "CorpusGenerator",
    "TOPICS",
    "load_figure4",
    "figure4_documents",
    "MixedQueryGenerator",
    "metrics",
]
