"""Retrieval metrics and bench-table helpers."""

from __future__ import annotations

from typing import Dict, Sequence


def precision_at_k(ranked: Sequence[str], relevant: Sequence[str], k: int) -> float:
    """Fraction of the top-``k`` results that are relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = list(ranked)[:k]
    if not top:
        return 0.0
    relevant_set = set(relevant)
    return sum(1 for item in top if item in relevant_set) / len(top)


def recall(ranked: Sequence[str], relevant: Sequence[str]) -> float:
    """Fraction of relevant items retrieved anywhere in the ranking."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    return sum(1 for item in relevant_set if item in set(ranked)) / len(relevant_set)


def average_precision(ranked: Sequence[str], relevant: Sequence[str]) -> float:
    """Mean of precision values at each relevant hit (AP)."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    total = 0.0
    for index, item in enumerate(ranked, start=1):
        if item in relevant_set:
            hits += 1
            total += hits / index
    return total / len(relevant_set)


def reciprocal_rank(ranked: Sequence[str], relevant: Sequence[str]) -> float:
    """1/rank of the first relevant item (0 when none retrieved)."""
    relevant_set = set(relevant)
    for index, item in enumerate(ranked, start=1):
        if item in relevant_set:
            return 1.0 / index
    return 0.0


def kendall_tau(order_a: Sequence[str], order_b: Sequence[str]) -> float:
    """Kendall rank correlation between two orderings of the same items.

    1.0 = identical order, -1.0 = reversed.  Items must coincide.
    """
    if set(order_a) != set(order_b):
        raise ValueError("orderings must contain the same items")
    n = len(order_a)
    if n < 2:
        return 1.0
    position = {item: index for index, item in enumerate(order_b)}
    concordant = discordant = 0
    items = list(order_a)
    for i in range(n):
        for j in range(i + 1, n):
            if position[items[i]] < position[items[j]]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def separation(values: Dict[str, float], better: str, worse: str) -> float:
    """How far ``better`` scores above ``worse`` (negative = inversion)."""
    return values[better] - values[worse]


# --------------------------------------------------------------------------
# Plain-text tables for benchmark output
# --------------------------------------------------------------------------

def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align columns for terminal output; floats render with 4 decimals."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled table (used by every benchmark)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
