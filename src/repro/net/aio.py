"""``AsyncSession`` — thin ``asyncio`` wrappers over the synchronous core.

Design (after beaver's "Comprehensive Async API" roadmap): the protocol,
pooling and error handling live **once**, in the synchronous
:class:`~repro.net.client.RemoteSession`; the async surface is a thin
shim that moves each blocking call onto a dedicated thread pool with
``loop.run_in_executor``.  No second protocol implementation to drift,
and the sync and async paths cannot disagree about semantics.

The executor is sized to the underlying connection pool — more threads
could never get more concurrency than there are connections to borrow.
``asyncio.gather`` over N queries therefore genuinely overlaps up to
``pool_size`` round trips:

.. code-block:: python

    session = repro.connect("tcp://127.0.0.1:9000", asynchronous=True)
    results = await asyncio.gather(
        *(session.query("articles", q) for q in queries)
    )
    await session.close()

``AsyncSession`` also wraps *local* sessions (``repro.connect(system,
asynchronous=True)``): the same await-based application code then runs
in-process — the transport is a deployment decision, not an API one.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.service.executor import _UNSET


class AsyncSession:
    """Awaitable facade over a synchronous session (remote or local).

    Every method mirrors the Session contract; each call runs the
    underlying blocking method on the wrapper's thread pool and awaits
    the result, so exceptions (the full ReproError taxonomy, including
    the network errors) propagate unchanged to the awaiting task.
    """

    def __init__(self, session: Any, max_workers: Optional[int] = None) -> None:
        self.session = session
        if max_workers is None:
            config = getattr(session, "config", None)
            max_workers = getattr(config, "pool_size", None) or 8
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-async"
        )
        self._closed = False

    async def _run(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, lambda: fn(*args, **kwargs)
        )

    # -- collection management ---------------------------------------------

    async def create_collection(
        self, name: str, spec_query: str = "", **options: Any
    ):
        return await self._run(
            self.session.create_collection, name, spec_query, **options
        )

    async def collection(self, name: str):
        return await self._run(self.session.collection, name)

    async def collections(self) -> List[str]:
        return await self._run(self.session.collections)

    async def index(self, collection_obj: Any, **options: Any) -> bool:
        return await self._run(self.session.index, collection_obj, **options)

    async def propagate(self, collection_obj: Any) -> int:
        return await self._run(self.session.propagate, collection_obj)

    async def remove(self, collection_obj: Any, obj: Any) -> None:
        return await self._run(self.session.remove, collection_obj, obj)

    # -- querying -----------------------------------------------------------

    async def query(
        self,
        collection_obj: Any,
        irs_query: str,
        model: Optional[str] = None,
        timeout: Any = _UNSET,
        top_k: Optional[int] = None,
    ):
        return await self._run(
            self.session.query, collection_obj, irs_query, model, timeout, top_k
        )

    async def query_batch(self, items: Sequence[Any], timeout: Any = _UNSET) -> List:
        return await self._run(self.session.query_batch, items, timeout)

    async def find_value(
        self, collection_obj: Any, irs_query: str, obj: Any
    ) -> float:
        return await self._run(
            self.session.find_value, collection_obj, irs_query, obj
        )

    async def execute(
        self,
        text: str,
        bindings: Optional[Dict[str, Any]] = None,
        timeout: Any = _UNSET,
    ) -> List[tuple]:
        return await self._run(self.session.execute, text, bindings, timeout)

    # -- operations ---------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self._run(self.session.ping)

    async def health(self, slo_seconds: Optional[float] = None) -> Dict[str, Any]:
        return await self._run(self.session.health, slo_seconds)

    async def checkpoint(self) -> Dict[str, Any]:
        return await self._run(self.session.checkpoint)

    # -- lifecycle ----------------------------------------------------------

    async def close(self) -> None:
        """Close the wrapped session, then retire the thread pool."""
        if self._closed:
            return
        self._closed = True
        await self._run(self.session.close)
        self._executor.shutdown(wait=False)

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<AsyncSession over {self.session!r} {state}>"
