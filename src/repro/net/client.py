"""``RemoteSession`` — the Session contract over a socket.

A remote session exposes the same methods, the same typed results and the
same error hierarchy as the in-process :class:`repro.Session`; the only
visible differences are inherent to distribution:

* collections are addressed by **name** (a :class:`RemoteCollection`
  handle or a plain string) — object handles do not cross the wire;
* ``ScoredHit.element`` resolves to an eagerly materialized
  :class:`RemoteElement` snapshot shipped with the response (the
  in-process lazy dereference degrades to eager materialization over the
  wire; ``materialize=False`` trades it away for half the payload);
* transport failures surface as :class:`~repro.errors.ConnectionLostError`
  — a new error case in-process callers never see.

Rankings, scores and epoch tags are identical to in-process results (the
remote equivalence suite asserts bit-equality), and
``ResultSet.telemetry`` is rebuilt from the telemetry that rides on every
response.

Connections come from a bounded pool: a request borrows one connection
for its round trip, so ``pool_size`` caps in-flight concurrency per
session.  Connecting retries with jittered exponential backoff; a broken
connection is discarded, never silently retried mid-request.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    RequestTimeoutError,
    ServiceClosedError,
)
from repro.net import wire
from repro.net.config import ClientConfig
from repro.obs.telemetry import RequestTelemetry
from repro.oodb.oid import OID
from repro.service.executor import _UNSET
from repro.service.results import ResultSet, ScoredHit


class RemoteElement:
    """An eagerly materialized snapshot of a database object.

    What a remote client gets instead of a live :class:`DBObject`: the
    OID, the class, and the JSON-safe attribute values at response time.
    Read-only — mutating a snapshot cannot mean anything useful.
    """

    __slots__ = ("oid", "class_name", "attributes")

    def __init__(self, oid: OID, class_name: str, attributes: Dict[str, Any]) -> None:
        self.oid = oid
        self.class_name = class_name
        self.attributes = attributes

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RemoteElement":
        return cls(
            OID.parse(payload["oid"]),
            payload.get("class", ""),
            payload.get("attributes") or {},
        )

    def get(self, name: str, default: Any = None) -> Any:
        """Attribute access, mirroring ``DBObject.get``."""
        return self.attributes.get(name, default)

    def isa(self, class_name: str) -> bool:
        """Exact-class check (the snapshot does not carry the ancestry)."""
        return self.class_name == class_name

    def __eq__(self, other) -> bool:
        if isinstance(other, RemoteElement):
            return self.oid == other.oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.oid)

    def __repr__(self) -> str:
        return f"<RemoteElement {self.class_name} {self.oid}>"


class RemoteHit(ScoredHit):
    """A ScoredHit whose element was materialized server-side."""

    __slots__ = ("_element",)

    def __init__(
        self, oid: OID, score: float, element: Optional[RemoteElement] = None
    ) -> None:
        super().__init__(oid, score, None)
        self._element = element

    @property
    def element(self) -> Optional[RemoteElement]:
        return self._element


class RemoteCollection:
    """A named handle onto a server-side COLLECTION object."""

    __slots__ = ("name", "oid")

    def __init__(self, name: str, oid: Optional[OID] = None) -> None:
        self.name = name
        self.oid = oid

    def get(self, attr: str, default: Any = None) -> Any:
        """Minimal ``DBObject.get`` compatibility for workload code."""
        if attr == "irs_name":
            return self.name
        return default

    def __repr__(self) -> str:
        return f"<RemoteCollection {self.name!r}>"


# --------------------------------------------------------------------------
# Connection pool
# --------------------------------------------------------------------------

class _Connection:
    """One pooled socket plus its per-connection request-id counter."""

    __slots__ = ("sock", "ids")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.ids = itertools.count(1)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best effort
            pass


class ConnectionPool:
    """Bounded pool of connections to one server address.

    ``acquire`` hands out an idle connection, dials a new one while under
    ``pool_size``, or blocks until a borrower returns one.  Dialing
    retries with jittered exponential backoff (the server may be
    restarting); once the attempt budget is spent,
    :class:`~repro.errors.ConnectionLostError` propagates.
    """

    def __init__(self, address: Tuple[str, int], config: ClientConfig) -> None:
        self.address = address
        self.config = config
        self._idle: List[_Connection] = []
        self._total = 0
        self._closed = False
        self._condition = threading.Condition()
        self._rng = random.Random(config.retry_seed)

    def acquire(self) -> _Connection:
        with self._condition:
            while True:
                if self._closed:
                    raise ServiceClosedError("remote session already closed")
                if self._idle:
                    return self._idle.pop()
                if self._total < self.config.pool_size:
                    self._total += 1
                    break
                self._condition.wait(timeout=0.5)
        try:
            return self._connect()
        except BaseException:
            with self._condition:
                self._total -= 1
                self._condition.notify()
            raise

    def release(self, connection: _Connection) -> None:
        with self._condition:
            if self._closed:
                connection.close()
                self._total -= 1
            else:
                self._idle.append(connection)
            self._condition.notify()

    def discard(self, connection: _Connection) -> None:
        """Drop a connection whose stream can no longer be trusted."""
        connection.close()
        with self._condition:
            self._total -= 1
            self._condition.notify()

    def close(self) -> None:
        with self._condition:
            self._closed = True
            idle, self._idle = self._idle, []
            self._total -= len(idle)
            self._condition.notify_all()
        for connection in idle:
            connection.close()

    @property
    def stats(self) -> Dict[str, int]:
        with self._condition:
            return {"total": self._total, "idle": len(self._idle)}

    def _connect(self) -> _Connection:
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.config.connect_attempts + 1):
            try:
                sock = socket.create_connection(
                    self.address, timeout=self.config.connect_timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return _Connection(sock)
            except OSError as exc:
                last_error = exc
                if attempt >= self.config.connect_attempts:
                    break
                backoff = min(
                    self.config.backoff_cap,
                    self.config.backoff_base * (2 ** (attempt - 1)),
                ) * (0.5 + self._rng.random())
                time.sleep(backoff)
        raise ConnectionLostError(
            f"could not connect to {self.address[0]}:{self.address[1]} "
            f"after {self.config.connect_attempts} attempts: {last_error}"
        ) from last_error


# --------------------------------------------------------------------------
# The remote session
# --------------------------------------------------------------------------

CollectionRef = Union[RemoteCollection, str]


class RemoteSession:
    """A client's handle onto a remote document system.

    Build one with :func:`repro.connect` (``repro.connect("tcp://host:port")``)
    or directly from an ``(host, port)`` address.  Thread-safe: concurrent
    callers share the connection pool.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        config: Optional[ClientConfig] = None,
        **options: Any,
    ) -> None:
        if config is None:
            config = ClientConfig(**options)
        elif options:
            raise ValueError("pass either config= or keyword options, not both")
        if isinstance(address, str):
            from repro.net import parse_address

            address = parse_address(address)
        self.address = (address[0], int(address[1]))
        self.config = config
        self._pool = ConnectionPool(self.address, config)
        self._closed = False

    # -- introspection ------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Remote execution is always mediated by the server's session."""
        return True

    @property
    def pool_stats(self) -> Dict[str, int]:
        return self._pool.stats

    # -- plumbing -----------------------------------------------------------

    def _call(self, op: str, params: Dict[str, Any], timeout: Any = _UNSET):
        """One request/response round trip on a pooled connection."""
        if self._closed:
            raise ServiceClosedError("remote session already closed")
        effective = (
            self.config.request_timeout if timeout is _UNSET else timeout
        )
        connection = self._pool.acquire()
        try:
            connection.sock.settimeout(effective)
            request_id = next(connection.ids)
            wire.send_frame(
                connection.sock,
                wire.request_envelope(request_id, op, params),
                self.config.max_frame_bytes,
            )
            response = wire.recv_frame(connection.sock, self.config.max_frame_bytes)
        except socket.timeout:
            # The response may still arrive later; this socket would
            # misdeliver it to the next request.  Discard, then surface
            # the deadline exactly like the in-process service does.
            self._pool.discard(connection)
            raise RequestTimeoutError(
                f"remote {op} did not complete within {effective}s"
            ) from None
        except BaseException:
            self._pool.discard(connection)
            raise
        if response is None:
            self._pool.discard(connection)
            raise ConnectionLostError(f"server closed the connection during {op}")
        if response.get("ok"):
            wire.check_version(response)
            if response.get("id") != request_id:
                self._pool.discard(connection)
                raise ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id}"
                )
            self._pool.release(connection)
            return response.get("result"), response.get("telemetry")
        # Typed remote failure.  Envelopes without an id (connection-level
        # rejections) also close the server side; drop ours to match.
        if response.get("id") == request_id:
            self._pool.release(connection)
        else:
            self._pool.discard(connection)
        wire.raise_from_envelope(response)

    @staticmethod
    def _collection_name(collection_obj: CollectionRef) -> str:
        if isinstance(collection_obj, RemoteCollection):
            return collection_obj.name
        if isinstance(collection_obj, str) and collection_obj:
            return collection_obj
        name = getattr(collection_obj, "get", lambda *_: None)("irs_name")
        if isinstance(name, str) and name:
            return name
        raise ProtocolError(
            f"cannot address collection {collection_obj!r} remotely; "
            "pass a RemoteCollection or a collection name"
        )

    @staticmethod
    def _oid_text(obj: Any) -> str:
        if isinstance(obj, OID):
            return str(obj)
        if isinstance(obj, str):
            return obj
        oid = getattr(obj, "oid", None)
        if oid is not None:
            return str(oid)
        raise ProtocolError(f"cannot address object {obj!r} remotely")

    def _decode_result_set(self, packed: Dict[str, Any], telemetry) -> ResultSet:
        hits = []
        for hit in packed.get("hits", ()):
            element = (
                RemoteElement.from_payload(hit[2])
                if len(hit) > 2 and hit[2] is not None
                else None
            )
            hits.append(RemoteHit(OID.parse(hit[0]), hit[1], element))
        result = ResultSet(
            hits,
            collection=packed.get("collection", ""),
            query=packed.get("query", ""),
            model=packed.get("model"),
            epoch=packed.get("epoch"),
        )
        if telemetry is not None:
            result.telemetry = RequestTelemetry.from_dict(telemetry)
        return result

    # -- collection management ---------------------------------------------

    def create_collection(
        self, name: str, spec_query: str = "", **options: Any
    ) -> RemoteCollection:
        """Create a COLLECTION on the server; returns a named handle."""
        result, _ = self._call(
            "create_collection",
            {"name": name, "spec_query": spec_query, "options": options},
        )
        return RemoteCollection(result["name"], OID.parse(result["oid"]))

    def collection(self, name: str) -> RemoteCollection:
        """Handle onto an existing collection (server-checked)."""
        self._call("pending", {"collection": name})
        return RemoteCollection(name)

    def collections(self) -> List[str]:
        """Names of every collection on the server."""
        result, _ = self._call("collections", {})
        return result

    def index(self, collection_obj: CollectionRef, **options: Any) -> bool:
        """Run ``indexObjects`` on the server."""
        result, _ = self._call(
            "index",
            {
                "collection": self._collection_name(collection_obj),
                "options": options,
            },
        )
        return result

    def propagate(self, collection_obj: CollectionRef) -> int:
        """Apply pending deferred updates on the server now."""
        result, _ = self._call(
            "propagate", {"collection": self._collection_name(collection_obj)}
        )
        return result

    def remove(self, collection_obj: CollectionRef, obj: Any) -> None:
        """Remove ``obj``'s documents from the collection (``deleteObject``)."""
        self._call(
            "remove",
            {
                "collection": self._collection_name(collection_obj),
                "oid": self._oid_text(obj),
            },
        )

    # -- querying -----------------------------------------------------------

    def query(
        self,
        collection_obj: CollectionRef,
        irs_query: str,
        model: Optional[str] = None,
        timeout: Any = _UNSET,
        top_k: Optional[int] = None,
    ) -> ResultSet:
        """``getIRSResult`` over the wire: identical ranking, scores, epoch."""
        result, telemetry = self._call(
            "query",
            {
                "collection": self._collection_name(collection_obj),
                "irs_query": irs_query,
                "model": model,
                "top_k": top_k,
                "include_elements": self.config.materialize,
            },
            timeout,
        )
        return self._decode_result_set(result, telemetry)

    def query_batch(
        self, items: Sequence[Any], timeout: Any = _UNSET
    ) -> List[ResultSet]:
        """Run many IRS queries in one round trip (one server batch window)."""
        encoded = []
        for item in items:
            collection_obj, irs_query = item[0], item[1]
            encoded.append(
                {
                    "collection": self._collection_name(collection_obj),
                    "irs_query": irs_query,
                    "model": item[2] if len(item) > 2 else None,
                    "top_k": item[3] if len(item) > 3 else None,
                }
            )
        result, _ = self._call(
            "query_batch",
            {"items": encoded, "include_elements": self.config.materialize},
            timeout,
        )
        return [
            self._decode_result_set(packed, packed.get("telemetry"))
            for packed in result
        ]

    def find_value(
        self, collection_obj: CollectionRef, irs_query: str, obj: Any
    ) -> float:
        """``findIRSValue`` over the wire (derivation runs server-side)."""
        result, _ = self._call(
            "find_value",
            {
                "collection": self._collection_name(collection_obj),
                "irs_query": irs_query,
                "oid": self._oid_text(obj),
            },
        )
        return result

    def execute(
        self,
        text: str,
        bindings: Optional[Dict[str, Any]] = None,
        timeout: Any = _UNSET,
    ) -> List[tuple]:
        """Run a mixed OODBMS query; objects come back as RemoteElements."""
        encoded_bindings = None
        if bindings is not None:
            encoded_bindings = {}
            for key, value in bindings.items():
                if isinstance(value, RemoteCollection):
                    # Collections resolve by name server-side; a handle from
                    # ``collection()`` may not even know its OID.
                    encoded_bindings[key] = {
                        wire.OBJECT_TAG: {"collection": value.name}
                    }
                elif isinstance(value, RemoteElement) or hasattr(value, "oid"):
                    encoded_bindings[key] = {
                        wire.OBJECT_TAG: {"oid": self._oid_text(value)}
                    }
                else:
                    encoded_bindings[key] = value
        rows, _ = self._call(
            "execute", {"text": text, "bindings": encoded_bindings}, timeout
        )
        return [tuple(wire.decode_value(row)) for row in rows]

    # -- operations ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Round trip: server liveness, version, protocol."""
        result, _ = self._call("ping", {})
        return result

    def health(self, slo_seconds: Optional[float] = None) -> Dict[str, Any]:
        """The server's ``health()`` report, including its network section."""
        params: Dict[str, Any] = {}
        if slo_seconds is not None:
            params["slo_seconds"] = slo_seconds
        result, _ = self._call("health", params)
        return result

    def checkpoint(self) -> Dict[str, Any]:
        """Checkpoint the server's durable state; returns commit stats.

        The server appends one incremental store checkpoint and then
        checkpoints its OODB; errors (e.g. no durable store behind the
        server) arrive as the mapped :class:`~repro.errors.StoreError`.
        """
        result, _ = self._call("checkpoint", {})
        return result

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<RemoteSession {self.address[0]}:{self.address[1]} "
            f"pool={self.config.pool_size} {state}>"
        )
