"""Tunables of the network layer: one dataclass per side of the socket.

Like :class:`repro.service.config.ServiceConfig`, both are frozen so a
server or client can be described, compared and rebuilt from plain
numbers.  Defaults are sized for hundreds of concurrent clients against
one in-process service on commodity hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.wire import MAX_FRAME_BYTES


@dataclass(frozen=True)
class ServerConfig:
    """Configuration of a :class:`~repro.net.server.DocumentServer`.

    ``host`` / ``port``
        Listen address.  Port 0 (the default) lets the OS pick a free
        port; read it back from ``server.address`` — tests and embedded
        deployments never race for a fixed port.
    ``max_connections``
        Concurrent-connection admission limit.  Connection number
        ``max_connections + 1`` is accepted, answered with one
        :class:`~repro.errors.ServiceOverloadedError` envelope (carrying
        ``retry_after_seconds``) and closed — connection-level
        backpressure, mirroring the request-level admission queue.
    ``max_frame_bytes``
        Frame size ceiling, both directions.
    ``retry_after_seconds``
        The backoff hint attached to overload rejections (both
        connection-level and queue-level).
    ``poll_interval``
        Seconds a connection handler blocks in ``recv`` before rechecking
        the shutdown flag; bounds how long ``stop()`` can take, not
        request latency.
    ``slo_seconds``
        Latency objective forwarded to ``health()`` when served over the
        wire (None: the health module's default).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_connections: int = 128
    max_frame_bytes: int = MAX_FRAME_BYTES
    retry_after_seconds: float = 0.05
    poll_interval: float = 0.2
    slo_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes must be >= 64")
        if self.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


@dataclass(frozen=True)
class ClientConfig:
    """Configuration of a :class:`~repro.net.client.RemoteSession`.

    ``pool_size``
        Maximum pooled connections.  One request borrows one connection
        for its full round trip; ``pool_size`` therefore caps this
        session's in-flight concurrency (further callers block on the
        pool, not on the server).
    ``connect_timeout``
        Seconds one TCP connect attempt may take.
    ``connect_attempts`` / ``backoff_base`` / ``backoff_cap``
        Reconnect policy: up to ``connect_attempts`` tries with jittered
        exponential backoff (``min(cap, base * 2**(attempt-1))``, halved
        to doubled by jitter) before
        :class:`~repro.errors.ConnectionLostError` propagates.
    ``request_timeout``
        Default per-request deadline in seconds (None: wait forever).
        Each call can override it with ``timeout=``.  On expiry the
        connection is discarded (the response may still be in flight —
        reusing the socket would misdeliver it) and
        :class:`~repro.errors.RequestTimeoutError` is raised.
    ``max_frame_bytes``
        Frame size ceiling, both directions.
    ``materialize``
        When True (default), query hits carry eagerly materialized
        element snapshots — the wire's stand-in for the in-process lazy
        ``ScoredHit.element``.  False ships bare ``(oid, score)`` pairs
        (half the payload for rank-only workloads).
    ``retry_seed``
        Seed of the backoff jitter RNG (tests pin it).
    """

    pool_size: int = 4
    connect_timeout: float = 5.0
    connect_attempts: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    request_timeout: Optional[float] = 30.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    materialize: bool = True
    retry_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.connect_attempts < 1:
            raise ValueError("connect_attempts must be >= 1")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive or None")
        if self.max_frame_bytes < 64:
            raise ValueError("max_frame_bytes must be >= 64")
