"""``DocumentServer`` — the coupling served over a socket.

The paper's architecture is inherently client/server: the OODBMS and the
IRS cooperate across process boundaries.  This module finishes the job for
the *callers* too — a threaded TCP server fronting one
:class:`repro.Session` (usually pooled), speaking the
:mod:`repro.net.wire` protocol.

Concurrency model: one accept loop plus one handler thread per
connection.  Requests on one connection run serially (a connection *is*
the client's ordering domain); throughput across clients comes from many
connections feeding the pooled session's batching windows — exactly the
fan-in the service layer was built for.  Two admission layers protect the
process:

* **connections** — beyond ``max_connections`` concurrent connections,
  the newcomer gets one :class:`~repro.errors.ServiceOverloadedError`
  envelope (with a ``retry_after_seconds`` hint) and is closed;
* **requests** — the pooled session's bounded admission queue; its
  :class:`~repro.errors.ServiceOverloadedError` crosses the wire with the
  same hint, and every other :class:`~repro.errors.ReproError` (timeouts,
  unknown collections, query syntax…) crosses as its own type.

Every successful query response carries the request's
:class:`~repro.obs.telemetry.RequestTelemetry` so remote clients keep the
cost-attribution surface in-process callers have.  The server itself is
instrumented: ``net.connections.{active,accepted,rejected}``,
``net.requests.{completed,failed}``, per-endpoint rolling latency
(``net.request.seconds.<op>``) and ``net.request`` spans — all of which
feed ``health()`` and the Prometheus exposition.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core import updates as updates_module
from repro.core.collection import COLLECTION_CLASS
from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    ReproError,
    ServiceOverloadedError,
    UnknownCollectionError,
)
from repro.net import wire
from repro.net.config import ServerConfig
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

logger = logging.getLogger(__name__)


class DocumentServer:
    """Serve a :class:`repro.DocumentSystem` to remote sessions.

    Parameters
    ----------
    system:
        The document system to expose.
    config:
        :class:`~repro.net.config.ServerConfig` tunables.
    session:
        The session requests execute through.  Default: the system's
        inline session; pass a pooled one (``system.open_session(workers=N)``)
        to serve concurrent traffic through batching windows.
    """

    def __init__(
        self,
        system,
        config: Optional[ServerConfig] = None,
        session=None,
    ) -> None:
        self.system = system
        self.config = config or ServerConfig()
        self.session = session if session is not None else system.session
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False
        self._lock = threading.Lock()
        self._handlers: List[threading.Thread] = []
        self._active = 0
        self._address: Optional[Tuple[str, int]] = None
        self._collections: Dict[str, DBObject] = {}
        self.started_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — read after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    @property
    def running(self) -> bool:
        return self._accept_thread is not None and self._accept_thread.is_alive()

    def start(self) -> "DocumentServer":
        """Bind, listen, and start the accept loop (idempotent)."""
        if self._closed:
            raise RuntimeError("server already stopped")
        if self.running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(min(self.config.max_connections, 128))
        listener.settimeout(self.config.poll_interval)
        self._listener = listener
        self._address = listener.getsockname()
        self._stop.clear()
        self.started_at = time.time()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info("document server listening on %s:%d", *self._address)
        return self

    def stop(self) -> None:
        """Stop accepting, close live connections, join handler threads."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.join(timeout=5.0)
        obs.metrics().gauge("net.connections.active").set(0)

    def __enter__(self) -> "DocumentServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- accept loop --------------------------------------------------------

    def _accept_loop(self) -> None:
        registry = obs.metrics()
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if self._active >= self.config.max_connections:
                    overloaded = True
                else:
                    overloaded = False
                    self._active += 1
            if overloaded:
                registry.counter("net.connections.rejected").inc()
                self._reject_connection(conn)
                continue
            registry.counter("net.connections.accepted").inc()
            registry.gauge("net.connections.active").set(self._active)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(conn, peer),
                name=f"repro-net-conn-{peer[1]}",
                daemon=True,
            )
            with self._lock:
                self._handlers.append(handler)
            handler.start()

    def _reject_connection(self, conn: socket.socket) -> None:
        """Connection-level backpressure: one typed rejection, then close."""
        try:
            wire.send_frame(
                conn,
                wire.error_envelope(
                    None,
                    ServiceOverloadedError(
                        f"connection limit reached "
                        f"({self.config.max_connections} concurrent); retry later"
                    ),
                    retry_after_seconds=self.config.retry_after_seconds,
                ),
                self.config.max_frame_bytes,
            )
        except ReproError:
            pass
        finally:
            _close_quietly(conn)

    # -- connection handling ------------------------------------------------

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        conn.settimeout(self.config.poll_interval)
        try:
            while not self._stop.is_set():
                try:
                    request = wire.recv_frame(conn, self.config.max_frame_bytes)
                except socket.timeout:
                    continue
                except ConnectionLostError:
                    break  # peer vanished mid-frame; nothing to answer
                except ProtocolError as exc:
                    # Oversized or malformed frame: the byte stream can no
                    # longer be trusted — answer once and close.
                    self._send_error(conn, None, exc)
                    obs.metrics().counter("net.frames.rejected").inc()
                    break
                if request is None:
                    break  # clean EOF between frames
                if not self._handle_request(conn, request):
                    break
        finally:
            _close_quietly(conn)
            with self._lock:
                self._active -= 1
                self._handlers = [
                    t for t in self._handlers if t is not threading.current_thread()
                ]
            obs.metrics().gauge("net.connections.active").set(self._active)

    def _handle_request(self, conn: socket.socket, request: Dict[str, Any]) -> bool:
        """Dispatch one request; returns False when the connection must close."""
        registry = obs.metrics()
        request_id = request.get("id")
        op = request.get("op")
        started = time.perf_counter()
        try:
            wire.check_version(request)
            if not isinstance(op, str) or not op:
                raise ProtocolError("request is missing its 'op' field")
            handler = self._OPS.get(op)
            if handler is None:
                raise ProtocolError(f"unknown operation {op!r}")
            params = request.get("params")
            if params is None:
                params = {}
            if not isinstance(params, dict):
                raise ProtocolError("'params' must be a JSON object")
            with obs.tracer().span("net.request", op=op):
                result, telemetry = handler(self, params)
            envelope = wire.result_envelope(request_id, result, telemetry)
            registry.counter("net.requests.completed").inc()
        except BaseException as exc:  # every failure crosses as a typed envelope
            retry_after = (
                self.config.retry_after_seconds
                if isinstance(exc, ServiceOverloadedError)
                else None
            )
            envelope = wire.error_envelope(request_id, exc, retry_after)
            registry.counter("net.requests.failed").inc()
            if not isinstance(exc, ReproError):
                logger.exception("unexpected server error handling %r", op)
        elapsed = time.perf_counter() - started
        if isinstance(op, str) and op:
            registry.rolling(f"net.request.seconds.{op}").observe(elapsed)
        try:
            wire.send_frame(conn, envelope, self.config.max_frame_bytes)
        except ReproError:
            return False  # peer gone; drop the connection
        return True

    def _send_error(
        self, conn: socket.socket, request_id: Optional[int], exc: BaseException
    ) -> None:
        try:
            wire.send_frame(
                conn,
                wire.error_envelope(request_id, exc),
                self.config.max_frame_bytes,
            )
        except ReproError:
            pass

    # -- collection addressing ---------------------------------------------

    def _collection(self, name: Any) -> DBObject:
        """Resolve a collection *name* to its COLLECTION object.

        Remote callers address collections by ``irs_name`` — object
        handles do not cross the wire.  The cache is invalidation-free
        because COLLECTION objects are never renamed; a miss rescans.
        """
        if not isinstance(name, str) or not name:
            raise ProtocolError("'collection' must be a non-empty string")
        cached = self._collections.get(name)
        if cached is not None and self.system.db.object_exists(cached.oid):
            return cached
        for obj in self.system.db.instances_of(COLLECTION_CLASS):
            if obj.get("irs_name") == name:
                self._collections[name] = obj
                return obj
        raise UnknownCollectionError(f"no collection named {name!r}")

    def _object(self, oid_text: Any) -> DBObject:
        if not isinstance(oid_text, str):
            raise ProtocolError("'oid' must be an OID string")
        try:
            oid = OID.parse(oid_text)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        return self.system.db.get_object(oid)

    def _decode_bindings(
        self, bindings: Optional[Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        """Rehydrate tagged object references inside mixed-query bindings."""
        if bindings is None:
            return None
        if not isinstance(bindings, dict):
            raise ProtocolError("'bindings' must be a JSON object")
        decoded = {}
        for key, value in bindings.items():
            if isinstance(value, dict) and set(value) == {wire.OBJECT_TAG}:
                reference = value[wire.OBJECT_TAG]
                if "collection" in reference:
                    decoded[key] = self._collection(reference["collection"])
                else:
                    decoded[key] = self._object(reference.get("oid"))
            else:
                decoded[key] = value
        return decoded

    # -- operations ---------------------------------------------------------

    def _op_ping(self, params: Dict[str, Any]):
        import repro

        return (
            {
                "pong": True,
                "protocol": wire.PROTOCOL_VERSION,
                "server_version": repro.__version__,
            },
            None,
        )

    def _op_create_collection(self, params: Dict[str, Any]):
        name = params.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("'name' must be a non-empty string")
        options = params.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")
        collection = self.session.create_collection(
            name, params.get("spec_query") or "", **options
        )
        self._collections[name] = collection
        return {"name": name, "oid": str(collection.oid)}, None

    def _op_index(self, params: Dict[str, Any]):
        collection = self._collection(params.get("collection"))
        options = params.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")
        return self.session.index(collection, **options), None

    def _op_propagate(self, params: Dict[str, Any]):
        collection = self._collection(params.get("collection"))
        return self.session.propagate(collection), None

    def _op_remove(self, params: Dict[str, Any]):
        collection = self._collection(params.get("collection"))
        obj = self._object(params.get("oid"))
        self.session.remove(collection, obj)
        return None, None

    def _op_query(self, params: Dict[str, Any]):
        collection = self._collection(params.get("collection"))
        result = self.session.query(
            collection,
            params.get("irs_query") or "",
            model=params.get("model"),
            top_k=params.get("top_k"),
        )
        include_elements = bool(params.get("include_elements"))
        return self._encode_result_set(result, include_elements)

    def _op_query_batch(self, params: Dict[str, Any]):
        items = params.get("items")
        if not isinstance(items, list):
            raise ProtocolError("'items' must be a list")
        include_elements = bool(params.get("include_elements"))
        batch = []
        for item in items:
            if not isinstance(item, dict):
                raise ProtocolError("each batch item must be a JSON object")
            batch.append(
                (
                    self._collection(item.get("collection")),
                    item.get("irs_query") or "",
                    item.get("model"),
                    item.get("top_k"),
                )
            )
        results = self.session.query_batch(batch)
        encoded = [
            dict(self._pack_result_set(result, include_elements))
            for result in results
        ]
        return encoded, None

    def _op_find_value(self, params: Dict[str, Any]):
        collection = self._collection(params.get("collection"))
        obj = self._object(params.get("oid"))
        return (
            self.session.find_value(collection, params.get("irs_query") or "", obj),
            None,
        )

    def _op_execute(self, params: Dict[str, Any]):
        text = params.get("text")
        if not isinstance(text, str) or not text:
            raise ProtocolError("'text' must be a non-empty string")
        bindings = self._decode_bindings(params.get("bindings"))
        rows = self.session.execute(text, bindings)
        return [wire.encode_value(row) for row in rows], None

    def _op_collections(self, params: Dict[str, Any]):
        names = sorted(
            obj.get("irs_name")
            for obj in self.system.db.instances_of(COLLECTION_CLASS)
            if obj.get("irs_name")
        )
        return names, None

    def _op_health(self, params: Dict[str, Any]):
        slo = params.get("slo_seconds", self.config.slo_seconds)
        report = self.system.health(slo_seconds=slo)
        return report, None

    def _op_pending(self, params: Dict[str, Any]):
        collection = self._collection(params.get("collection"))
        return updates_module.has_pending(collection), None

    def _op_checkpoint(self, params: Dict[str, Any]):
        return self.system.checkpoint(), None

    _OPS = {
        "ping": _op_ping,
        "create_collection": _op_create_collection,
        "index": _op_index,
        "propagate": _op_propagate,
        "remove": _op_remove,
        "query": _op_query,
        "query_batch": _op_query_batch,
        "find_value": _op_find_value,
        "execute": _op_execute,
        "collections": _op_collections,
        "health": _op_health,
        "pending": _op_pending,
        "checkpoint": _op_checkpoint,
    }

    # -- result encoding ----------------------------------------------------

    def _pack_result_set(self, result, include_elements: bool) -> Dict[str, Any]:
        """One ResultSet as a JSON object (hits ranked, floats exact).

        JSON floats round-trip IEEE doubles exactly (``repr`` encoding),
        so remote scores are bit-identical to in-process scores — the
        property the remote equivalence suite asserts.
        """
        if include_elements:
            db = self.system.db
            hits = []
            for hit in result.hits:
                element = (
                    wire.encode_value(db.get_object(hit.oid))[wire.OBJECT_TAG]
                    if db.object_exists(hit.oid)
                    else None
                )
                hits.append([str(hit.oid), hit.score, element])
        else:
            hits = [[str(hit.oid), hit.score] for hit in result.hits]
        packed: Dict[str, Any] = {
            "hits": hits,
            "collection": result.collection,
            "query": result.query,
            "model": result.model,
            "epoch": result.epoch,
        }
        if result.telemetry is not None:
            packed["telemetry"] = result.telemetry.as_dict()
        return packed

    def _encode_result_set(self, result, include_elements: bool):
        packed = self._pack_result_set(result, include_elements)
        telemetry = packed.pop("telemetry", None)
        return packed, telemetry

    # -- introspection ------------------------------------------------------

    def network_section(self) -> Dict[str, Any]:
        """The server's slice of ``health()["network"]``."""
        with self._lock:
            active = self._active
        return {
            "address": list(self._address) if self._address else None,
            "active_connections": active,
            "max_connections": self.config.max_connections,
            "running": self.running,
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        where = f"{self._address[0]}:{self._address[1]}" if self._address else "unbound"
        return f"<DocumentServer {where} {state}>"


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close is best effort
        pass
