"""The wire protocol: length-prefixed JSON frames and typed error envelopes.

The out-of-process document service speaks the simplest protocol that
survives production traffic: every message is one **frame** —

.. code-block:: text

    +----------------+---------------------------+
    | length N       | payload                   |
    | 4 bytes, !I    | N bytes of UTF-8 JSON     |
    +----------------+---------------------------+

The length prefix is an unsigned 32-bit big-endian integer counting the
payload bytes only.  The payload is a single JSON object (never an array
or scalar).  Framing gives the reader exact message boundaries without
scanning for delimiters; JSON keeps the format debuggable with ``nc`` and
heterogeneous clients trivial to write (the representation lesson of
PAPERS.md applies: the frame format, not the handler code, bounds
throughput — and a binary upgrade can ride the same length prefix under a
new protocol version).

Envelopes
---------

Request::

    {"v": 1, "id": 7, "op": "query", "params": {...}}

Success response::

    {"v": 1, "id": 7, "ok": true, "result": ..., "telemetry": {...}?}

Error response::

    {"v": 1, "id": 7, "ok": false,
     "error": {"type": "UnknownCollectionError", "message": "...",
               "cause": "..."?, "retry_after_seconds": 0.05?}}

``error.type`` names a :class:`~repro.errors.ReproError` subclass; the
client re-raises the *same* exception type it would have seen in-process,
so ``except`` clauses written against the in-process API keep working over
the wire.  Unknown types degrade to :class:`~repro.errors.NetworkError`.
``retry_after_seconds`` rides on backpressure rejections
(:class:`~repro.errors.ServiceOverloadedError`) as the server's hint for
client backoff.

Size limits are enforced on **both** sides and on both the send and
receive paths: a reader never allocates more than ``max_bytes`` because of
a hostile or corrupt length prefix.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro import errors as errors_module
from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    NetworkError,
    ProtocolError,
    ReproError,
)

#: Protocol version spoken by this build.  A request carrying a different
#: ``v`` is answered with a ProtocolError envelope (the connection stays
#: usable — version negotiation is per-request, not per-connection).
PROTOCOL_VERSION = 1

#: Default ceiling for one frame's payload (8 MiB).  Large enough for a
#: full ranking over a 100k-document collection, small enough that a
#: corrupt length prefix cannot OOM the receiver.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct("!I")
LENGTH_BYTES = _LENGTH.size


# --------------------------------------------------------------------------
# Frame codec
# --------------------------------------------------------------------------

def encode_frame(payload: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload object into a length-prefixed frame."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    try:
        body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode(
            "utf-8"
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-encodable: {exc}") from exc
    if len(body) > max_bytes:
        raise FrameTooLargeError(
            f"frame payload is {len(body)} bytes; limit is {max_bytes}"
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; malformed or non-object payloads are protocol errors."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed it chunks as they arrive; it yields complete payloads and keeps
    partial frames buffered.  The declared length is validated *before*
    the body is buffered, so an oversized or hostile prefix raises
    :class:`FrameTooLargeError` after only 4 bytes.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list:
        """Absorb ``data``; return the list of payloads completed by it."""
        self._buffer.extend(data)
        payloads = []
        while True:
            if len(self._buffer) < LENGTH_BYTES:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_bytes:
                raise FrameTooLargeError(
                    f"incoming frame declares {length} bytes; limit is {self.max_bytes}"
                )
            if len(self._buffer) < LENGTH_BYTES + length:
                break
            body = bytes(self._buffer[LENGTH_BYTES : LENGTH_BYTES + length])
            del self._buffer[: LENGTH_BYTES + length]
            payloads.append(decode_payload(body))
        return payloads

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)


# --------------------------------------------------------------------------
# Blocking socket I/O
# --------------------------------------------------------------------------

def send_frame(
    sock: socket.socket, payload: Dict[str, Any], max_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Encode and write one frame; transport failures raise ConnectionLostError."""
    frame = encode_frame(payload, max_bytes)
    try:
        sock.sendall(frame)
    except (OSError, ValueError) as exc:
        raise ConnectionLostError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = bytearray()
    while len(chunks) < n:
        try:
            chunk = sock.recv(n - len(chunks))
        except socket.timeout:
            raise
        except OSError as exc:
            raise ConnectionLostError(f"receive failed: {exc}") from exc
        if not chunk:
            if chunks:
                raise ConnectionLostError(
                    f"peer closed mid-frame ({len(chunks)}/{n} bytes read)"
                )
            return None
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF before a frame starts.

    A peer that disappears mid-frame (truncated length or body) raises
    :class:`~repro.errors.ConnectionLostError`; a declared length above
    ``max_bytes`` raises :class:`~repro.errors.FrameTooLargeError` without
    reading the body.
    """
    prefix = _recv_exact(sock, LENGTH_BYTES)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > max_bytes:
        raise FrameTooLargeError(
            f"incoming frame declares {length} bytes; limit is {max_bytes}"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ConnectionLostError("peer closed between length prefix and body")
    return decode_payload(body)


# --------------------------------------------------------------------------
# Envelopes
# --------------------------------------------------------------------------

def request_envelope(
    request_id: int, op: str, params: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "params": params or {},
    }


def result_envelope(
    request_id: Optional[int],
    result: Any,
    telemetry: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }
    if telemetry is not None:
        envelope["telemetry"] = telemetry
    return envelope


def _error_registry() -> Dict[str, type]:
    """Every ReproError subclass by name, discovered from repro.errors."""
    registry: Dict[str, type] = {}
    for name in dir(errors_module):
        candidate = getattr(errors_module, name)
        if (
            isinstance(candidate, type)
            and issubclass(candidate, ReproError)
        ):
            registry[candidate.__name__] = candidate
    return registry


ERROR_TYPES = _error_registry()


def error_envelope(
    request_id: Optional[int],
    exc: BaseException,
    retry_after_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Wrap an exception as a typed wire error.

    Non-Repro exceptions (a server bug) cross the wire as
    :class:`~repro.errors.NetworkError` with the original type in the
    message — internals never leak as opaque 500s, but the client also
    cannot confuse a server crash with a domain error.
    """
    if isinstance(exc, ReproError):
        error: Dict[str, Any] = {
            "type": type(exc).__name__,
            "message": str(exc),
        }
    else:
        error = {
            "type": "NetworkError",
            "message": f"server error: {type(exc).__name__}: {exc}",
        }
    if exc.__cause__ is not None:
        error["cause"] = f"{type(exc.__cause__).__name__}: {exc.__cause__}"
    if retry_after_seconds is not None:
        error["retry_after_seconds"] = retry_after_seconds
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error,
    }


def raise_from_envelope(envelope: Dict[str, Any]) -> None:
    """Re-raise the typed error carried by an ``ok: false`` envelope."""
    error = envelope.get("error") or {}
    type_name = error.get("type", "NetworkError")
    message = error.get("message", "remote error")
    cause = error.get("cause")
    if cause:
        message = f"{message} (caused by {cause})"
    exc_type = ERROR_TYPES.get(type_name, NetworkError)
    try:
        exc = exc_type(message)
    except Exception:
        # A constructor that demands extra arguments still must not mask
        # the remote failure.
        exc = NetworkError(f"{type_name}: {message}")
    retry_after = error.get("retry_after_seconds")
    if retry_after is not None:
        exc.retry_after = retry_after  # type: ignore[attr-defined]
    raise exc


def check_version(payload: Dict[str, Any]) -> None:
    """Reject a request/response from a different protocol version."""
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )


# --------------------------------------------------------------------------
# Value encoding: what may cross the wire inside results
# --------------------------------------------------------------------------

#: Tag for a database object reference inside a JSON value tree.
OBJECT_TAG = "$object"


def encode_value(value: Any) -> Any:
    """Lower an arbitrary result value into JSON-encodable form.

    Scalars pass through; tuples/lists/sets become lists; dict keys become
    strings; a ``DBObject`` becomes a tagged reference carrying its OID,
    class and JSON-safe attributes (the wire's **eager materialization** —
    a remote client cannot dereference lazily, so the element snapshot
    travels with the hit).  Values that cannot be represented degrade to
    ``repr`` strings rather than poisoning the whole response.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    from repro.oodb.objects import DBObject
    from repro.oodb.oid import OID

    if isinstance(value, DBObject):
        attributes = {}
        for name, attr_value in value.database.read_attributes(value.oid).items():
            encoded = encode_value(attr_value)
            if encoded is not None:
                attributes[name] = encoded
        return {
            OBJECT_TAG: {
                "oid": str(value.oid),
                "class": value.class_name,
                "attributes": attributes,
            }
        }
    if isinstance(value, OID):
        return str(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    return repr(value)


def decode_value(value: Any) -> Any:
    """Client-side inverse of :func:`encode_value`.

    Tagged object references come back as :class:`RemoteElement` snapshots
    (see :mod:`repro.net.client`); everything else stays plain JSON.
    """
    if isinstance(value, dict):
        if OBJECT_TAG in value and len(value) == 1:
            from repro.net.client import RemoteElement

            return RemoteElement.from_payload(value[OBJECT_TAG])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value
