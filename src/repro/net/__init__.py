"""The out-of-process document service: wire protocol, server, clients.

``repro.net`` takes the coupling out of the single python heap:

* :mod:`repro.net.wire` — the versioned, length-prefixed JSON wire
  protocol with typed error envelopes;
* :class:`DocumentServer` — a threaded socket server fronting one
  (usually pooled) :class:`repro.Session`;
* :class:`RemoteSession` — the blocking client: connection pool,
  reconnect with backoff, per-request deadlines;
* :class:`AsyncSession` — thin ``asyncio`` wrappers over the sync core;
* :func:`connect` — the transport-agnostic front door (also exported as
  ``repro.connect``).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

from repro.net.aio import AsyncSession
from repro.net.client import (
    ConnectionPool,
    RemoteCollection,
    RemoteElement,
    RemoteHit,
    RemoteSession,
)
from repro.net.config import ClientConfig, ServerConfig
from repro.net.server import DocumentServer
from repro.net.wire import MAX_FRAME_BYTES, PROTOCOL_VERSION

__all__ = [
    "AsyncSession",
    "ClientConfig",
    "ConnectionPool",
    "DocumentServer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RemoteCollection",
    "RemoteElement",
    "RemoteHit",
    "RemoteSession",
    "ServerConfig",
    "connect",
    "parse_address",
]


def parse_address(target: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Normalize ``"tcp://host:port"`` / ``"host:port"`` / ``(host, port)``."""
    if isinstance(target, tuple) and len(target) == 2:
        return (str(target[0]), int(target[1]))
    if isinstance(target, str):
        text = target
        if text.startswith("tcp://"):
            text = text[len("tcp://") :]
        host, separator, port = text.rpartition(":")
        if separator and host and port.isdigit():
            return (host, int(port))
    raise ValueError(
        f"not a server address: {target!r} "
        "(expected 'tcp://host:port', 'host:port', or a (host, port) tuple)"
    )


def connect(
    target: Any,
    *,
    workers: int = 0,
    config: Any = None,
    asynchronous: bool = False,
    **options: Any,
) -> Any:
    """Open a session — local, pooled, or remote — behind one contract.

    The returned object speaks the Session contract (``query`` /
    ``query_batch`` / ``index`` / ``propagate`` / ``remove`` /
    ``find_value`` / ``execute`` / ``health`` / ``ping`` / ``close``)
    with identical :class:`~repro.service.results.ResultSet` semantics
    regardless of transport; only the element representation differs
    (live handles in-process, materialized snapshots over the wire).

    ``target`` selects the transport:

    =====================================  =================================
    target                                  returns
    =====================================  =================================
    a :class:`repro.DocumentSystem`         local session — inline with
                                            ``workers=0`` (default), pooled
                                            with ``workers>=1`` (closed with
                                            the system)
    a :class:`~repro.oodb.database.Database` local session on that database
    ``"tcp://host:port"`` / ``(host, port)`` :class:`RemoteSession`
    a running :class:`DocumentServer`       :class:`RemoteSession` to its
                                            address (loopback convenience)
    =====================================  =================================

    ``asynchronous=True`` wraps the result in :class:`AsyncSession` —
    the same application code then runs ``await``-based over any
    transport.

    Remote keyword options (``pool_size=``, ``request_timeout=``,
    ``materialize=``, …) configure the :class:`ClientConfig`; local ones
    pass through to the session constructor.
    """
    from repro.core.system import DocumentSystem
    from repro.oodb.database import Database
    from repro.service.session import Session

    if isinstance(target, DocumentServer):
        target = target.address
    if isinstance(target, DocumentSystem):
        if workers or config is not None:
            session: Any = target.open_session(
                workers=workers, config=config, **options
            )
        else:
            session = target.session
    elif isinstance(target, Database):
        session = Session(target, workers=workers, config=config, **options)
    else:
        address = parse_address(target)
        if workers:
            raise ValueError(
                "workers= configures local pools; remote concurrency is "
                "the server's — size the client with pool_size= instead"
            )
        session = RemoteSession(address, config=config, **options)
    if asynchronous:
        return AsyncSession(session)
    return session
