"""Exception hierarchy shared by all repro subsystems.

Every subsystem raises subclasses of :class:`ReproError` so applications can
catch coupling-level failures with a single ``except`` clause while still
being able to distinguish database, retrieval and document errors.

Error mapping on the query paths
--------------------------------

The public query surface (``Session.query`` / ``Session.query_batch`` /
``Session.index`` and everything ``DocumentSystem`` delegates to them) never
lets a bare ``KeyError`` / ``ValueError`` / ``TypeError`` escape.  Failures
are routed into the hierarchy as follows:

==============================================  ===============================
Failure                                          Raised as
==============================================  ===============================
malformed VQL text                               :class:`QuerySyntaxError`
well-formed VQL that cannot be evaluated         :class:`QueryEvaluationError`
malformed IRS query expression                   :class:`IRSQuerySyntaxError`
unknown ``#op`` in an IRS query                  :class:`UnknownOperatorError`
unknown retrieval model name                     :class:`UnknownModelError`
unknown / duplicate IRS collection               :class:`UnknownCollectionError` /
                                                 :class:`DuplicateCollectionError`
coupling misuse (bad spec query, no coupling…)   :class:`CouplingError`
lock-manager deadlock victim                     :class:`DeadlockError`
                                                 (retried by the service layer)
lock wait exceeded its timeout                   :class:`LockTimeoutError`
                                                 (retried by the service layer)
retry budget exhausted on the two above          :class:`RetryExhaustedError`
admission queue full (backpressure)              :class:`ServiceOverloadedError`
per-request deadline exceeded                    :class:`RequestTimeoutError`
service used after shutdown                      :class:`ServiceClosedError`
malformed / mis-versioned wire frame             :class:`ProtocolError`
wire frame above the configured size limit       :class:`FrameTooLargeError`
transport failed mid-request                     :class:`ConnectionLostError`
any other internal error on a query path         :class:`QueryError` (mixed/IRS
                                                 queries) or
                                                 :class:`CouplingError` (indexing)
                                                 wrapping the original as
                                                 ``__cause__``
==============================================  ===============================
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# OODBMS errors
# --------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for errors raised by the OODBMS substrate."""


class SchemaError(DatabaseError):
    """A class definition or schema operation is invalid."""


class UnknownClassError(SchemaError):
    """A referenced database class does not exist."""


class UnknownAttributeError(SchemaError):
    """An attribute is not defined on a class or any of its superclasses."""


class UnknownMethodError(SchemaError):
    """A method is not defined on a class or any of its superclasses."""


class ObjectNotFoundError(DatabaseError):
    """No object with the requested OID exists."""


class TransactionError(DatabaseError):
    """A transaction was used incorrectly (e.g. commit after abort)."""


class DeadlockError(TransactionError):
    """The lock manager detected a deadlock and chose this transaction as victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class QueryError(DatabaseError):
    """Base class for query language errors."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""


class QueryEvaluationError(QueryError):
    """The query is well-formed but could not be evaluated."""


class IndexError_(DatabaseError):
    """An index operation failed (name shadows builtin intentionally avoided)."""


class RecoveryError(DatabaseError):
    """The write-ahead log could not be replayed."""


# --------------------------------------------------------------------------
# IRS errors
# --------------------------------------------------------------------------

class RetrievalError(ReproError):
    """Base class for errors raised by the IRS substrate."""


class UnknownCollectionError(RetrievalError):
    """The referenced IRS collection does not exist."""


class DuplicateCollectionError(RetrievalError):
    """An IRS collection with the requested name already exists."""


class IRSQuerySyntaxError(RetrievalError):
    """An IRS query expression could not be parsed."""


class UnknownOperatorError(IRSQuerySyntaxError):
    """An IRS query used an operator the engine does not know."""


class DocumentMissingError(RetrievalError):
    """An IRS document id was not found in the collection."""


class UnknownModelError(RetrievalError, ValueError):
    """The requested retrieval model name is not registered.

    Also inherits :class:`ValueError` for back-compatibility with callers
    written against the pre-Session engine API, which raised bare
    ``ValueError`` here.
    """


# --------------------------------------------------------------------------
# SGML errors
# --------------------------------------------------------------------------

class SGMLError(ReproError):
    """Base class for errors raised by the SGML substrate."""


class DTDSyntaxError(SGMLError):
    """A document type definition could not be parsed."""


class SGMLSyntaxError(SGMLError):
    """An SGML document could not be parsed."""


class ValidationError(SGMLError):
    """A document does not conform to its DTD."""


# --------------------------------------------------------------------------
# Store errors (the single-file durable store of repro.store)
# --------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for errors raised by the single-file store."""


class StoreCorruptionError(StoreError):
    """A store record failed its checksum or structural validation.

    Raised when a *referenced* block (one a valid manifest points at) is
    damaged — detected corruption is always an error, never silently
    skipped.  Torn records past the last valid manifest are not errors:
    recovery discards them by design (see docs/storage-format.md).
    """


# --------------------------------------------------------------------------
# Coupling errors
# --------------------------------------------------------------------------

class CouplingError(ReproError):
    """Base class for errors raised by the coupling layer."""


class NotIndexedError(CouplingError):
    """An object has no IRS representation and no derivation scheme applies."""


class StalePropagationError(CouplingError):
    """A query required update propagation but propagation is disabled."""


# --------------------------------------------------------------------------
# Service-layer errors (the concurrent session service of repro.service)
# --------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for errors raised by the concurrent service layer."""


class ServiceOverloadedError(ServiceError):
    """The bounded admission queue is full; the request was rejected.

    Backpressure signal: the caller should slow down, shed load, or retry
    after a delay.  Raised instead of queueing unboundedly.
    """


class RequestTimeoutError(ServiceError):
    """A request did not complete within its per-request deadline.

    The underlying work may still finish in the background; only the
    caller's wait is abandoned.
    """


class RetryExhaustedError(ServiceError):
    """Automatic retries on :class:`DeadlockError` / :class:`LockTimeoutError`
    did not succeed within the configured retry budget.

    The final attempt's error is attached as ``__cause__``.
    """


class ServiceClosedError(ServiceError):
    """The service (or its session) was shut down before the request."""


# --------------------------------------------------------------------------
# Network errors (the out-of-process document service of repro.net)
# --------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for errors raised by the network layer."""


class ProtocolError(NetworkError):
    """A wire frame violated the protocol.

    Covers malformed JSON payloads, non-object payloads, missing required
    envelope fields, and protocol version mismatches.  The peer that
    detects the violation answers with a typed error envelope; for
    violations that poison the byte stream it also closes the connection.
    """


class FrameTooLargeError(ProtocolError):
    """A frame declared a length above the configured maximum.

    Raised on both sides: the sender refuses to encode an oversized
    payload, the receiver rejects an oversized length prefix without
    reading the body (a 4-byte prefix must not force a multi-gigabyte
    allocation).
    """


class ConnectionLostError(NetworkError):
    """The transport failed mid-request (peer vanished, stream truncated).

    The request's fate is unknown — it may or may not have executed.  The
    client's connection pool discards the broken connection; reconnection
    with backoff happens on the *next* acquire, not silently mid-request
    (queries are safe to retry, mutations are the caller's call).
    """
