"""Exception hierarchy shared by all repro subsystems.

Every subsystem raises subclasses of :class:`ReproError` so applications can
catch coupling-level failures with a single ``except`` clause while still
being able to distinguish database, retrieval and document errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# OODBMS errors
# --------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for errors raised by the OODBMS substrate."""


class SchemaError(DatabaseError):
    """A class definition or schema operation is invalid."""


class UnknownClassError(SchemaError):
    """A referenced database class does not exist."""


class UnknownAttributeError(SchemaError):
    """An attribute is not defined on a class or any of its superclasses."""


class UnknownMethodError(SchemaError):
    """A method is not defined on a class or any of its superclasses."""


class ObjectNotFoundError(DatabaseError):
    """No object with the requested OID exists."""


class TransactionError(DatabaseError):
    """A transaction was used incorrectly (e.g. commit after abort)."""


class DeadlockError(TransactionError):
    """The lock manager detected a deadlock and chose this transaction as victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class QueryError(DatabaseError):
    """Base class for query language errors."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""


class QueryEvaluationError(QueryError):
    """The query is well-formed but could not be evaluated."""


class IndexError_(DatabaseError):
    """An index operation failed (name shadows builtin intentionally avoided)."""


class RecoveryError(DatabaseError):
    """The write-ahead log could not be replayed."""


# --------------------------------------------------------------------------
# IRS errors
# --------------------------------------------------------------------------

class RetrievalError(ReproError):
    """Base class for errors raised by the IRS substrate."""


class UnknownCollectionError(RetrievalError):
    """The referenced IRS collection does not exist."""


class DuplicateCollectionError(RetrievalError):
    """An IRS collection with the requested name already exists."""


class IRSQuerySyntaxError(RetrievalError):
    """An IRS query expression could not be parsed."""


class UnknownOperatorError(IRSQuerySyntaxError):
    """An IRS query used an operator the engine does not know."""


class DocumentMissingError(RetrievalError):
    """An IRS document id was not found in the collection."""


# --------------------------------------------------------------------------
# SGML errors
# --------------------------------------------------------------------------

class SGMLError(ReproError):
    """Base class for errors raised by the SGML substrate."""


class DTDSyntaxError(SGMLError):
    """A document type definition could not be parsed."""


class SGMLSyntaxError(SGMLError):
    """An SGML document could not be parsed."""


class ValidationError(SGMLError):
    """A document does not conform to its DTD."""


# --------------------------------------------------------------------------
# Coupling errors
# --------------------------------------------------------------------------

class CouplingError(ReproError):
    """Base class for errors raised by the coupling layer."""


class NotIndexedError(CouplingError):
    """An object has no IRS representation and no derivation scheme applies."""


class StalePropagationError(CouplingError):
    """A query required update propagation but propagation is disabled."""
