"""Hypermedia ``getText`` modes (Section 5).

"A practicable approach to facilitate information retrieval from images ...
is having the text fragments as IRS documents that reference the image.
The method getText for image objects would return exactly this text."

"The text corresponding to a node shall not only be the physical text of
the node.  Rather, also the fragments within other nodes' text from which
there exists an implies-link to that node shall be in the corresponding IRS
document.  Again, getText would identify this particular text."

Both are ordinary text modes registered with the coupling's registry —
demonstrating that Section 5's extension needs *no* new machinery, exactly
the paper's flexibility claim.
"""

from __future__ import annotations

from typing import List

from repro.core.text_modes import register_text_mode
from repro.hypermedia.links import DESCRIBES, IMPLIES, neighbours_in
from repro.oodb.database import Database
from repro.oodb.objects import DBObject

#: Mode numbers for the hypermedia text providers.
MEDIA_TEXT_MODE = 10
IMPLIES_TEXT_MODE = 11


def media_text(obj: DBObject) -> str:
    """Caption plus every text fragment referencing this media object.

    Referencing fragments are (a) sources of ``describes`` links pointing
    at the object and (b) the previous sibling element — the paragraph
    that, in running text, introduces the figure.
    """
    parts: List[str] = []
    own = obj.send("getTextContent")
    if own:
        parts.append(own)  # the caption subtree
    for source in neighbours_in(obj, DESCRIBES):
        fragment = source.send("getTextContent")
        if fragment:
            parts.append(fragment)
    if obj.responds_to("getPrev"):
        previous = obj.send("getPrev")
        if previous is not None and previous.get("tag") not in ("FIGURE",):
            fragment = previous.send("getTextContent")
            if fragment:
                parts.append(fragment)
    return " ".join(parts)


def implies_text(obj: DBObject) -> str:
    """The node's physical text plus the text of implies-link sources."""
    parts: List[str] = []
    own = obj.send("getTextContent")
    if own:
        parts.append(own)
    for source in neighbours_in(obj, IMPLIES):
        fragment = source.send("getTextContent")
        if fragment:
            parts.append(fragment)
    return " ".join(parts)


def install_hypermedia_text_modes(db: Database) -> None:
    """Register both hypermedia modes (numbers 10 and 11).

    ``db`` is accepted for symmetry with the other installers; the registry
    itself is process-wide, matching how ``getText`` implementations are
    code, not data.
    """
    register_text_mode(MEDIA_TEXT_MODE, media_text)
    register_text_mode(IMPLIES_TEXT_MODE, implies_text)
