"""Typed hypertext links stored in the OODBMS.

"Hypermedia documents may be structured hierarchically as well as by means
of arbitrary hypertext links" (Section 1.2, property 1).  Links are
first-class database objects of class ``LINK`` with ``source``, ``target``
and ``link_type`` attributes; hash indexes on source and target make
neighbourhood lookups cheap.
"""

from __future__ import annotations

from typing import List, Optional

from repro.oodb.database import Database
from repro.oodb.objects import DBObject

LINK_CLASS = "LINK"

#: The binary link type of the paper's example: "consider a hypertext-
#: document type containing a binary link type implies".
IMPLIES = "implies"
#: Media description links: text fragment -> image it references.
DESCRIBES = "describes"


def define_link_class(db: Database) -> None:
    """Define the LINK class and its lookup indexes (idempotent)."""
    if db.schema.has_class(LINK_CLASS):
        return
    db.define_class(
        LINK_CLASS,
        attributes={
            "source": "OID",
            "target": "OID",
            "link_type": "STRING",
        },
    )
    db.create_index(LINK_CLASS, "source", kind="hash")
    db.create_index(LINK_CLASS, "target", kind="hash")


def create_link(
    db: Database, source: DBObject, target: DBObject, link_type: str = IMPLIES
) -> DBObject:
    """Create a typed link from ``source`` to ``target``."""
    define_link_class(db)
    return db.create_object(
        LINK_CLASS, source=source.oid, target=target.oid, link_type=link_type
    )


def _link_objects(db: Database, attr: str, obj: DBObject, link_type: Optional[str]) -> List[DBObject]:
    if not db.schema.has_class(LINK_CLASS):
        return []  # no link has ever been created in this database
    index = db.indexes.find(LINK_CLASS, attr)
    if index is not None:
        oids = index.lookup(obj.oid)
        links = [db.get_object(oid) for oid in sorted(oids)]
    else:
        links = [l for l in db.instances_of(LINK_CLASS) if l.get(attr) == obj.oid]
    if link_type is not None:
        links = [l for l in links if l.get("link_type") == link_type]
    return links


def links_from(obj: DBObject, link_type: Optional[str] = None) -> List[DBObject]:
    """Links whose source is ``obj``."""
    return _link_objects(obj.database, "source", obj, link_type)


def links_to(obj: DBObject, link_type: Optional[str] = None) -> List[DBObject]:
    """Links whose target is ``obj``."""
    return _link_objects(obj.database, "target", obj, link_type)


def neighbours_out(obj: DBObject, link_type: Optional[str] = None) -> List[DBObject]:
    """Objects this object links to."""
    db = obj.database
    return [
        db.get_object(link.get("target"))
        for link in links_from(obj, link_type)
        if db.object_exists(link.get("target"))
    ]


def neighbours_in(obj: DBObject, link_type: Optional[str] = None) -> List[DBObject]:
    """Objects linking to this object."""
    db = obj.database
    return [
        db.get_object(link.get("source"))
        for link in links_to(obj, link_type)
        if db.object_exists(link.get("source"))
    ]


# --------------------------------------------------------------------------
# Declarative SGML linking (HyTime flavour)
# --------------------------------------------------------------------------

def wire_sgml_links(
    db: Database,
    root: DBObject,
    id_attribute: str = "ID",
    linkend_attribute: str = "LINKEND",
    type_attribute: str = "LINKTYPE",
    default_type: str = IMPLIES,
) -> List[DBObject]:
    """Create LINK objects from SGML linking attributes in a document tree.

    HyTime-style convention: an element carrying ``LINKEND="some-id"``
    links to the element whose ``ID`` attribute equals ``some-id``
    (anywhere in the database, so cross-document hypertext works);
    ``LINKTYPE`` selects the link type (default ``implies``).  Returns the
    links created.  Dangling LINKENDs are ignored — hypertext is an open
    world.
    """
    define_link_class(db)
    targets_by_id = {}
    for obj in db.iter_objects():
        if not obj.responds_to("getAttributeValue"):
            continue
        identifier = obj.send("getAttributeValue", id_attribute)
        if identifier:
            targets_by_id[identifier] = obj

    created = []
    elements = [root] + list(root.send("getDescendants"))
    for element in elements:
        linkend = element.send("getAttributeValue", linkend_attribute)
        if not linkend:
            continue
        target = targets_by_id.get(linkend)
        if target is None:
            continue
        link_type = element.send("getAttributeValue", type_attribute) or default_type
        created.append(create_link(db, element, target, link_type))
    return created
