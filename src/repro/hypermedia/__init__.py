"""``repro.hypermedia`` — Section 5: non-textual media and hypertext links.

"Although we have primarily addressed the problems of hierarchically
structured text, our coupling is not limited to this specific field."  This
package provides the two mechanisms Section 5 sketches:

* **media retrieval by referencing text** — image (FIGURE) objects return,
  as their ``getText``, the caption plus the text fragments that reference
  them [CrT91, DuR93];
* **link-aware text and derivation** — a node's IRS document additionally
  contains the fragments of nodes with an ``implies`` link to it, and
  ``deriveIRSValue`` can propagate IRS values along links.
"""

from repro.hypermedia.links import (
    LINK_CLASS,
    create_link,
    define_link_class,
    links_from,
    links_to,
    wire_sgml_links,
)
from repro.hypermedia.text_providers import (
    MEDIA_TEXT_MODE,
    IMPLIES_TEXT_MODE,
    install_hypermedia_text_modes,
)
from repro.hypermedia.derivation import register_link_derivation

__all__ = [
    "LINK_CLASS",
    "define_link_class",
    "create_link",
    "links_from",
    "links_to",
    "wire_sgml_links",
    "MEDIA_TEXT_MODE",
    "IMPLIES_TEXT_MODE",
    "install_hypermedia_text_modes",
    "register_link_derivation",
]
