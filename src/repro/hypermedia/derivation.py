"""Link-based derivation of IRS values (Section 5).

"Moreover, deriveIRSValue can be used to calculate IRS values for hypertext
nodes which are not represented in the IRS collection, using the link
semantics."  The scheme below combines the usual component evidence with
evidence flowing along inbound ``implies`` links, damped per hop — the
plausible-inference style of [LuZ93] the paper cites for hypertext IR.
"""

from __future__ import annotations

from typing import Set

from repro.core.derivation import register_scheme
from repro.hypermedia.links import IMPLIES, neighbours_in
from repro.oodb.objects import DBObject

#: How much an implies-neighbour's value counts (per hop).
LINK_DAMPING = 0.7

#: Maximum link hops followed (keeps derivation bounded on cyclic graphs).
MAX_HOPS = 2

SCHEME_NAME = "link_propagation"


def derive_link_propagation(
    collection_obj: DBObject, irs_query: str, obj: DBObject
) -> float:
    """max(component evidence, damped evidence along inbound implies-links).

    Link evidence is gathered both at the object itself and at its indexed
    components — a document whose paragraph is the target of an implies-link
    inherits (damped) relevance from the linking node.
    """
    return _derive(collection_obj, irs_query, obj, MAX_HOPS, set())


def _derive(
    collection_obj: DBObject,
    irs_query: str,
    obj: DBObject,
    hops_left: int,
    visited: Set,
) -> float:
    from repro.core.collection import _get_irs_result
    from repro.core.derivation import component_values

    visited.add(obj.oid)
    values = _get_irs_result(collection_obj, irs_query)
    best = values.get(obj.oid, 0.0)
    components = component_values(collection_obj, irs_query, obj)
    for _component, value in components:
        if value > best:
            best = value
    if hops_left <= 0:
        return best
    link_anchors = [obj] + [component for component, _v in components]
    for anchor in link_anchors:
        for source in neighbours_in(anchor, IMPLIES):
            if source.oid in visited:
                continue
            via_link = LINK_DAMPING * _derive(
                collection_obj, irs_query, source, hops_left - 1, visited
            )
            if via_link > best:
                best = via_link
    return best


def register_link_derivation() -> None:
    """Register the scheme under ``link_propagation``."""
    register_scheme(SCHEME_NAME, derive_link_propagation)
