""":class:`StoreFile` — the append-only single file under the store.

One physical file, three zones: the 32-byte superblock, a run of
checksummed records, and — after every committed checkpoint — a manifest
record followed by a 24-byte footer pointing at it.  Appends only; the
sole overwrite is truncating a torn tail discovered at open.

Durability contract
-------------------

:meth:`commit` appends the manifest and footer, then flushes and
``fsync``\\ s.  Everything before the synced footer is durable; everything
after a crash point past it is garbage by definition and is discarded by
:meth:`recover`:

1. **Fast path** — the last 24 bytes decode as a valid footer whose
   manifest record validates: the file is clean.
2. **Scan-back** — otherwise scan backwards in chunks for the footer
   magic; the first (right-most) candidate whose footer *and* manifest
   both validate wins.  Bytes past it are a torn tail: logically
   discarded now, physically truncated before the next append.
3. **Empty** — no valid footer at all: the store holds no checkpoint
   (a fresh file, or one that crashed before its first commit).

Reads are mmap-backed when the platform allows (the mapping is refreshed
after appends grow the file); a plain seek/read fallback keeps the store
working where mmap is unavailable.  Every read revalidates the record
checksum — a bit flip in an old, referenced block surfaces as
:class:`~repro.errors.StoreCorruptionError` on first touch, never as a
silently wrong index.
"""

from __future__ import annotations

import os
import struct
from typing import Optional, Tuple

from repro.errors import StoreCorruptionError, StoreError
from repro.store import blocks

try:
    import mmap as _mmap_module
except ImportError:  # pragma: no cover - CPython always has mmap
    _mmap_module = None

#: Backward-scan chunk size; candidates overlap chunk borders by
#: ``FOOTER_SIZE - 1`` so a footer split across chunks is still found.
_SCAN_CHUNK = 1 << 20


def fsync_directory(path: str) -> None:
    """Force the directory entry of ``path`` to disk (POSIX only)."""
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class StoreFile:
    """Append-only record file with footer-committed manifests."""

    def __init__(
        self, path: str, use_mmap: bool = True, token: Optional[int] = None
    ) -> None:
        self.path = path
        self._use_mmap = use_mmap and _mmap_module is not None
        self._mmap = None
        self._mmap_size = 0
        self.recovered_tail_bytes = 0
        existed = os.path.exists(path) and os.path.getsize(path) > 0
        if not existed:
            if token is None:
                token = int.from_bytes(os.urandom(8), "big")
            with open(path, "wb") as fh:
                fh.write(blocks.encode_superblock(token))
                fh.flush()
                os.fsync(fh.fileno())
            fsync_directory(path)
        self._fh = open(path, "r+b")
        self._fh.seek(0)
        header = self._fh.read(blocks.SUPER_SIZE)
        _version, _flags, self.token = blocks.decode_superblock(header)
        self.manifest_offset: Optional[int] = None
        self.manifest_length = 0
        self._end = blocks.SUPER_SIZE
        self._recover()

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        size = os.path.getsize(self.path)
        found = self._try_footer_at(size - blocks.FOOTER_SIZE)
        if found is None:
            found = self._scan_back(size)
        if found is None:
            # No committed checkpoint survives: logically empty store.
            self.recovered_tail_bytes = size - blocks.SUPER_SIZE
            return
        footer_offset, manifest_offset, manifest_length = found
        self.manifest_offset = manifest_offset
        self.manifest_length = manifest_length
        self._end = footer_offset + blocks.FOOTER_SIZE
        self.recovered_tail_bytes = size - self._end

    def _try_footer_at(self, offset: int) -> Optional[Tuple[int, int, int]]:
        """Validate a footer candidate *and* the manifest it points at."""
        if offset < blocks.SUPER_SIZE:
            return None
        try:
            data = self._pread(offset, blocks.FOOTER_SIZE)
            manifest_offset, manifest_length = blocks.decode_footer(data)
        except (StoreCorruptionError, struct.error):
            return None
        if (
            manifest_offset < blocks.SUPER_SIZE
            or manifest_offset + manifest_length > offset
        ):
            return None
        try:
            record = self._pread(manifest_offset, manifest_length)
            blocks.verify_record(record, blocks.KIND_MANIFEST)
        except StoreCorruptionError:
            return None
        return offset, manifest_offset, manifest_length

    def _scan_back(self, size: int) -> Optional[Tuple[int, int, int]]:
        """Right-most valid footer below ``size``, by chunked magic search."""
        high = size
        overlap = blocks.FOOTER_SIZE - 1
        while high > blocks.SUPER_SIZE:
            low = max(blocks.SUPER_SIZE, high - _SCAN_CHUNK)
            window = self._pread(low, min(high + overlap, size) - low)
            position = len(window)
            while True:
                position = window.rfind(blocks.FOOTER_MAGIC, 0, position)
                if position < 0:
                    break
                found = self._try_footer_at(low + position)
                if found is not None:
                    return found
            high = low
        return None

    # -- raw IO -----------------------------------------------------------

    def _pread(self, offset: int, length: int) -> bytes:
        if length < 0 or offset < 0:
            raise StoreCorruptionError(
                f"invalid read at offset {offset} length {length}"
            )
        if self._use_mmap:
            mapping = self._refresh_mmap(offset + length)
            if mapping is not None:
                return bytes(mapping[offset: offset + length])
        self._fh.seek(offset)
        data = self._fh.read(length)
        if len(data) != length:
            raise StoreCorruptionError(
                f"short read at offset {offset}: wanted {length}, got {len(data)}"
            )
        return data

    def _refresh_mmap(self, needed: int):
        size = os.path.getsize(self.path)
        if needed > size:
            raise StoreCorruptionError(
                f"read past end of store: need {needed} bytes, file has {size}"
            )
        if self._mmap is None or self._mmap_size < needed:
            if self._mmap is not None:
                self._mmap.close()
                self._mmap = None
            try:
                self._mmap = _mmap_module.mmap(
                    self._fh.fileno(), size, access=_mmap_module.ACCESS_READ
                )
                self._mmap_size = size
            except (OSError, ValueError):  # pragma: no cover - mmap refused
                self._use_mmap = False
                return None
        return self._mmap

    # -- appends ----------------------------------------------------------

    def _prepare_append(self) -> None:
        size = os.path.getsize(self.path)
        if size > self._end:
            # Torn tail from a previous crash: physically discard it so
            # the new records are contiguous with the committed state.
            if self._mmap is not None:
                self._mmap.close()
                self._mmap = None
                self._mmap_size = 0
            self._fh.truncate(self._end)

    def append_record(self, kind: int, payload: bytes) -> Tuple[int, int]:
        """Append one record; returns ``(offset, total_length)``.

        Not yet durable — records only become reachable once a
        :meth:`commit` writes a manifest referencing them and syncs.
        """
        self._prepare_append()
        encoded = blocks.encode_record(kind, payload)
        offset = self._end
        self._fh.seek(offset)
        self._fh.write(encoded)
        self._end = offset + len(encoded)
        return offset, len(encoded)

    def append_raw(self, record_bytes: bytes) -> Tuple[int, int]:
        """Append an already-encoded record verbatim (pack's copy path)."""
        self._prepare_append()
        offset = self._end
        self._fh.seek(offset)
        self._fh.write(record_bytes)
        self._end = offset + len(record_bytes)
        return offset, len(record_bytes)

    def commit(self, manifest_payload: bytes) -> Tuple[int, int]:
        """Append the manifest + footer, then fsync: the commit point."""
        offset, length = self.append_record(
            blocks.KIND_MANIFEST, manifest_payload
        )
        self._fh.seek(self._end)
        self._fh.write(blocks.encode_footer(offset, length))
        self._end += blocks.FOOTER_SIZE
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.manifest_offset = offset
        self.manifest_length = length
        return offset, length

    # -- record reads -----------------------------------------------------

    def read_record(self, offset: int, length: int, kind: int = None) -> bytes:
        """Read + checksum-validate one record; returns its payload bytes."""
        data = self._pread(offset, length)
        return blocks.verify_record(data, kind)

    def read_json(self, offset: int, length: int, kind: int = None) -> dict:
        return blocks.decode_json(self.read_record(offset, length, kind))

    def read_manifest(self) -> Optional[dict]:
        if self.manifest_offset is None:
            return None
        return self.read_json(
            self.manifest_offset, self.manifest_length, blocks.KIND_MANIFEST
        )

    # -- bookkeeping -------------------------------------------------------

    @property
    def size(self) -> int:
        return max(self._end, 0)

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "StoreFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<StoreFile {self.path!r} size={self.size} "
            f"manifest@{self.manifest_offset}>"
        )


def require_store(path: str) -> None:
    """Raise :class:`StoreError` unless ``path`` looks like a store file."""
    if not os.path.exists(path):
        raise StoreError(f"no store file at {path!r}")
    with open(path, "rb") as fh:
        blocks.decode_superblock(fh.read(blocks.SUPER_SIZE))
