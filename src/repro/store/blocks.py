"""Binary block codecs of the single-file store.

Three fixed layouts make up the file (all integers big-endian):

**Superblock** (32 bytes, offset 0) — written once at creation::

    magic "REPROSTO" (8) | version u16 | flags u16 | token u64 | crc u32
    | padding to 32

``token`` is a random per-file identity: in-memory references to records
(e.g. a sealed segment's store stamp) carry it so a reference into one
physical file can never be satisfied by another (a packed replacement
gets a fresh token).

**Record** (9-byte header + payload) — the only growing unit::

    payload_length u32 | crc u32 | kind u8 | payload bytes

The CRC-32 covers the kind byte plus the payload, so a record can never
be "valid but of the wrong kind".  Payloads are compact JSON (the same
representation-neutral schemas the legacy layouts use — that is what
makes cross-loading free).

**Footer** (24 bytes) — appended after every manifest record::

    magic "REPROFTR" (8) | manifest_offset u64 | manifest_length u32
    | crc u32

The footer at the physical end of the file is the fast commit pointer;
recovery that finds it torn scans backwards for the previous footer
magic and revalidates (see :mod:`repro.store.file`).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Tuple

from repro.errors import StoreCorruptionError

SUPER_MAGIC = b"REPROSTO"
FOOTER_MAGIC = b"REPROFTR"
VERSION = 1

_SUPER_STRUCT = struct.Struct("!8sHHQI")
SUPER_SIZE = 32  # _SUPER_STRUCT.size (24) padded for future fields
_RECORD_STRUCT = struct.Struct("!IIB")
RECORD_HEADER_SIZE = _RECORD_STRUCT.size  # 9
_FOOTER_STRUCT = struct.Struct("!8sQII")
FOOTER_SIZE = _FOOTER_STRUCT.size  # 24

# Record kinds.  A record's kind is covered by its checksum, so readers
# can insist on the kind they expect.
KIND_DOCS = 1       # one batch of documents of one collection
KIND_SEGMENT = 2    # one immutable sealed segment's postings
KIND_MEMTABLE = 3   # a collection's (or shard's) current memtable postings
KIND_INDEX = 4      # a monolithic collection's full inverted index
KIND_MANIFEST = 5   # a checkpoint manifest (the commit record)

_KIND_NAMES = {
    KIND_DOCS: "docs",
    KIND_SEGMENT: "segment",
    KIND_MEMTABLE: "memtable",
    KIND_INDEX: "index",
    KIND_MANIFEST: "manifest",
}


def kind_name(kind: int) -> str:
    return _KIND_NAMES.get(kind, f"kind#{kind}")


def encode_json(payload: dict) -> bytes:
    """The store's canonical payload encoding (compact, sorted keys)."""
    return json.dumps(
        payload, separators=(",", ":"), sort_keys=True, ensure_ascii=False
    ).encode("utf-8")


def decode_json(data: bytes) -> dict:
    return json.loads(data.decode("utf-8"))


# -- superblock --------------------------------------------------------------

def encode_superblock(token: int, flags: int = 0) -> bytes:
    head = _SUPER_STRUCT.pack(SUPER_MAGIC, VERSION, flags, token, 0)[:-4]
    crc = zlib.crc32(head)
    packed = head + struct.pack("!I", crc)
    return packed.ljust(SUPER_SIZE, b"\0")


def decode_superblock(data: bytes) -> Tuple[int, int, int]:
    """``(version, flags, token)`` — raises on bad magic/crc/version."""
    if len(data) < SUPER_SIZE:
        raise StoreCorruptionError(
            f"superblock truncated: {len(data)} bytes < {SUPER_SIZE}"
        )
    magic, version, flags, token, crc = _SUPER_STRUCT.unpack(
        data[: _SUPER_STRUCT.size]
    )
    if magic != SUPER_MAGIC:
        raise StoreCorruptionError(f"bad store magic {magic!r}")
    if zlib.crc32(data[: _SUPER_STRUCT.size - 4]) != crc:
        raise StoreCorruptionError("superblock checksum mismatch")
    if version != VERSION:
        raise StoreCorruptionError(
            f"unsupported store version {version} (expected {VERSION})"
        )
    return version, flags, token


# -- records -----------------------------------------------------------------

def encode_record(kind: int, payload: bytes) -> bytes:
    crc = zlib.crc32(bytes((kind,)) + payload)
    return _RECORD_STRUCT.pack(len(payload), crc, kind) + payload


def record_total_length(payload_length: int) -> int:
    return RECORD_HEADER_SIZE + payload_length


def decode_record_header(data: bytes) -> Tuple[int, int, int]:
    """``(payload_length, crc, kind)`` of a record header."""
    if len(data) < RECORD_HEADER_SIZE:
        raise StoreCorruptionError(
            f"record header truncated: {len(data)} bytes < {RECORD_HEADER_SIZE}"
        )
    return _RECORD_STRUCT.unpack(data[:RECORD_HEADER_SIZE])


def verify_record(data: bytes, expected_kind: int = None) -> bytes:
    """Validate one full record buffer; returns its payload bytes.

    ``data`` must hold exactly header + payload (the caller slices it out
    of the file using the length a manifest/footer recorded).
    """
    payload_length, crc, kind = decode_record_header(data)
    if len(data) != RECORD_HEADER_SIZE + payload_length:
        raise StoreCorruptionError(
            f"record length mismatch: header says {payload_length} payload "
            f"bytes, buffer holds {len(data) - RECORD_HEADER_SIZE}"
        )
    payload = data[RECORD_HEADER_SIZE:]
    if zlib.crc32(bytes((kind,)) + payload) != crc:
        raise StoreCorruptionError(
            f"checksum mismatch on {kind_name(kind)} record"
        )
    if expected_kind is not None and kind != expected_kind:
        raise StoreCorruptionError(
            f"expected {kind_name(expected_kind)} record, found {kind_name(kind)}"
        )
    return payload


# -- footer ------------------------------------------------------------------

def encode_footer(manifest_offset: int, manifest_length: int) -> bytes:
    head = _FOOTER_STRUCT.pack(
        FOOTER_MAGIC, manifest_offset, manifest_length, 0
    )[:-4]
    crc = zlib.crc32(head)
    return head + struct.pack("!I", crc)


def decode_footer(data: bytes) -> Tuple[int, int]:
    """``(manifest_offset, manifest_length)`` — raises on bad magic/crc."""
    if len(data) < FOOTER_SIZE:
        raise StoreCorruptionError(
            f"footer truncated: {len(data)} bytes < {FOOTER_SIZE}"
        )
    magic, manifest_offset, manifest_length, crc = _FOOTER_STRUCT.unpack(
        data[:FOOTER_SIZE]
    )
    if magic != FOOTER_MAGIC:
        raise StoreCorruptionError(f"bad footer magic {magic!r}")
    if zlib.crc32(data[: FOOTER_SIZE - 4]) != crc:
        raise StoreCorruptionError("footer checksum mismatch")
    return manifest_offset, manifest_length
