""":class:`SingleFileStore` — whole-engine persistence in one file.

This is the durable replacement for the per-collection JSON dumps of
:mod:`repro.irs.persistence`.  All three collection layouts (monolithic,
segmented, sharded) serialize into one append-only
:class:`~repro.store.file.StoreFile`; a checkpoint appends only what
changed since the previous one:

* **sealed segments** are written exactly once.  A written segment gets a
  ``store_stamp`` (token, offset, length); later checkpoints reference
  the existing record.  Tombstones travel in the *manifest* entry, so
  deleting documents never rewrites a segment record.
* **documents** append as delta batches: only documents whose
  ``(doc_id, revision)`` changed since the last checkpoint.  Removals are
  listed in the manifest; once the removal list outgrows the live set,
  the batches are rewritten from scratch (self-trimming).
* **memtables** and **monolithic indexes** re-append only when their
  version/epoch moved.

The manifest (one JSON record + footer per checkpoint) is the atomic
commit: crash anywhere before the footer fsync leaves the previous
checkpoint intact (see :mod:`repro.store.file` for recovery).

Loading is lazy by default: each collection registers a loader with the
engine and materializes from the manifest on first touch, so
restart-to-first-query cost is O(touched collections), not O(corpus).
Materialization builds the *legacy payload shape* and hands it to
``IRSCollection.from_payload`` / ``ShardedCollection.from_payload`` —
the same cross-loading machinery the JSON layouts use, which is what
makes store↔legacy round-trips exact in both directions.

Offline :meth:`pack` copies live records into a fresh file and atomically
replaces the store, keeping a one-generation offset remap so segment
stamps stay valid across the compaction.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import StoreError
from repro.store import blocks
from repro.store.blocks import encode_json
from repro.store.file import StoreFile, fsync_directory


class _ManagerState:
    """Last-persisted refs of one segment manager (or monolithic index)."""

    __slots__ = ("mem_ref", "mem_version", "flat_ref", "flat_epoch")

    def __init__(self) -> None:
        self.mem_ref: Optional[List[int]] = None
        self.mem_version: Optional[tuple] = None
        self.flat_ref: Optional[List[int]] = None
        self.flat_epoch: Optional[int] = None


class _CollectionState:
    """Incremental bookkeeping for one collection between checkpoints."""

    __slots__ = ("revisions", "batches", "removed", "managers")

    def __init__(self) -> None:
        #: doc id -> revision as of the last persisted batch.
        self.revisions: Dict[int, int] = {}
        #: ``[offset, length]`` of every live document batch, oldest first.
        self.batches: List[List[int]] = []
        #: doc ids persisted in some batch and since removed.
        self.removed: Set[int] = set()
        #: per-manager refs; key −1 for an unsharded collection, else the
        #: shard index.
        self.managers: Dict[int, _ManagerState] = {}


class SingleFileStore:
    """The engine's single-file durable store (see module docstring)."""

    def __init__(self, path: str, use_mmap: bool = True) -> None:
        self.path = path
        self._use_mmap = use_mmap
        self.file = StoreFile(path, use_mmap=use_mmap)
        self.manifest: Optional[dict] = self.file.read_manifest()
        self._state: Dict[str, _CollectionState] = {}
        #: One-generation stamp translation after :meth:`pack`:
        #: ``(previous_token, {old_offset: [new_offset, length]})``.
        self._remap: Optional[Tuple[int, Dict[int, List[int]]]] = None
        self._live_bytes = self._compute_live_bytes(self.manifest)
        self.last_checkpoint_seconds: Optional[float] = None
        if self.file.recovered_tail_bytes:
            registry = obs.metrics()
            registry.counter("store.recoveries").inc()
            registry.counter("store.recovered.tail_bytes").inc(
                self.file.recovered_tail_bytes
            )

    @property
    def token(self) -> int:
        return self.file.token

    @property
    def checkpoint_id(self) -> int:
        return self.manifest["checkpoint_id"] if self.manifest else 0

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, engine, gens: Optional[Dict[str, int]] = None) -> dict:
        """Append one incremental checkpoint of ``engine`` and commit it.

        ``gens`` are the OODB-side index generations recorded alongside
        (see ``DocumentSystem.checkpoint``): on restart, a collection
        whose database generation outruns the stored one is reindexed
        from the recovered database state.
        """
        registry = obs.metrics()
        started = time.perf_counter()
        self._appended = 0
        self._reused = 0
        self._appended_bytes = 0
        with obs.tracer().span("store.checkpoint", path=self.path):
            previous = (self.manifest or {}).get("collections", {})
            collections: Dict[str, dict] = {}
            for name in engine.collection_names():
                if engine.is_lazy(name) and name in previous:
                    # Untouched since load: its records and manifest entry
                    # are still exact — carry the entry forward verbatim.
                    collections[name] = previous[name]
                    continue
                collection = engine.collection(name)
                with engine.reading(name):
                    collections[name] = self._collection_entry(name, collection)
            for name in list(self._state):
                if name not in collections:
                    del self._state[name]
            manifest = {
                "checkpoint_id": self.checkpoint_id + 1,
                "prev": self.file.manifest_offset,
                "engine": {
                    "default_model": engine._default_model,
                    "shard_count": engine.shard_count,
                },
                "gens": dict(gens or {}),
                "collections": collections,
            }
            self.file.commit(encode_json(manifest))
            self.manifest = manifest
            self._live_bytes = self._compute_live_bytes(manifest)
        elapsed = time.perf_counter() - started
        self.last_checkpoint_seconds = elapsed
        registry.counter("store.checkpoints").inc()
        registry.counter("store.records.appended").inc(self._appended)
        registry.counter("store.records.reused").inc(self._reused)
        registry.counter("store.bytes.appended").inc(self._appended_bytes)
        registry.rolling("store.checkpoint.seconds").observe(elapsed)
        self._update_size_gauges(registry)
        return {
            "checkpoint_id": manifest["checkpoint_id"],
            "seconds": elapsed,
            "records_appended": self._appended,
            "records_reused": self._reused,
            "bytes_appended": self._appended_bytes,
            "size_bytes": self.file.size,
            "live_bytes": self._live_bytes,
            "dead_bytes": max(0, self.file.size - self._live_bytes),
        }

    def _append(self, kind: int, payload: dict) -> List[int]:
        offset, length = self.file.append_record(kind, encode_json(payload))
        self._appended += 1
        self._appended_bytes += length
        return [offset, length]

    def _collection_entry(self, name: str, collection) -> dict:
        state = self._state.setdefault(name, _CollectionState())
        entry: Dict[str, Any] = {
            "analyzer": collection.analyzer.config(),
            "next_doc_id": collection._next_doc_id,
            "document_count": len(collection._documents),
        }
        self._checkpoint_docs(state, collection, entry)
        if getattr(collection, "shards", None):
            entry["layout"] = "sharded"
            entry["shard_count"] = collection.shard_count
            entry["shards"] = [
                self._manager_entry(state, index, shard)
                for index, shard in enumerate(collection.shards)
            ]
        elif collection.segments is not None:
            entry["layout"] = "segmented"
            entry.update(self._manager_entry(state, -1, collection))
        else:
            entry["layout"] = "flat"
            entry.update(self._manager_entry(state, -1, collection))
        return entry

    def _checkpoint_docs(self, state, collection, entry) -> None:
        current = {
            doc.doc_id: doc.revision
            for doc in collection._documents.values()
        }
        removed = [
            doc_id for doc_id in state.revisions if doc_id not in current
        ]
        state.removed.update(removed)
        for doc_id in removed:
            del state.revisions[doc_id]
        if state.removed and len(state.removed) > max(64, len(current)):
            # More dead than alive: rewrite the batches from scratch so
            # replay cost stays proportional to the live set.
            state.batches = []
            state.removed = set()
            state.revisions = {}
            changed = sorted(current)
        else:
            changed = sorted(
                doc_id
                for doc_id, revision in current.items()
                if state.revisions.get(doc_id) != revision
            )
        if changed:
            batch = []
            for doc_id in changed:
                doc = collection._documents[doc_id]
                batch.append(
                    {
                        "doc_id": doc.doc_id,
                        "text": doc.text,
                        "metadata": doc.metadata,
                        "revision": doc.revision,
                    }
                )
                state.revisions[doc_id] = current[doc_id]
            state.batches.append(
                self._append(blocks.KIND_DOCS, {"documents": batch})
            )
        entry["doc_batches"] = [list(ref) for ref in state.batches]
        entry["removed_docs"] = sorted(state.removed)

    def _manager_entry(self, state, key: int, collection) -> dict:
        """Index refs of one shard/collection: flat ref or segments+memtable."""
        mstate = state.managers.setdefault(key, _ManagerState())
        manager = collection.segments
        if manager is None:
            epoch = collection.index.epoch
            if mstate.flat_ref is None or mstate.flat_epoch != epoch:
                mstate.flat_ref = self._append(
                    blocks.KIND_INDEX, {"index": collection.index.to_payload()}
                )
                mstate.flat_epoch = epoch
            else:
                self._reused += 1
            return {"index": list(mstate.flat_ref)}
        segments = []
        for segment in manager.sealed_segments():
            offset, length = self._segment_ref(segment)
            segments.append(
                {
                    "offset": offset,
                    "length": length,
                    "tombstones": sorted(segment.tombstones),
                    "documents": segment.index.document_count,
                }
            )
        memtable = manager.memtable
        mem_ref = None
        if memtable.document_count:
            if (
                mstate.mem_ref is not None
                and mstate.mem_version == manager.version
            ):
                mem_ref = list(mstate.mem_ref)
                self._reused += 1
            else:
                mem_ref = self._append(
                    blocks.KIND_MEMTABLE,
                    {"index": memtable.index.to_payload()},
                )
                mstate.mem_ref = list(mem_ref)
                mstate.mem_version = manager.version
        else:
            mstate.mem_ref = None
            mstate.mem_version = None
        return {"segments": segments, "memtable": mem_ref}

    def _segment_ref(self, segment) -> Tuple[int, int]:
        """The (offset, length) of a sealed segment — written at most once."""
        stamp = segment.store_stamp
        if stamp is not None:
            token, offset, length = stamp
            if token == self.token:
                self._reused += 1
                return offset, length
            if self._remap is not None and token == self._remap[0]:
                moved = self._remap[1].get(offset)
                if moved is not None:
                    segment.store_stamp = (self.token, moved[0], moved[1])
                    self._reused += 1
                    return moved[0], moved[1]
        ref = self._append(
            blocks.KIND_SEGMENT, {"index": segment.index.to_payload()}
        )
        segment.store_stamp = (self.token, ref[0], ref[1])
        return ref[0], ref[1]

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------

    def load_engine(
        self,
        default_model: str = "inquery",
        analyzer=None,
        shard_count: int = 0,
        shard_config=None,
        lazy: bool = True,
    ):
        """Build an engine over the last checkpoint.

        With ``lazy=True`` (the default) collections register loaders and
        materialize on first touch; ``lazy=False`` loads everything now
        (the eager baseline the restart benchmark compares against).
        """
        from repro.irs.engine import IRSEngine

        engine = IRSEngine(
            default_model=default_model,
            analyzer=analyzer,
            shard_count=shard_count,
            shard_config=shard_config,
        )
        manifest = self.manifest
        if manifest is None:
            return engine
        for name in sorted(manifest["collections"]):
            if lazy:
                engine.register_lazy_collection(name, self._loader(engine, name))
            else:
                engine._collections[name] = self._loader(engine, name)()
        return engine

    def _loader(self, engine, name: str):
        def build():
            entry = (self.manifest or {}).get("collections", {}).get(name)
            if entry is None:
                raise StoreError(
                    f"collection {name!r} vanished from the store manifest"
                )
            return self._materialize(engine, name, entry)

        return build

    def _materialize(self, engine, name: str, entry: dict):
        from repro.irs.collection import IRSCollection
        from repro.irs.shards import ShardedCollection

        payload: Dict[str, Any] = {
            "name": name,
            "next_doc_id": entry["next_doc_id"],
            "analyzer": entry["analyzer"],
            "documents": self._replay_docs(entry),
        }
        layout = entry["layout"]
        if layout == "flat":
            ref = entry["index"]
            payload["index"] = self.file.read_json(
                ref[0], ref[1], blocks.KIND_INDEX
            )["index"]
        elif layout == "segmented":
            payload["segments"] = self._segment_payloads(entry)
        else:
            payload["shard_count"] = entry["shard_count"]
            payload["shards"] = [
                self._shard_payload(shard_entry)
                for shard_entry in entry["shards"]
            ]
        if engine.shard_count and engine.shard_count >= 1:
            collection = ShardedCollection.from_payload(
                payload,
                engine._analyzer,
                segment_config=engine.segment_config,
                shard_count=engine.shard_count,
            )
        else:
            collection = IRSCollection.from_payload(
                payload, engine._analyzer, segment_config=engine.segment_config
            )
        self._seed_state(name, entry, collection)
        return collection

    def _replay_docs(self, entry: dict) -> List[dict]:
        documents: Dict[int, dict] = {}
        for offset, length in entry["doc_batches"]:
            batch = self.file.read_json(offset, length, blocks.KIND_DOCS)
            for doc in batch["documents"]:
                documents[doc["doc_id"]] = doc
        for doc_id in entry["removed_docs"]:
            documents.pop(doc_id, None)
        return [documents[doc_id] for doc_id in sorted(documents)]

    def _segment_payloads(self, entry: dict) -> List[dict]:
        payloads = []
        for segment in entry["segments"]:
            record = self.file.read_json(
                segment["offset"], segment["length"], blocks.KIND_SEGMENT
            )
            payloads.append(
                {"index": record["index"], "tombstones": segment["tombstones"]}
            )
        mem_ref = entry.get("memtable")
        if mem_ref:
            record = self.file.read_json(
                mem_ref[0], mem_ref[1], blocks.KIND_MEMTABLE
            )
            payloads.append({"index": record["index"], "tombstones": []})
        return payloads

    def _shard_payload(self, shard_entry: dict) -> dict:
        if shard_entry.get("index") is not None:
            ref = shard_entry["index"]
            return {
                "index": self.file.read_json(ref[0], ref[1], blocks.KIND_INDEX)[
                    "index"
                ]
            }
        return {"segments": self._segment_payloads(shard_entry)}

    def _seed_state(self, name: str, entry: dict, collection) -> None:
        """Prime incremental bookkeeping after a load, so the very next
        checkpoint is already a delta (documents and matching segments are
        referenced, not rewritten)."""
        state = _CollectionState()
        state.revisions = {
            doc.doc_id: doc.revision
            for doc in collection._documents.values()
        }
        state.batches = [list(ref) for ref in entry["doc_batches"]]
        state.removed = set(entry["removed_docs"])
        self._state[name] = state
        layout = entry["layout"]
        sharded = bool(getattr(collection, "shards", None))
        if layout == "segmented" and not sharded and collection.segments is not None:
            self._stamp_manager(collection.segments, entry["segments"])
        elif (
            layout == "sharded"
            and sharded
            and collection.shard_count == entry["shard_count"]
        ):
            for shard, shard_entry in zip(collection.shards, entry["shards"]):
                if shard.segments is not None and shard_entry.get("segments"):
                    self._stamp_manager(shard.segments, shard_entry["segments"])
        # Layout mismatches (re-partitioned / flattened loads) skip
        # stamping; the next checkpoint writes the new shape once.

    def _stamp_manager(self, manager, segment_entries: List[dict]) -> None:
        # ``load_sealed`` registered segments in entry order; a trailing
        # extra one came from the memtable record and is left unstamped
        # (its record kind differs — it is written once as a segment at
        # the next checkpoint).
        for segment, seg_entry in zip(
            manager.sealed_segments(), segment_entries
        ):
            segment.store_stamp = (
                self.token,
                seg_entry["offset"],
                seg_entry["length"],
            )

    # ------------------------------------------------------------------
    # pack
    # ------------------------------------------------------------------

    def pack(self) -> dict:
        """Offline compaction: copy live records into a fresh file.

        Atomic (write-new + ``os.replace``); requires a quiesced system —
        ``DocumentSystem.pack`` checkpoints first, and no concurrent
        checkpoint or materialization may run during the copy.  Segment
        stamps survive via a one-generation offset remap.
        """
        registry = obs.metrics()
        manifest = self.manifest
        if manifest is None:
            return {"packed": False, "reclaimed_bytes": 0, "size_bytes": self.file.size}
        started = time.perf_counter()
        with obs.tracer().span("store.pack", path=self.path):
            old_size = self.file.size
            old_token = self.token
            tmp_path = self.path + ".pack"
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            new_file = StoreFile(tmp_path, use_mmap=self._use_mmap)
            remap: Dict[int, List[int]] = {}
            collections = {
                name: self._pack_entry(entry, new_file, remap)
                for name, entry in manifest["collections"].items()
            }
            new_manifest = dict(manifest)
            new_manifest["checkpoint_id"] = manifest["checkpoint_id"] + 1
            new_manifest["collections"] = collections
            new_manifest["prev"] = None
            new_file.commit(encode_json(new_manifest))
            new_file.close()
            self.file.close()
            os.replace(tmp_path, self.path)
            fsync_directory(self.path)
            self.file = StoreFile(self.path, use_mmap=self._use_mmap)
            self.manifest = self.file.read_manifest()
            self._remap = (old_token, remap)
            self._live_bytes = self._compute_live_bytes(self.manifest)
            self._repoint_state(remap)
        registry.counter("store.packs").inc()
        self._update_size_gauges(registry)
        return {
            "packed": True,
            "seconds": time.perf_counter() - started,
            "reclaimed_bytes": max(0, old_size - self.file.size),
            "size_bytes": self.file.size,
        }

    def _pack_entry(self, entry: dict, new_file: StoreFile, remap) -> dict:
        packed = dict(entry)
        # Documents: merge all delta batches into one live batch.
        documents = self._replay_docs(entry)
        if documents or entry["doc_batches"]:
            data = encode_json({"documents": documents})
            offset, length = new_file.append_record(blocks.KIND_DOCS, data)
            packed["doc_batches"] = [[offset, length]]
        else:
            packed["doc_batches"] = []
        packed["removed_docs"] = []
        if entry["layout"] == "sharded":
            packed["shards"] = [
                self._pack_refs(shard_entry, new_file, remap)
                for shard_entry in entry["shards"]
            ]
        else:
            packed.update(self._pack_refs(entry, new_file, remap))
        return packed

    def _pack_refs(self, entry: dict, new_file: StoreFile, remap) -> dict:
        """Copy one manager's records verbatim; returns the rewritten refs."""
        out: Dict[str, Any] = {}
        if entry.get("index") is not None:
            out["index"] = self._copy_record(entry["index"], new_file, remap)
        if "segments" in entry:
            segments = []
            for segment in entry["segments"]:
                moved = self._copy_record(
                    [segment["offset"], segment["length"]], new_file, remap
                )
                rewritten = dict(segment)
                rewritten["offset"], rewritten["length"] = moved
                segments.append(rewritten)
            out["segments"] = segments
            mem_ref = entry.get("memtable")
            out["memtable"] = (
                self._copy_record(mem_ref, new_file, remap) if mem_ref else None
            )
        return out

    def _copy_record(self, ref, new_file: StoreFile, remap) -> List[int]:
        offset, length = ref
        already = remap.get(offset)
        if already is not None:
            return list(already)
        data = self.file._pread(offset, length)
        blocks.verify_record(data)
        new_offset, new_length = new_file.append_raw(data)
        remap[offset] = [new_offset, new_length]
        return [new_offset, new_length]

    def _repoint_state(self, remap: Dict[int, List[int]]) -> None:
        new_collections = (self.manifest or {}).get("collections", {})
        for name, state in self._state.items():
            entry = new_collections.get(name)
            if entry is None:
                continue
            state.batches = [list(ref) for ref in entry["doc_batches"]]
            state.removed = set(entry["removed_docs"])
            for mstate in state.managers.values():
                for attr in ("mem_ref", "flat_ref"):
                    ref = getattr(mstate, attr)
                    if ref is not None:
                        moved = remap.get(ref[0])
                        setattr(mstate, attr, list(moved) if moved else None)
                if mstate.mem_ref is None:
                    mstate.mem_version = None
                if mstate.flat_ref is None:
                    mstate.flat_epoch = None

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _compute_live_bytes(self, manifest: Optional[dict]) -> int:
        total = blocks.SUPER_SIZE
        if manifest is None:
            return total
        total += self.file.manifest_length + blocks.FOOTER_SIZE
        live: Dict[int, int] = {}  # offset -> length; shared refs count once
        for entry in manifest["collections"].values():
            for ref in entry.get("doc_batches", []):
                live[ref[0]] = ref[1]
            managers = (
                entry.get("shards", [])
                if entry["layout"] == "sharded"
                else [entry]
            )
            for manager_entry in managers:
                for ref in (
                    manager_entry.get("index"),
                    manager_entry.get("memtable"),
                ):
                    if ref:
                        live[ref[0]] = ref[1]
                for segment in manager_entry.get("segments", []):
                    live[segment["offset"]] = segment["length"]
        return total + sum(live.values())

    def _update_size_gauges(self, registry) -> None:
        size = self.file.size
        dead = max(0, size - self._live_bytes)
        registry.gauge("store.bytes.total").set(size)
        registry.gauge("store.bytes.live").set(self._live_bytes)
        registry.gauge("store.bytes.dead").set(dead)

    def dirty_info(self, engine) -> Dict[str, int]:
        """Approximate un-checkpointed volume, for ``health()["storage"]``.

        ``approx_bytes`` counts text characters of documents whose
        revision moved since the last checkpoint plus the heap estimate
        of memtables not persisted at their current version — a trend
        signal (how much would the next checkpoint write), not an exact
        byte count.
        """
        documents = 0
        approx_bytes = 0
        for name in engine.collection_names():
            collection = engine._collections.get(name)
            if collection is None:  # lazy and untouched: clean by definition
                continue
            state = self._state.get(name)
            revisions = state.revisions if state is not None else {}
            for doc in collection._documents.values():
                if revisions.get(doc.doc_id) != doc.revision:
                    documents += 1
                    approx_bytes += len(doc.text)
            managers = collection.segment_managers()
            sharded = bool(getattr(collection, "shards", None))
            for index, manager in enumerate(managers):
                key = index if sharded else -1
                mstate = state.managers.get(key) if state is not None else None
                if (
                    manager.memtable.document_count
                    and (
                        mstate is None
                        or mstate.mem_version != manager.version
                    )
                ):
                    approx_bytes += manager.memtable.approx_bytes()
        return {"documents": documents, "approx_bytes": approx_bytes}

    def stats(self) -> Dict[str, Any]:
        size = self.file.size
        dead = max(0, size - self._live_bytes)
        return {
            "path": self.path,
            "size_bytes": size,
            "live_bytes": self._live_bytes,
            "dead_bytes": dead,
            "dead_ratio": dead / size if size else 0.0,
            "checkpoints": self.checkpoint_id,
            "last_checkpoint_seconds": self.last_checkpoint_seconds,
            "recovered_tail_bytes": self.file.recovered_tail_bytes,
        }

    def gens(self) -> Dict[str, int]:
        """The OODB index generations recorded at the last checkpoint."""
        return dict((self.manifest or {}).get("gens", {}))

    def close(self) -> None:
        self.file.close()

    def __enter__(self) -> "SingleFileStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
