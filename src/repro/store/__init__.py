"""repro.store — the single-file durable store.

One append-only file holds every collection layout (monolithic,
segmented, sharded): a 32-byte superblock, checksummed record blocks,
and a footer-committed manifest chain.  Checkpoints are incremental
(sealed segments are written exactly once), recovery scans back to the
last valid manifest, restart is lazy, and :meth:`SingleFileStore.pack`
compacts offline.  See docs/storage-format.md for the on-disk format
and DESIGN.md §"Durable storage" for how it couples with the OODB WAL.
"""

from repro.store.engine_io import SingleFileStore
from repro.store.file import StoreFile, require_store

__all__ = ["SingleFileStore", "StoreFile", "require_store"]
