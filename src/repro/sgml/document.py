"""The element tree: SGML documents in memory.

An :class:`Element` has a tag, SGML attributes, and an ordered list of
children that are elements or :class:`Text` leaves.  "Its leaves are the
objects that actually contain the raw data, i.e., in most cases, the text"
(Section 4.1) — the loader maps this tree one-to-one onto database objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union


class Text:
    """A text leaf."""

    __slots__ = ("value", "parent")

    def __init__(self, value: str) -> None:
        self.value = value
        self.parent: Optional["Element"] = None

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 30 else self.value[:27] + "..."
        return f"Text({preview!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Text) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Text", self.value))


Node = Union["Element", Text]


class Element:
    """One SGML element with attributes and ordered children."""

    def __init__(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> None:
        self.tag = tag.upper()
        self.attributes: Dict[str, str] = {k.upper(): v for k, v in (attributes or {}).items()}
        self.children: List[Node] = []
        self.parent: Optional["Element"] = None

    # -- construction -------------------------------------------------------

    def append(self, node: Node) -> Node:
        """Attach a child (element or text leaf); returns it for chaining."""
        node.parent = self
        self.children.append(node)
        return node

    def append_text(self, value: str) -> Text:
        """Convenience: append a text leaf."""
        return self.append(Text(value))  # type: ignore[return-value]

    def append_element(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> "Element":
        """Convenience: append and return a child element."""
        return self.append(Element(tag, attributes))  # type: ignore[return-value]

    # -- navigation ------------------------------------------------------------

    def child_elements(self) -> List["Element"]:
        """Direct element children, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def iter(self) -> Iterator["Element"]:
        """This element and all descendant elements, in document order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, tag: str) -> List["Element"]:
        """Descendant elements (including self) with the given tag."""
        tag = tag.upper()
        return [e for e in self.iter() if e.tag == tag]

    def find(self, tag: str) -> Optional["Element"]:
        """First descendant (or self) with the given tag, document order."""
        matches = self.find_all(tag)
        return matches[0] if matches else None

    def ancestors(self) -> Iterator["Element"]:
        """Parent chain, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def next_sibling(self) -> Optional["Element"]:
        """The next element sibling, if any."""
        if self.parent is None:
            return None
        siblings = self.parent.child_elements()
        index = siblings.index(self)
        return siblings[index + 1] if index + 1 < len(siblings) else None

    def depth(self) -> int:
        """Root has depth 0."""
        return sum(1 for _ in self.ancestors())

    # -- content ------------------------------------------------------------------

    def text(self) -> str:
        """All text of the subtree, leaves joined with single spaces."""
        parts: List[str] = []
        self._collect_text(parts)
        return " ".join(p for p in parts if p.strip())

    def _collect_text(self, parts: List[str]) -> None:
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value.strip())
            else:
                child._collect_text(parts)

    def own_text(self) -> str:
        """Only this element's direct text leaves, joined with spaces."""
        return " ".join(
            c.value.strip() for c in self.children if isinstance(c, Text) and c.value.strip()
        )

    def is_leaf(self) -> bool:
        """True when the element has no element children."""
        return not self.child_elements()

    def element_count(self) -> int:
        """Number of elements in the subtree (including self)."""
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:
        return f"<Element {self.tag} children={len(self.children)}>"
