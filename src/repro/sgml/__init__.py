"""``repro.sgml`` — the structured-document substrate.

A small SGML toolchain sufficient for the paper's document handling:
DTD parsing (element declarations with full content models, attribute
lists), document parsing into an element tree, content-model validation,
and the loader that fragments documents into the OODBMS "in accordance
with their logical structure, i.e., for each element ... there essentially
is a corresponding database object" (Section 4.1).
"""

from repro.sgml.document import Element, Text
from repro.sgml.dtd import DTD, parse_dtd
from repro.sgml.parser import parse_document
from repro.sgml.loader import SGMLLoader

__all__ = ["Element", "Text", "DTD", "parse_dtd", "parse_document", "SGMLLoader"]
