"""Fragmenting SGML documents into the OODBMS.

Section 4.1: "In the database, documents are fragmented in accordance with
their logical structure, i.e., for each element (e.g. section, paragraph,
footnote) in a particular SGML document there essentially is a corresponding
database object. ... So-called element-type classes corresponding to the
element-type definitions from the DTDs contain elements of that particular
type."

:class:`SGMLLoader` realizes that: registering a DTD defines one database
class per element type (all subclasses of the structural base class
``Element``), and loading a document creates one object per element, wired
with parent/children references and document order.  The navigation methods
installed on ``Element`` (``getNext``, ``getContaining``,
``getAttributeValue``, ``getTextContent`` ...) are exactly those the paper's
sample queries use (Section 4.4).
"""

from __future__ import annotations

from typing import List, Optional

from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID
from repro.sgml.document import Element as TreeElement
from repro.sgml.dtd import DTD

#: The structural base class every element-type class inherits from.
ELEMENT_CLASS = "Element"


# --------------------------------------------------------------------------
# Navigation methods installed on the Element class
# --------------------------------------------------------------------------

def _get_attribute_value(obj: DBObject, name: str) -> Optional[str]:
    """SGML attribute lookup (``d -> getAttributeValue('YEAR')``)."""
    attributes = obj.get("sgml_attributes") or {}
    return attributes.get(name.upper())


def _get_tag(obj: DBObject) -> str:
    return obj.get("tag")


def _get_parent(obj: DBObject) -> Optional[DBObject]:
    parent = obj.get("parent")
    if isinstance(parent, OID) and obj.database.object_exists(parent):
        return obj.database.get_object(parent)
    return None


def _get_children(obj: DBObject) -> List[DBObject]:
    return [
        obj.database.get_object(child)
        for child in (obj.get("children") or [])
        if obj.database.object_exists(child)
    ]


def _get_next(obj: DBObject) -> Optional[DBObject]:
    """The next sibling element (``p1 -> getNext() == p2``)."""
    parent = _get_parent(obj)
    if parent is None:
        return None
    siblings = parent.get("children") or []
    try:
        index = siblings.index(obj.oid)
    except ValueError:
        return None
    if index + 1 < len(siblings):
        return obj.database.get_object(siblings[index + 1])
    return None


def _get_prev(obj: DBObject) -> Optional[DBObject]:
    """The previous sibling element."""
    parent = _get_parent(obj)
    if parent is None:
        return None
    siblings = parent.get("children") or []
    try:
        index = siblings.index(obj.oid)
    except ValueError:
        return None
    if index > 0:
        return obj.database.get_object(siblings[index - 1])
    return None


def _get_containing(obj: DBObject, class_name: str) -> Optional[DBObject]:
    """Nearest ancestor of ``class_name`` (``p1 -> getContaining('MMFDOC')``)."""
    node = _get_parent(obj)
    while node is not None:
        if node.isa(class_name):
            return node
        node = _get_parent(node)
    return None


def _get_root(obj: DBObject) -> DBObject:
    node = obj
    while True:
        parent = _get_parent(node)
        if parent is None:
            return node
        node = parent


def _get_text_content(obj: DBObject) -> str:
    """The subtree's text: own content first, then children in order."""
    parts: List[str] = []
    own = obj.get("content")
    if own:
        parts.append(own)
    for child in _get_children(obj):
        child_text = _get_text_content(child)
        if child_text:
            parts.append(child_text)
    return " ".join(parts)


def _length(obj: DBObject) -> int:
    """Character length of the subtree text (``p -> length()``)."""
    return len(_get_text_content(obj))


def _get_descendants(obj: DBObject, class_name: Optional[str] = None) -> List[DBObject]:
    """All descendants (not self), optionally filtered by class."""
    result: List[DBObject] = []
    for child in _get_children(obj):
        if class_name is None or child.isa(class_name):
            result.append(child)
        result.extend(_get_descendants(child, class_name))
    return result


def _is_leaf(obj: DBObject) -> bool:
    return not (obj.get("children") or [])


ELEMENT_METHODS = {
    "getAttributeValue": _get_attribute_value,
    "getTag": _get_tag,
    "getParent": _get_parent,
    "getChildren": _get_children,
    "getNext": _get_next,
    "getPrev": _get_prev,
    "getContaining": _get_containing,
    "getRoot": _get_root,
    "getTextContent": _get_text_content,
    "getDescendants": _get_descendants,
    "isLeaf": _is_leaf,
    "length": _length,
}


class SGMLLoader:
    """Registers DTDs as class hierarchies and fragments documents.

    Parameters
    ----------
    db:
        The target database.
    base_class:
        An existing class the structural ``Element`` class should inherit
        from.  The coupling passes ``"IRSObject"`` here, making every
        document element an IRSObject as Section 4.2 requires.
    """

    def __init__(self, db: Database, base_class: Optional[str] = None) -> None:
        self._db = db
        self._base_class = base_class
        #: class name -> SGML attribute names promoted to DB attributes.
        self._promotions: dict = {}
        self._ensure_element_class()

    def _ensure_element_class(self) -> None:
        if self._db.schema.has_class(ELEMENT_CLASS):
            # Structure may have been recovered from a snapshot; methods are
            # code and must be (re-)attached either way.
            cdef = self._db.schema.get_class(ELEMENT_CLASS)
        else:
            cdef = self._db.define_class(
                ELEMENT_CLASS,
                superclass=self._base_class,
                attributes={
                    "tag": "STRING",
                    "parent": "OID",
                    "children": "LIST",
                    "content": "STRING",
                    "sgml_attributes": "DICT",
                    "doc_order": "INT",
                },
            )
        for name, impl in ELEMENT_METHODS.items():
            cdef.add_method(name, impl)

    # -- DTD registration -----------------------------------------------------

    def register_dtd(self, dtd: DTD) -> List[str]:
        """Define an element-type class per element declaration.

        Returns the list of newly defined class names.  Classes already
        defined (e.g. by another DTD sharing element names) are left alone —
        the paper's framework likewise manages "documents of arbitrary
        types" over one class pool.
        """
        created = []
        for tag in dtd.element_names():
            if not self._db.schema.has_class(tag):
                self._db.define_class(tag, superclass=ELEMENT_CLASS)
                created.append(tag)
        return created

    def ensure_element_type(self, tag: str) -> None:
        """Define a single element-type class on demand."""
        if not self._db.schema.has_class(tag.upper()):
            self._db.define_class(tag.upper(), superclass=ELEMENT_CLASS)

    # -- physical design -------------------------------------------------------

    def promote_attribute(
        self, class_name: str, attribute: str, index_kind: str = "hash"
    ):
        """Promote an SGML attribute to an indexed database attribute.

        The paper's requirement (4): logical integration "must not sacrifice
        an efficient implementation ... the system must exploit the
        particular semantics of the data model and access operations for
        improved processing."  SGML attributes normally live inside the
        ``sgml_attributes`` dictionary, invisible to attribute indexes;
        promotion copies the value into a first-class attribute named like
        the SGML attribute, backfills existing instances, creates an index,
        and keeps future loads in sync — so
        ``d -> getAttributeValue('YEAR') = '1994'`` becomes an index probe
        (the optimizer recognizes the ``getAttributeValue`` shape).

        Returns the created index.
        """
        class_name = class_name.upper()
        attribute = attribute.upper()
        self.ensure_element_type(class_name)
        cdef = self._db.schema.get_class(class_name)
        if attribute not in cdef.attributes:
            self._db.add_class_attribute(class_name, attribute, "STRING")
        self._promotions.setdefault(class_name, set()).add(attribute)
        for obj in self._db.instances_of(class_name):
            value = (obj.get("sgml_attributes") or {}).get(attribute)
            if value is not None and obj.get(attribute) != value:
                obj.set(attribute, value)
        return self._db.create_index(class_name, attribute, kind=index_kind)

    def _apply_promotions(self, obj: DBObject) -> None:
        attributes = obj.get("sgml_attributes") or {}
        for class_name, promoted in self._promotions.items():
            if not obj.isa(class_name):
                continue
            for attribute in promoted:
                value = attributes.get(attribute)
                if value is not None:
                    obj.set(attribute, value)

    def set_sgml_attribute(self, element: DBObject, name: str, value: str) -> None:
        """Update an SGML attribute, keeping any promoted copy in sync."""
        name = name.upper()
        attributes = dict(element.get("sgml_attributes") or {})
        attributes[name] = value
        element.set("sgml_attributes", attributes)
        self._apply_promotions(element)

    # -- document loading ---------------------------------------------------------

    def load_document(self, root: TreeElement) -> DBObject:
        """Create one database object per element of the tree; returns the root."""
        counter = [0]
        return self._load_element(root, None, counter)

    def _load_element(
        self, node: TreeElement, parent: Optional[DBObject], counter: List[int]
    ) -> DBObject:
        self.ensure_element_type(node.tag)
        obj = self._db.create_object(
            node.tag,
            tag=node.tag,
            content=node.own_text(),
            sgml_attributes=dict(node.attributes),
            doc_order=counter[0],
        )
        counter[0] += 1
        if parent is not None:
            obj.set("parent", parent.oid)
        child_oids = []
        for child in node.child_elements():
            child_obj = self._load_element(child, obj, counter)
            child_oids.append(child_obj.oid)
        obj.set("children", child_oids)
        self._apply_promotions(obj)
        return obj

    def delete_document(self, root: DBObject) -> int:
        """Delete a document subtree; returns the number of objects removed."""
        removed = 0
        for child in list(_get_children(root)):
            removed += self.delete_document(child)
        parent = _get_parent(root)
        if parent is not None:
            siblings = list(parent.get("children") or [])
            if root.oid in siblings:
                siblings.remove(root.oid)
                parent.set("children", siblings)
        self._db.delete_object(root)
        return removed + 1

    # -- element-level editing (drives the update-propagation experiments) -------

    def insert_element(
        self,
        parent: DBObject,
        tag: str,
        content: str = "",
        position: Optional[int] = None,
        attributes: Optional[dict] = None,
    ) -> DBObject:
        """Create a new element object under ``parent``."""
        self.ensure_element_type(tag)
        obj = self._db.create_object(
            tag.upper(),
            tag=tag.upper(),
            content=content,
            sgml_attributes=dict(attributes or {}),
            doc_order=0,
            parent=parent.oid,
        )
        children = list(parent.get("children") or [])
        if position is None:
            children.append(obj.oid)
        else:
            children.insert(position, obj.oid)
        parent.set("children", children)
        self._apply_promotions(obj)
        return obj

    def update_content(self, element: DBObject, content: str) -> None:
        """Replace an element's direct text content."""
        element.set("content", content)

    def remove_element(self, element: DBObject) -> int:
        """Delete one element and its subtree; returns objects removed."""
        return self.delete_document(element)
