"""Document type definitions.

Parses the subset of SGML DTD syntax the MMF application needs:

.. code-block:: text

    <!ELEMENT MMFDOC - - (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
    <!ELEMENT PARA - - (#PCDATA)>
    <!ATTLIST MMFDOC YEAR CDATA #IMPLIED
                     TYPE (report | article) "article">

Tag-minimization indicators (``- -``, ``- O`` …) are accepted and recorded
but not acted upon — our documents are fully tagged.  "An important feature
of our database application is the possibility to manage documents of
arbitrary types, i.e., not to be restricted to a rigid set of SGML DTDs"
(Section 4.1): any DTD parseable here can be registered with the loader.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DTDSyntaxError, ValidationError
from repro.sgml.content_model import ContentModel
from repro.sgml.document import Element, Text


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute declaration from an ATTLIST."""

    name: str
    decl_type: str                  # "CDATA", "NUMBER", "ID", or "(a|b|c)" enumeration
    default: Optional[str]          # literal default, or None
    required: bool = False          # #REQUIRED
    allowed_values: Optional[tuple] = None  # for enumerations


@dataclass
class ElementDecl:
    """One element type declaration."""

    name: str
    content_model: ContentModel
    minimization: str = "- -"
    attributes: Dict[str, AttributeDecl] = field(default_factory=dict)


class DTD:
    """A parsed document type definition."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.elements: Dict[str, ElementDecl] = {}
        #: General entities declared with ``<!ENTITY name "text">``.
        self.entities: Dict[str, str] = {}

    def element(self, tag: str) -> ElementDecl:
        """The declaration of ``tag`` (must exist)."""
        try:
            return self.elements[tag.upper()]
        except KeyError:
            raise DTDSyntaxError(f"element type {tag!r} not declared in DTD") from None

    def element_names(self) -> List[str]:
        """All declared element type names, in declaration order."""
        return list(self.elements)

    def has_element(self, tag: str) -> bool:
        """True when ``tag`` is declared."""
        return tag.upper() in self.elements

    # -- validation -----------------------------------------------------------

    def validate(self, root: Element) -> None:
        """Validate an element tree; raises :class:`ValidationError`."""
        errors = self.validation_errors(root)
        if errors:
            raise ValidationError("; ".join(errors))

    def validation_errors(self, root: Element) -> List[str]:
        """All conformance violations of the tree (empty list == valid)."""
        errors: List[str] = []
        for element in root.iter():
            if not self.has_element(element.tag):
                errors.append(f"undeclared element type {element.tag}")
                continue
            decl = self.element(element.tag)
            child_tags = [c.tag for c in element.child_elements()]
            has_text = any(
                isinstance(c, Text) and c.value.strip() for c in element.children
            )
            message = decl.content_model.validate(child_tags, has_text)
            if message is not None:
                errors.append(f"{element.tag}: {message}")
            errors.extend(self._attribute_errors(element, decl))
        return errors

    @staticmethod
    def _attribute_errors(element: Element, decl: ElementDecl) -> List[str]:
        errors = []
        for attr_name, attr_decl in decl.attributes.items():
            value = element.attributes.get(attr_name)
            if value is None:
                if attr_decl.required:
                    errors.append(
                        f"{element.tag}: missing required attribute {attr_name}"
                    )
                continue
            if attr_decl.allowed_values is not None and value not in attr_decl.allowed_values:
                errors.append(
                    f"{element.tag}: attribute {attr_name}={value!r} not in "
                    f"{attr_decl.allowed_values}"
                )
            if attr_decl.decl_type == "NUMBER" and not value.isdigit():
                errors.append(
                    f"{element.tag}: attribute {attr_name}={value!r} is not a NUMBER"
                )
        return errors

    def apply_defaults(self, root: Element) -> None:
        """Fill in declared attribute defaults on every element of the tree."""
        for element in root.iter():
            if not self.has_element(element.tag):
                continue
            for attr_name, attr_decl in self.element(element.tag).attributes.items():
                if attr_decl.default is not None and attr_name not in element.attributes:
                    element.attributes[attr_name] = attr_decl.default


_DECL_PATTERN = re.compile(r"<!(\w+)\s+(.*?)>", re.DOTALL)
_COMMENT_PATTERN = re.compile(r"<!--.*?-->", re.DOTALL)


def parse_dtd(text: str, name: str = "") -> DTD:
    """Parse DTD ``text`` into a :class:`DTD`."""
    dtd = DTD(name)
    stripped = _COMMENT_PATTERN.sub(" ", text)
    consumed_spans = []
    for match in _DECL_PATTERN.finditer(stripped):
        keyword = match.group(1).upper()
        body = match.group(2).strip()
        consumed_spans.append(match.span())
        if keyword == "ELEMENT":
            _parse_element_decl(dtd, body)
        elif keyword == "ATTLIST":
            _parse_attlist_decl(dtd, body)
        elif keyword == "ENTITY":
            _parse_entity_decl(dtd, body)
        elif keyword == "DOCTYPE":
            continue  # tolerated wrapper
        else:
            raise DTDSyntaxError(f"unsupported declaration <!{keyword} ...>")
    leftover = stripped
    for start, end in reversed(consumed_spans):
        leftover = leftover[:start] + leftover[end:]
    if leftover.strip():
        raise DTDSyntaxError(f"unparseable DTD content: {leftover.strip()[:60]!r}")
    return dtd


def _parse_element_decl(dtd: DTD, body: str) -> None:
    # NAME [minimization] (content-model) | EMPTY | ANY
    match = re.match(r"(\S+)\s+((?:[-O]\s+[-O]\s+)?)(.*)$", body, re.DOTALL)
    if match is None:
        raise DTDSyntaxError(f"malformed ELEMENT declaration: {body!r}")
    tag = match.group(1).upper()
    minimization = " ".join(match.group(2).split()) or "- -"
    model_source = match.group(3).strip()
    if not model_source:
        raise DTDSyntaxError(f"ELEMENT {tag}: missing content model")
    if tag in dtd.elements:
        raise DTDSyntaxError(f"element type {tag} declared twice")
    dtd.elements[tag] = ElementDecl(tag, ContentModel(model_source), minimization)


def _parse_entity_decl(dtd: DTD, body: str) -> None:
    """``<!ENTITY name "replacement text">`` — general entities only."""
    match = re.match(r"(\S+)\s+(['\"])(.*)\2\s*$", body, re.DOTALL)
    if match is None:
        raise DTDSyntaxError(f"malformed ENTITY declaration: {body!r}")
    name = match.group(1)
    if name.startswith("%"):
        raise DTDSyntaxError("parameter entities are not supported")
    if name in dtd.entities:
        raise DTDSyntaxError(f"entity {name!r} declared twice")
    dtd.entities[name] = match.group(3)


def _parse_attlist_decl(dtd: DTD, body: str) -> None:
    tokens = _tokenize_attlist(body)
    if len(tokens) < 4:
        raise DTDSyntaxError(
            "ATTLIST needs an element name and at least one name/type/default triple"
        )
    tag = tokens[0].upper()
    if tag not in dtd.elements:
        raise DTDSyntaxError(f"ATTLIST for undeclared element {tag}")
    decl = dtd.elements[tag]
    i = 1
    while i < len(tokens):
        if i + 2 > len(tokens):
            raise DTDSyntaxError(f"truncated ATTLIST for {tag}")
        attr_name = tokens[i].upper()
        decl_type = tokens[i + 1]
        allowed = None
        if decl_type.startswith("("):
            allowed = tuple(v.strip().lower() for v in decl_type[1:-1].split("|"))
            decl_type = decl_type
        else:
            decl_type = decl_type.upper()
        if i + 2 >= len(tokens):
            raise DTDSyntaxError(f"attribute {attr_name} of {tag} lacks a default")
        default_token = tokens[i + 2]
        required = False
        default: Optional[str] = None
        if default_token.upper() == "#REQUIRED":
            required = True
        elif default_token.upper() in ("#IMPLIED", "#CURRENT", "#CONREF"):
            default = None
        elif default_token.upper() == "#FIXED":
            i += 1
            if i + 2 >= len(tokens):
                raise DTDSyntaxError(f"#FIXED attribute {attr_name} lacks its value")
            default = _unquote(tokens[i + 2])
        else:
            default = _unquote(default_token)
        decl.attributes[attr_name] = AttributeDecl(
            attr_name, decl_type, default, required, allowed
        )
        i += 3


def _tokenize_attlist(body: str) -> List[str]:
    tokens: List[str] = []
    i, n = 0, len(body)
    while i < n:
        ch = body[i]
        if ch.isspace():
            i += 1
            continue
        if ch in ("'", '"'):
            j = body.find(ch, i + 1)
            if j < 0:
                raise DTDSyntaxError(f"unterminated string in ATTLIST: {body[i:i+30]!r}")
            tokens.append(body[i : j + 1])
            i = j + 1
            continue
        if ch == "(":
            j = body.find(")", i)
            if j < 0:
                raise DTDSyntaxError(f"unterminated group in ATTLIST: {body[i:i+30]!r}")
            tokens.append(body[i : j + 1])
            i = j + 1
            continue
        j = i
        while j < n and not body[j].isspace():
            j += 1
        tokens.append(body[i:j])
        i = j
    return tokens


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return token[1:-1]
    return token
