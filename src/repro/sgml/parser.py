"""SGML document parser.

Parses fully tagged SGML instances (start tag, content, end tag) into the
element tree of :mod:`repro.sgml.document`.  Supported: attributes with
quoted or unquoted values, comments, the standard character entities, and
optional validation against a DTD.  Tag omission/minimization is not
supported — documents produced by the corpus generator and the examples are
always fully tagged.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import SGMLSyntaxError
from repro.sgml.document import Element, Text
from repro.sgml.dtd import DTD

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_ENTITY_PATTERN = re.compile(r"&(#?\w+);")


def _decode_entities(text: str, declared: Optional[Dict[str, str]] = None) -> str:
    def replace(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name.startswith("#"):
            try:
                code = int(name[2:], 16) if name[1:2] in ("x", "X") else int(name[1:])
                return chr(code)
            except ValueError:
                raise SGMLSyntaxError(f"bad numeric entity &{name};") from None
        if name in _ENTITIES:
            return _ENTITIES[name]
        if declared and name in declared:
            return declared[name]
        raise SGMLSyntaxError(f"unknown entity &{name};")

    return _ENTITY_PATTERN.sub(replace, text)


def encode_entities(text: str) -> str:
    """Escape markup-significant characters for serialization."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def parse_document(text: str, dtd: Optional[DTD] = None) -> Element:
    """Parse ``text`` into its root element.

    When ``dtd`` is given, its general entities are resolved, attribute
    defaults applied, and the document validated (raising
    :class:`repro.errors.ValidationError`).
    """
    parser = _DocumentParser(text, entities=dtd.entities if dtd else None)
    root = parser.parse()
    if dtd is not None:
        dtd.apply_defaults(root)
        dtd.validate(root)
    return root


class _DocumentParser:
    def __init__(self, text: str, entities: Optional[Dict[str, str]] = None) -> None:
        self._text = text
        self._pos = 0
        self._entities = entities

    def parse(self) -> Element:
        self._skip_prolog()
        root = self._parse_element()
        rest = self._text[self._pos :].strip()
        if rest:
            raise SGMLSyntaxError(f"content after root element: {rest[:40]!r}")
        return root

    def _skip_prolog(self) -> None:
        """Skip whitespace, comments and a DOCTYPE line before the root."""
        while True:
            while self._pos < len(self._text) and self._text[self._pos].isspace():
                self._pos += 1
            if self._text.startswith("<!--", self._pos):
                end = self._text.find("-->", self._pos)
                if end < 0:
                    raise SGMLSyntaxError("unterminated comment")
                self._pos = end + 3
                continue
            if self._text.startswith("<!", self._pos):
                end = self._text.find(">", self._pos)
                if end < 0:
                    raise SGMLSyntaxError("unterminated declaration")
                self._pos = end + 1
                continue
            return

    def _parse_element(self) -> Element:
        if self._pos >= len(self._text) or self._text[self._pos] != "<":
            raise SGMLSyntaxError(f"expected start tag at position {self._pos}")
        tag, attributes, self_closed = self._parse_start_tag()
        element = Element(tag, attributes)
        if self_closed:
            return element
        while True:
            if self._pos >= len(self._text):
                raise SGMLSyntaxError(f"missing end tag for {tag}")
            if self._text.startswith("<!--", self._pos):
                end = self._text.find("-->", self._pos)
                if end < 0:
                    raise SGMLSyntaxError("unterminated comment")
                self._pos = end + 3
                continue
            if self._text.startswith("</", self._pos):
                end_tag = self._parse_end_tag()
                if end_tag != element.tag:
                    raise SGMLSyntaxError(
                        f"mismatched end tag </{end_tag}> for <{element.tag}>"
                    )
                return element
            if self._text[self._pos] == "<":
                element.append(self._parse_element())
                continue
            next_tag = self._text.find("<", self._pos)
            if next_tag < 0:
                raise SGMLSyntaxError(f"missing end tag for {tag}")
            raw = self._text[self._pos : next_tag]
            if raw.strip():
                element.append(Text(_decode_entities(raw, self._entities)))
            self._pos = next_tag

    def _parse_start_tag(self) -> Tuple[str, Dict[str, str], bool]:
        end = self._text.find(">", self._pos)
        if end < 0:
            raise SGMLSyntaxError(f"unterminated tag at position {self._pos}")
        inner = self._text[self._pos + 1 : end]
        self._pos = end + 1
        self_closed = inner.endswith("/")
        if self_closed:
            inner = inner[:-1]
        parts = _split_tag(inner)
        if not parts:
            raise SGMLSyntaxError("empty tag")
        tag = parts[0].upper()
        if not re.fullmatch(r"[A-Za-z][A-Za-z0-9._-]*", parts[0]):
            raise SGMLSyntaxError(f"bad element name {parts[0]!r}")
        attributes: Dict[str, str] = {}
        for part in parts[1:]:
            name, _eq, value = part.partition("=")
            if not _eq:
                attributes[name.upper()] = name  # minimized boolean attribute
                continue
            value = value.strip()
            if value and value[0] in ("'", '"'):
                if len(value) < 2 or value[-1] != value[0]:
                    raise SGMLSyntaxError(f"unterminated attribute value in <{tag}>")
                value = value[1:-1]
            attributes[name.upper()] = _decode_entities(value, self._entities)
        return tag, attributes, self_closed

    def _parse_end_tag(self) -> str:
        end = self._text.find(">", self._pos)
        if end < 0:
            raise SGMLSyntaxError("unterminated end tag")
        name = self._text[self._pos + 2 : end].strip()
        self._pos = end + 1
        return name.upper()


def _split_tag(inner: str) -> List[str]:
    """Split tag content into name and attribute tokens, respecting quotes."""
    parts: List[str] = []
    i, n = 0, len(inner)
    while i < n:
        if inner[i].isspace():
            i += 1
            continue
        j = i
        quote = None
        while j < n:
            ch = inner[j]
            if quote is not None:
                if ch == quote:
                    quote = None
            elif ch in ("'", '"'):
                quote = ch
            elif ch.isspace():
                break
            j += 1
        if quote is not None:
            raise SGMLSyntaxError(f"unterminated quote in tag: {inner[:40]!r}")
        parts.append(inner[i:j])
        i = j
    return parts


def serialize(element: Element, indent: int = 0, pretty: bool = True) -> str:
    """Render an element tree back to SGML text."""
    pad = "  " * indent if pretty else ""
    attrs = "".join(
        f' {name}="{encode_entities(value)}"' for name, value in sorted(element.attributes.items())
    )
    open_tag = f"{pad}<{element.tag}{attrs}>"
    close_tag = f"</{element.tag}>"
    if not element.children:
        return open_tag + close_tag
    if element.is_leaf():
        inner = encode_entities(element.own_text())
        return f"{open_tag}{inner}{close_tag}"
    lines = [open_tag]
    for child in element.children:
        if isinstance(child, Text):
            if child.value.strip():
                lines.append(("  " * (indent + 1) if pretty else "") + encode_entities(child.value.strip()))
        else:
            lines.append(serialize(child, indent + 1, pretty))
    lines.append(f"{pad}{close_tag}")
    return "\n".join(lines) if pretty else "".join(lines)
