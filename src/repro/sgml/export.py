"""Publishing: rendering document objects to HTML.

The MultiMedia Forum was "an interactive online journal" (Section 1) — its
documents were *served*, not only stored.  This module renders database
document trees to simple mid-90s HTML, with optional highlighting of
content-relevant elements: the reader-facing side of a mixed query ("show
me the issue, with the paragraphs relevant to WWW marked").

Rendering works from the database objects (not the original SGML text), so
edits made through the editorial workflow appear immediately.
"""

from __future__ import annotations

import html
from typing import Dict, Optional

from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

#: Element tag -> (open, close) HTML for the default MMF stylesheet.
DEFAULT_STYLESHEET: Dict[str, tuple] = {
    "MMFDOC": ("<article>", "</article>"),
    "DOCTITLE": ("<h1>", "</h1>"),
    "ABSTRACT": ("<p class='abstract'><em>", "</em></p>"),
    "SECTION": ("<section>", "</section>"),
    "SECTITLE": ("<h2>", "</h2>"),
    "PARA": ("<p>", "</p>"),
    "FIGURE": ("<figure>", "</figure>"),
    "CAPTION": ("<figcaption>", "</figcaption>"),
    "LOGBOOK": ("<!-- logbook: ", " -->"),
}

#: Tags rendered as HTML comments (internal bookkeeping, not reader-facing).
_COMMENT_TAGS = {"LOGBOOK"}


class HTMLExporter:
    """Renders document subtrees to HTML.

    Parameters
    ----------
    stylesheet:
        tag -> (open, close) mapping; unknown tags render as ``<div>``.
    highlight_values:
        Optional ``{OID: IRS value}`` (e.g. a ``getIRSResult`` outcome);
        elements present get a ``relevance`` annotation and a ``<mark>``
        wrapper around their own text.
    highlight_threshold:
        Minimum value for highlighting.
    """

    def __init__(
        self,
        stylesheet: Optional[Dict[str, tuple]] = None,
        highlight_values: Optional[Dict[OID, float]] = None,
        highlight_threshold: float = 0.0,
    ) -> None:
        self._stylesheet = dict(DEFAULT_STYLESHEET)
        if stylesheet:
            self._stylesheet.update(stylesheet)
        self._highlights = highlight_values or {}
        self._threshold = highlight_threshold

    # -- public API -----------------------------------------------------------

    def render(self, obj: DBObject) -> str:
        """HTML for the subtree rooted at ``obj``."""
        return self._render(obj)

    def render_page(self, obj: DBObject, title: Optional[str] = None) -> str:
        """A complete HTML page around :meth:`render`."""
        page_title = title or obj.send("getAttributeValue", "TITLE") or obj.get("tag")
        body = self._render(obj)
        return (
            "<!DOCTYPE html>\n<html><head>"
            f"<title>{html.escape(page_title)}</title>"
            "</head><body>\n"
            f"{body}\n</body></html>\n"
        )

    # -- rendering ---------------------------------------------------------------

    def _render(self, obj: DBObject) -> str:
        tag = obj.get("tag") or "DIV"
        open_tag, close_tag = self._stylesheet.get(tag, ("<div>", "</div>"))
        if tag in _COMMENT_TAGS:
            inner = html.escape(obj.send("getTextContent"))
            return f"{open_tag}{inner}{close_tag}"
        pieces = [self._annotated_open(obj, open_tag)]
        own = (obj.get("content") or "").strip()
        if own:
            pieces.append(self._maybe_mark(obj, html.escape(own)))
        for child in obj.send("getChildren"):
            pieces.append(self._render(child))
        pieces.append(close_tag)
        return "".join(pieces)

    def _annotated_open(self, obj: DBObject, open_tag: str) -> str:
        value = self._highlights.get(obj.oid)
        if value is None or value <= self._threshold:
            return open_tag
        if open_tag.endswith(">") and not open_tag.startswith("<!--"):
            head, _sep, tail = open_tag.partition(">")
            return f'{head} data-relevance="{value:.3f}">{tail}'
        return open_tag

    def _maybe_mark(self, obj: DBObject, escaped_text: str) -> str:
        value = self._highlights.get(obj.oid)
        if value is not None and value > self._threshold:
            return f"<mark>{escaped_text}</mark>"
        return escaped_text


def export_document(
    obj: DBObject,
    highlight_values: Optional[Dict[OID, float]] = None,
    highlight_threshold: float = 0.0,
) -> str:
    """One-call page export (convenience wrapper)."""
    exporter = HTMLExporter(
        highlight_values=highlight_values, highlight_threshold=highlight_threshold
    )
    return exporter.render_page(obj)
