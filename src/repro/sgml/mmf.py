"""The MultiMedia Forum (MMF) document type.

The paper's running application is the MMF, "an interactive online journal
developed at GMD-IPSI" whose documents are "SGML documents conformant to a
proprietary document type definition" (Section 1).  The original DTD is not
public; this one is reconstructed from the fragment printed in Section 4.3
(``MMFDOC`` containing ``LOGBOOK``, ``DOCTITLE``, ``ABSTRACT`` and ``PARA``
elements) and extended with ``SECTION``/``SECTITLE`` and media/link elements
so the hierarchy and hypermedia experiments have something to climb.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sgml.document import Element
from repro.sgml.dtd import DTD, parse_dtd

#: The MMF document type definition.
MMF_DTD_TEXT = """
<!ELEMENT MMFDOC   - - (LOGBOOK, DOCTITLE, ABSTRACT?, (PARA | SECTION | FIGURE)*)>
<!ELEMENT LOGBOOK  - - (#PCDATA)>
<!ELEMENT DOCTITLE - - (#PCDATA)>
<!ELEMENT ABSTRACT - - (#PCDATA)>
<!ELEMENT SECTION  - - (SECTITLE, (PARA | FIGURE)+)>
<!ELEMENT SECTITLE - - (#PCDATA)>
<!ELEMENT PARA     - - (#PCDATA)>
<!ELEMENT FIGURE   - - (CAPTION)>
<!ELEMENT CAPTION  - - (#PCDATA)>
<!ATTLIST MMFDOC   YEAR   CDATA #IMPLIED
                   TITLE  CDATA #IMPLIED
                   AUTHOR CDATA #IMPLIED
                   TYPE   (article | report | editorial) "article">
<!ATTLIST FIGURE   SRC    CDATA #IMPLIED>
<!ATTLIST PARA     ID       CDATA #IMPLIED
                   LINKEND  CDATA #IMPLIED
                   LINKTYPE CDATA #IMPLIED>
"""


def mmf_dtd() -> DTD:
    """The parsed MMF DTD (fresh instance)."""
    return parse_dtd(MMF_DTD_TEXT, name="MMF")


def build_document(
    title: str,
    paragraphs: Sequence[str],
    year: str = "1994",
    author: str = "",
    abstract: str = "",
    logbook: str = "created by corpus generator",
    doc_type: str = "article",
    sections: Optional[List[Dict]] = None,
    figures: Optional[List[str]] = None,
) -> Element:
    """Assemble a valid MMFDOC element tree.

    ``sections`` entries are dicts with keys ``title`` and ``paragraphs``;
    ``figures`` entries are caption strings.
    """
    attributes = {"TITLE": title, "YEAR": year, "TYPE": doc_type}
    if author:
        attributes["AUTHOR"] = author
    doc = Element("MMFDOC", attributes)
    doc.append_element("LOGBOOK").append_text(logbook)
    doc.append_element("DOCTITLE").append_text(title)
    if abstract:
        doc.append_element("ABSTRACT").append_text(abstract)
    for text in paragraphs:
        doc.append_element("PARA").append_text(text)
    for section in sections or []:
        section_el = doc.append_element("SECTION")
        section_el.append_element("SECTITLE").append_text(section["title"])
        for text in section["paragraphs"]:
            section_el.append_element("PARA").append_text(text)
    for caption in figures or []:
        figure_el = doc.append_element("FIGURE", {"SRC": f"{title[:10]}.img"})
        figure_el.append_element("CAPTION").append_text(caption)
    return doc


#: The example fragment printed verbatim in Section 4.3 of the paper.
PAPER_FRAGMENT = """
<MMFDOC>
<LOGBOOK>entry</LOGBOOK>
<DOCTITLE>Telnet</DOCTITLE>
<ABSTRACT>about telnet</ABSTRACT>
<PARA>Telnet is a protocol for remote terminal access</PARA>
<PARA>Telnet enables interactive sessions on remote hosts</PARA>
</MMFDOC>
"""
