"""Content models and their validation.

A content model is an expression over element names with SGML's occurrence
indicators (``?``, ``*``, ``+``) and connectors (``,`` sequence, ``|``
choice), plus the specials ``#PCDATA``, ``EMPTY`` and ``ANY``.

Validation compiles the model to an anchored regular expression over a
child-tag alphabet — equivalent to the Glushkov automaton of the model but
reusing Python's ``re`` engine, since element names map to unique word
tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import DTDSyntaxError

PCDATA = "#PCDATA"


class ModelNode:
    """Base class of content-model expression nodes."""

    def to_regex(self) -> str:
        raise NotImplementedError

    def mentions_pcdata(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class NameToken(ModelNode):
    """A reference to a child element type (or #PCDATA)."""

    name: str

    def to_regex(self) -> str:
        if self.name == PCDATA:
            # Text leaves are not part of the child-tag sequence; whether
            # text is allowed at all is checked via ``mentions_pcdata``.
            return "(?:)"
        return f"(?:{re.escape(self.name)} )"

    def mentions_pcdata(self) -> bool:
        return self.name == PCDATA


@dataclass(frozen=True)
class Repetition(ModelNode):
    """``child?``, ``child*`` or ``child+``."""

    child: ModelNode
    indicator: str  # "?", "*", "+"

    def to_regex(self) -> str:
        return f"(?:{self.child.to_regex()}){self.indicator}"

    def mentions_pcdata(self) -> bool:
        return self.child.mentions_pcdata()


@dataclass(frozen=True)
class Sequence(ModelNode):
    """``a, b, c`` — ordered sequence."""

    children: Tuple[ModelNode, ...]

    def to_regex(self) -> str:
        return "".join(c.to_regex() for c in self.children)

    def mentions_pcdata(self) -> bool:
        return any(c.mentions_pcdata() for c in self.children)


@dataclass(frozen=True)
class Choice(ModelNode):
    """``a | b | c`` — alternatives."""

    children: Tuple[ModelNode, ...]

    def to_regex(self) -> str:
        return "(?:" + "|".join(c.to_regex() for c in self.children) + ")"

    def mentions_pcdata(self) -> bool:
        return any(c.mentions_pcdata() for c in self.children)


class ContentModel:
    """A compiled content model ready for validation."""

    def __init__(self, source: str) -> None:
        self.source = source.strip()
        self._kind, self._root = _parse_model(self.source)
        if self._root is not None:
            self._pattern = re.compile(self._root.to_regex() + r"\Z")
            self._allows_text = self._root.mentions_pcdata()
        else:
            self._pattern = None
            self._allows_text = self._kind == "ANY"

    @property
    def kind(self) -> str:
        """"EMPTY", "ANY" or "model"."""
        return self._kind

    @property
    def allows_text(self) -> bool:
        """True when text leaves are permitted among the children."""
        return self._allows_text

    def validate(self, child_tags: List[str], has_text: bool) -> Optional[str]:
        """Check a child sequence.

        ``child_tags`` lists direct child element tags in order; ``has_text``
        says whether any non-blank text leaf occurs among the children.
        Returns None when valid, else a human-readable message.
        """
        if self._kind == "ANY":
            return None
        if self._kind == "EMPTY":
            if child_tags or has_text:
                return "declared EMPTY but has content"
            return None
        if has_text and not self._allows_text:
            return "text content not allowed by content model"
        sentence = "".join(f"{t} " for t in child_tags)
        if self._pattern.fullmatch(sentence) is None:
            return (
                f"children ({', '.join(child_tags) or 'none'}) do not match "
                f"content model {self.source}"
            )
        return None

    def __repr__(self) -> str:
        return f"ContentModel({self.source!r})"


def _parse_model(source: str) -> Tuple[str, Optional[ModelNode]]:
    text = source.strip()
    upper = text.upper()
    if upper == "EMPTY":
        return "EMPTY", None
    if upper == "ANY":
        return "ANY", None
    parser = _ModelParser(text)
    node = parser.parse()
    return "model", node


class _ModelParser:
    """Recursive-descent parser for model expressions."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> ModelNode:
        node = self._parse_group_or_name()
        self._skip_ws()
        if self._pos != len(self._text):
            raise DTDSyntaxError(
                f"trailing content in model {self._text!r} at {self._pos}"
            )
        return node

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _parse_group_or_name(self) -> ModelNode:
        self._skip_ws()
        if self._pos >= len(self._text):
            raise DTDSyntaxError(f"unexpected end of content model {self._text!r}")
        if self._text[self._pos] == "(":
            self._pos += 1
            node = self._parse_connector_list()
            self._skip_ws()
            if self._pos >= len(self._text) or self._text[self._pos] != ")":
                raise DTDSyntaxError(f"missing ')' in content model {self._text!r}")
            self._pos += 1
            return self._maybe_repeat(node)
        return self._maybe_repeat(self._parse_name())

    def _parse_connector_list(self) -> ModelNode:
        items = [self._parse_group_or_name()]
        connector = None
        while True:
            self._skip_ws()
            if self._pos < len(self._text) and self._text[self._pos] in ",|":
                ch = self._text[self._pos]
                if connector is None:
                    connector = ch
                elif connector != ch:
                    raise DTDSyntaxError(
                        f"mixed connectors in one group in model {self._text!r}"
                    )
                self._pos += 1
                items.append(self._parse_group_or_name())
            else:
                break
        if len(items) == 1:
            return items[0]
        if connector == ",":
            return Sequence(tuple(items))
        return Choice(tuple(items))

    def _parse_name(self) -> ModelNode:
        self._skip_ws()
        start = self._pos
        if self._pos < len(self._text) and self._text[self._pos] == "#":
            self._pos += 1
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] in "._-"
        ):
            self._pos += 1
        name = self._text[start:self._pos]
        if not name:
            raise DTDSyntaxError(
                f"expected element name at position {start} in model {self._text!r}"
            )
        name = name.upper()
        if name.startswith("#") and name != PCDATA:
            raise DTDSyntaxError(f"unknown reserved name {name!r}")
        return NameToken(name)

    def _maybe_repeat(self, node: ModelNode) -> ModelNode:
        if self._pos < len(self._text) and self._text[self._pos] in "?*+":
            indicator = self._text[self._pos]
            self._pos += 1
            return Repetition(node, indicator)
        return node
