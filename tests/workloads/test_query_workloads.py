"""Query workload generator."""

import pytest

from repro.core.collection import _create_collection, index_objects
from repro.oodb.query.parser import parse_query
from repro.workloads.queries import MixedQueryGenerator


class TestGeneration:
    def test_deterministic(self):
        a = MixedQueryGenerator(seed=3).workload(10)
        b = MixedQueryGenerator(seed=3).workload(10)
        assert [q.text for q in a] == [q.text for q in b]

    def test_all_shapes_parse(self):
        generator = MixedQueryGenerator(seed=4)
        for query in generator.workload(30, shapes=("content", "structure", "consecutive")):
            parse_query(query.text)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            MixedQueryGenerator().workload(1, shapes=("weird",))

    def test_bindings_include_collection(self):
        query = MixedQueryGenerator(seed=5).content_only()
        bindings = query.bindings("COLL_SENTINEL")
        assert bindings["coll"] == "COLL_SENTINEL"
        assert "q" in bindings


class TestExecution:
    def test_workload_runs_against_corpus(self, corpus_system):
        collection = _create_collection(
            corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
        )
        index_objects(collection)
        generator = MixedQueryGenerator(seed=6)
        for query in generator.workload(8):
            rows = corpus_system.db.query(query.text, query.bindings(collection))
            assert isinstance(rows, list)

    def test_consecutive_shape_runs(self, corpus_system):
        collection = _create_collection(
            corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
        )
        index_objects(collection)
        query = MixedQueryGenerator(seed=7).consecutive_elements()
        rows = corpus_system.db.query(query.text, query.bindings(collection))
        assert isinstance(rows, list)
