"""TREC-style evaluation harness."""

import pytest

from repro.workloads.evaluation import (
    RECALL_POINTS,
    evaluate_run,
    interpolated_precision_recall,
    mean_interpolated_curve,
    r_precision,
    run_from_results,
    sign_test,
)

QRELS = {
    "t1": {"a", "b", "c"},
    "t2": {"x"},
}

PERFECT_RUN = {
    "t1": ["a", "b", "c", "z"],
    "t2": ["x", "y"],
}

POOR_RUN = {
    "t1": ["z", "y", "w", "a"],
    "t2": ["y", "z"],
}


class TestEvaluateRun:
    def test_perfect_run_map_is_one(self):
        evaluation = evaluate_run(PERFECT_RUN, QRELS)
        assert evaluation.mean_average_precision == pytest.approx(1.0)
        assert evaluation.mean_r_precision == pytest.approx(1.0)

    def test_poor_run_scores_low(self):
        evaluation = evaluate_run(POOR_RUN, QRELS)
        assert evaluation.mean_average_precision < 0.2

    def test_missing_topic_counts_as_zero(self):
        evaluation = evaluate_run({"t1": ["a", "b", "c"]}, QRELS)
        topics = {t.topic: t for t in evaluation.per_topic}
        assert topics["t2"].average_precision == 0.0

    def test_p_at_k_aggregation(self):
        evaluation = evaluate_run(PERFECT_RUN, QRELS)
        assert 0 < evaluation.mean_precision_at(5) <= 1.0
        with pytest.raises(ValueError):
            evaluation.mean_precision_at(7)

    def test_empty_qrels_topic_skipped(self):
        evaluation = evaluate_run(PERFECT_RUN, {"t1": set()})
        assert evaluation.per_topic == ()
        assert evaluation.mean_average_precision == 0.0


class TestRPrecision:
    def test_exact(self):
        assert r_precision(["a", "z", "b"], {"a", "b"}) == 0.5

    def test_empty_cases(self):
        assert r_precision([], {"a"}) == 0.0
        assert r_precision(["a"], set()) == 0.0


class TestCurves:
    def test_perfect_curve_flat_at_one(self):
        curve = interpolated_precision_recall(["a", "b", "c"], {"a", "b", "c"})
        assert all(precision == 1.0 for _r, precision in curve)

    def test_monotone_nonincreasing(self):
        curve = interpolated_precision_recall(
            ["a", "z", "b", "y", "c"], {"a", "b", "c"}
        )
        precisions = [p for _r, p in curve]
        assert precisions == sorted(precisions, reverse=True)

    def test_eleven_points(self):
        curve = interpolated_precision_recall(["a"], {"a"})
        assert [r for r, _p in curve] == list(RECALL_POINTS)

    def test_mean_curve(self):
        curve = mean_interpolated_curve(PERFECT_RUN, QRELS)
        assert curve[0][1] == pytest.approx(1.0)

    def test_mean_curve_no_topics(self):
        assert mean_interpolated_curve({}, {}) == [
            (point, 0.0) for point in RECALL_POINTS
        ]


class TestSignTest:
    def test_identical_runs_all_ties(self):
        outcome = sign_test(PERFECT_RUN, PERFECT_RUN, QRELS)
        assert outcome["ties"] == 2
        assert outcome["p_value"] == 1.0

    def test_dominant_run_wins(self):
        outcome = sign_test(PERFECT_RUN, POOR_RUN, QRELS)
        assert outcome["wins_a"] == 2
        assert outcome["wins_b"] == 0
        assert outcome["p_value"] <= 0.5

    def test_p_value_shrinks_with_topics(self):
        qrels = {f"t{i}": {"a"} for i in range(10)}
        good = {f"t{i}": ["a"] for i in range(10)}
        bad = {f"t{i}": ["z", "a"] for i in range(10)}
        outcome = sign_test(good, bad, qrels)
        assert outcome["p_value"] < 0.01


class TestRunFromResults:
    def test_score_descending_with_key_tiebreak(self):
        run = run_from_results({"t": {"b": 0.5, "a": 0.5, "c": 0.9}})
        assert run["t"] == ["c", "a", "b"]


class TestEndToEndEvaluation:
    def test_coupled_models_evaluated(self, corpus_system):
        """MAP comparison of retrieval models through the coupling."""
        from repro.core.collection import _create_collection, _get_irs_result, index_objects
        from repro.workloads.corpus import TOPICS

        qrels = {}
        for topic in sorted(TOPICS)[:3]:
            qrels[topic] = {
                str(p.oid)
                for p in corpus_system.db.instances_of("PARA")
                if topic in p.send("getTextContent").split()
            }
        runs = {}
        for model in ("inquery", "vector"):
            collection = _create_collection(
                corpus_system.db, f"eval_{model}", "ACCESS p FROM p IN PARA",
                model=model,
            )
            index_objects(collection)
            results = {
                topic: {str(oid): v for oid, v in _get_irs_result(collection, topic).items()}
                for topic in qrels
            }
            runs[model] = run_from_results(results)
        for model, run in runs.items():
            evaluation = evaluate_run(run, qrels)
            assert evaluation.mean_average_precision > 0.9, model
