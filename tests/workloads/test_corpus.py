"""Corpus generator: determinism and ground-truth control."""

from repro.sgml.mmf import mmf_dtd
from repro.workloads.corpus import TOPICS, CorpusGenerator, load_corpus


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = CorpusGenerator(seed=5).corpus(documents=4)
        b = CorpusGenerator(seed=5).corpus(documents=4)
        for doc_a, doc_b in zip(a, b):
            assert doc_a.title == doc_b.title
            assert doc_a.element.text() == doc_b.element.text()

    def test_different_seeds_differ(self):
        a = CorpusGenerator(seed=5).corpus(documents=4)
        b = CorpusGenerator(seed=6).corpus(documents=4)
        assert any(
            x.element.text() != y.element.text() for x, y in zip(a, b)
        )


class TestGroundTruth:
    def test_topic_signal_term_guaranteed(self):
        generator = CorpusGenerator(seed=1)
        for topic in TOPICS:
            paragraph = generator.paragraph(topic, words=10)
            assert any(word in TOPICS[topic] for word in paragraph.split())

    def test_fixed_topics_respected(self):
        generator = CorpusGenerator(seed=2)
        document = generator.document(topics=["www", None, "nii"])
        assert document.paragraph_topics == ["www", None, "nii"]
        paras = document.element.find_all("PARA")
        assert "www" in paras[0].text()
        assert "nii" in paras[2].text()

    def test_filler_paragraph_has_no_signal(self):
        generator = CorpusGenerator(seed=3)
        paragraph = generator.paragraph(None, words=30)
        for topic, vocabulary in TOPICS.items():
            assert topic not in paragraph.split() or topic in vocabulary


class TestDocumentShape:
    def test_documents_validate_against_mmf_dtd(self):
        dtd = mmf_dtd()
        generator = CorpusGenerator(seed=4)
        for generated in generator.corpus(documents=5, sections=1, figures=1):
            assert dtd.validation_errors(generated.element) == []

    def test_paragraph_count(self):
        generator = CorpusGenerator(seed=5)
        document = generator.document(paragraphs=7)
        # 7 body paragraphs directly under MMFDOC
        body_paras = [
            e for e in document.element.child_elements() if e.tag == "PARA"
        ]
        assert len(body_paras) == 7

    def test_sections_and_figures_present(self):
        generator = CorpusGenerator(seed=6)
        document = generator.document(sections=2, figures=1)
        assert len(document.element.find_all("SECTION")) == 2
        assert len(document.element.find_all("FIGURE")) == 1


class TestLoading:
    def test_load_corpus_returns_aligned_roots(self, system):
        generator = CorpusGenerator(seed=7)
        generated = generator.corpus(documents=3)
        roots = load_corpus(system, generated)
        assert len(roots) == 3
        for root, gen in zip(roots, generated):
            assert root.send("getAttributeValue", "TITLE") == gen.title
