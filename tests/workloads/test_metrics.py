"""Retrieval metrics."""

import pytest

from repro.workloads import metrics


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert metrics.precision_at_k(["a", "b", "c"], ["a", "c"], 2) == 0.5
        assert metrics.precision_at_k(["a", "b"], ["a", "b"], 2) == 1.0

    def test_precision_k_beyond_results(self):
        assert metrics.precision_at_k(["a"], ["a"], 5) == 1.0

    def test_precision_invalid_k(self):
        with pytest.raises(ValueError):
            metrics.precision_at_k(["a"], ["a"], 0)

    def test_recall(self):
        assert metrics.recall(["a", "b"], ["a", "c"]) == 0.5
        assert metrics.recall([], ["a"]) == 0.0
        assert metrics.recall(["a"], []) == 0.0

    def test_average_precision(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert metrics.average_precision(["a", "b", "c"], ["a", "c"]) == pytest.approx(
            (1 + 2 / 3) / 2
        )

    def test_reciprocal_rank(self):
        assert metrics.reciprocal_rank(["x", "a"], ["a"]) == 0.5
        assert metrics.reciprocal_rank(["x"], ["a"]) == 0.0


class TestKendallTau:
    def test_identical_orders(self):
        assert metrics.kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_orders(self):
        assert metrics.kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_partial_agreement(self):
        tau = metrics.kendall_tau(["a", "b", "c"], ["a", "c", "b"])
        assert 0 < tau < 1

    def test_mismatched_items_rejected(self):
        with pytest.raises(ValueError):
            metrics.kendall_tau(["a"], ["b"])

    def test_single_item(self):
        assert metrics.kendall_tau(["a"], ["a"]) == 1.0


class TestSeparation:
    def test_positive_when_ordered(self):
        values = {"M2": 0.5, "M3": 0.3}
        assert metrics.separation(values, "M2", "M3") == pytest.approx(0.2)

    def test_negative_on_inversion(self):
        values = {"M2": 0.1, "M3": 0.3}
        assert metrics.separation(values, "M2", "M3") < 0


class TestTables:
    def test_format_table_aligns(self):
        table = metrics.format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 22.5]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.0000" in table

    def test_print_table(self, capsys):
        metrics.print_table("T", ["h"], [["row"]])
        out = capsys.readouterr().out
        assert "== T ==" in out
        assert "row" in out
