"""The interactive shell, driven programmatically."""

import io

import pytest

from repro.core import DocumentSystem
from repro.sgml.mmf import PAPER_FRAGMENT
from repro.shell import Shell


@pytest.fixture
def shell():
    out = io.StringIO()
    s = Shell(DocumentSystem(), stdout=out)
    s.out = out
    return s


def output_of(shell):
    return shell.out.getvalue()


class TestCommands:
    def test_help(self, shell):
        shell.execute(".help")
        assert ".load" in output_of(shell)

    def test_unknown_command(self, shell):
        shell.execute(".frobnicate")
        assert "unknown command" in output_of(shell)

    def test_mmf_registration(self, shell):
        shell.execute(".mmf")
        assert "MMFDOC" in output_of(shell)

    def test_classes(self, shell):
        shell.execute(".mmf")
        shell.execute(".classes")
        assert "PARA isA Element" in output_of(shell)

    def test_load_document_file(self, shell, tmp_path):
        path = tmp_path / "doc.sgml"
        path.write_text(PAPER_FRAGMENT)
        shell.execute(".mmf")
        shell.execute(f".load {path}")
        assert "root MMFDOC" in output_of(shell)

    def test_load_missing_file(self, shell):
        shell.execute(".load /nonexistent.sgml")
        assert "error:" in output_of(shell)

    def test_dtd_file(self, shell, tmp_path):
        path = tmp_path / "tiny.dtd"
        path.write_text("<!ELEMENT NOTE - - (#PCDATA)>")
        shell.execute(f".dtd {path}")
        assert "NOTE" in output_of(shell)

    def test_quit_stops_run_loop(self, shell):
        source = io.StringIO(".quit\n.mmf\n")
        shell.run(stdin=source, interactive=False)
        assert "bye" in output_of(shell)
        assert "MMFDOC" not in output_of(shell)

    def test_comments_and_blank_lines_ignored(self, shell):
        shell.execute("")
        shell.execute("# a comment")
        assert output_of(shell) == ""


class TestQueriesInShell:
    @pytest.fixture
    def loaded(self, shell, tmp_path):
        path = tmp_path / "doc.sgml"
        path.write_text(PAPER_FRAGMENT)
        shell.execute(".mmf")
        shell.execute(f".load {path}")
        shell.execute(".collection collPara ACCESS p FROM p IN PARA")
        return shell

    def test_collection_creation(self, loaded):
        assert "2 objects indexed" in output_of(loaded)

    def test_collections_listing(self, loaded):
        loaded.execute(".collections")
        out = output_of(loaded)
        assert "collPara: 2 objects, 2 IRS docs" in out
        assert "derivation=maximum" in out

    def test_report_command(self, loaded):
        loaded.execute(".report")
        out = output_of(loaded)
        assert "objects:" in out
        assert "collections: 1" in out

    def test_plain_query(self, loaded):
        loaded.execute("ACCESS p FROM p IN PARA")
        out = output_of(loaded)
        assert "PARA OID" in out
        assert "(2 rows)" in out

    def test_mixed_query_with_bound_collection(self, loaded):
        loaded.execute(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'telnet') > 0.4"
        )
        assert "(2 rows)" in output_of(loaded)

    def test_irs_command(self, loaded):
        loaded.execute(".irs collPara telnet")
        assert "IRS value" in output_of(loaded)

    def test_irs_unknown_binding(self, loaded):
        loaded.execute(".irs nope telnet")
        assert "no collection bound" in output_of(loaded)

    def test_explain(self, loaded):
        loaded.execute(".explain ACCESS p FROM p IN PARA WHERE p.doc_order = 3")
        assert "p IN PARA" in output_of(loaded)

    def test_counters(self, loaded):
        loaded.execute(".irs collPara telnet")
        loaded.execute(".counters")
        assert "IRS queries: " in output_of(loaded)

    def test_dash_renders_health(self, loaded):
        loaded.execute(".irs collPara telnet")
        loaded.execute(".dash")
        out = output_of(loaded)
        assert "status: " in out
        assert "admission: " in out
        assert "merge: " in out
        assert "p50" in out

    def test_bind_alias(self, loaded):
        loaded.execute(".bind c collPara")
        loaded.execute("ACCESS p FROM p IN PARA WHERE p -> getIRSValue(c, 'telnet') > 0.4")
        assert "(2 rows)" in output_of(loaded)

    def test_query_error_reported_not_raised(self, loaded):
        loaded.execute("ACCESS FROM nothing")
        assert "error:" in output_of(loaded)

    def test_no_rows(self, loaded):
        loaded.execute("ACCESS p FROM p IN PARA WHERE p.doc_order = 999")
        assert "(no rows)" in output_of(loaded)

    def test_aggregate_query(self, loaded):
        loaded.execute("ACCESS COUNT(*) FROM p IN PARA")
        assert "2" in output_of(loaded)


class TestScriptedSession:
    def test_full_session(self, tmp_path):
        doc = tmp_path / "d.sgml"
        doc.write_text(PAPER_FRAGMENT)
        script = io.StringIO(
            f".mmf\n.load {doc}\n.collection c ACCESS p FROM p IN PARA\n"
            "ACCESS p, p -> length() FROM p IN PARA "
            "WHERE p -> getIRSValue(c, 'telnet') > 0.4\n.quit\n"
        )
        out = io.StringIO()
        shell = Shell(DocumentSystem(), stdout=out)
        shell.run(stdin=script, interactive=False)
        text = out.getvalue()
        assert "2 objects indexed" in text
        assert "(2 rows)" in text
        assert "bye" in text


class TestDurableCommands:
    @pytest.fixture
    def durable(self, tmp_path):
        out = io.StringIO()
        s = Shell(DocumentSystem(directory=str(tmp_path / "shellsys")), stdout=out)
        s.out = out
        return s

    def test_checkpoint_reports_stats(self, durable, tmp_path):
        doc = tmp_path / "d.sgml"
        doc.write_text(PAPER_FRAGMENT)
        durable.execute(".mmf")
        durable.execute(f".load {doc}")
        durable.execute(".checkpoint")
        out = output_of(durable)
        assert "checkpoint 1:" in out
        assert "records appended" in out

    def test_pack_reports_reclaim(self, durable):
        durable.execute(".checkpoint")
        durable.execute(".pack")
        assert "store now" in output_of(durable)

    def test_checkpoint_on_memory_system_reports_error(self, shell):
        shell.execute(".checkpoint")
        assert "error:" in output_of(shell)

    def test_help_mentions_durability_commands(self, shell):
        shell.execute(".help")
        out = output_of(shell)
        assert ".checkpoint" in out
        assert ".pack" in out
