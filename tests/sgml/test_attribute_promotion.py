"""SGML attribute promotion: indexed structure predicates (requirement 4)."""

import pytest

from repro.oodb.query.evaluator import QueryEvaluator
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def journal(system):
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    for year in ("1993", "1994", "1994", "1995"):
        system.add_document(
            build_document(f"Doc {year}", ["body text here"], year=year), dtd=dtd
        )
    return system


class TestPromotion:
    def test_backfills_existing_instances(self, journal):
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        for doc in journal.db.instances_of("MMFDOC"):
            assert doc.get("YEAR") == doc.send("getAttributeValue", "YEAR")

    def test_creates_index(self, journal):
        index = journal.loader.promote_attribute("MMFDOC", "YEAR")
        assert len(index.lookup("1994")) == 2

    def test_future_loads_synced(self, journal):
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        root = journal.add_document(
            build_document("Late", ["text"], year="1996"), dtd=mmf_dtd()
        )
        assert root.get("YEAR") == "1996"
        assert journal.db.indexes.find("MMFDOC", "YEAR").lookup("1996") == {root.oid}

    def test_optimizer_uses_promoted_index(self, journal):
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        plan = journal.db.explain(
            "ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994'"
        )
        assert plan["variables"]["d"]["access_path"] == "index probe"

    def test_query_results_unchanged_by_promotion(self, journal):
        query = (
            "ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC "
            "WHERE d -> getAttributeValue('YEAR') = '1994'"
        )
        before = sorted(journal.db.query(query))
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        after = sorted(journal.db.query(query))
        assert before == after
        assert len(after) == 2

    def test_index_probe_reduces_candidates(self, journal):
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        evaluator = QueryEvaluator(journal.db)
        _rows, stats = evaluator.run_with_stats(
            "ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1995'"
        )
        assert stats.per_variable_candidates["d"] == 1
        assert stats.method_calls == 0

    def test_set_sgml_attribute_keeps_sync(self, journal):
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        doc = journal.db.instances_of("MMFDOC")[0]
        journal.loader.set_sgml_attribute(doc, "YEAR", "1999")
        assert doc.send("getAttributeValue", "YEAR") == "1999"
        assert doc.get("YEAR") == "1999"
        assert doc.oid in journal.db.indexes.find("MMFDOC", "YEAR").lookup("1999")

    def test_promotion_case_insensitive(self, journal):
        journal.loader.promote_attribute("mmfdoc", "year")
        assert journal.db.indexes.find("MMFDOC", "YEAR") is not None

    def test_repeat_promotion_is_idempotent(self, journal):
        journal.loader.promote_attribute("MMFDOC", "YEAR")
        index = journal.loader.promote_attribute("MMFDOC", "YEAR")
        assert len(index.lookup("1994")) == 2
