"""Content models: parsing and validation."""

import pytest

from repro.errors import DTDSyntaxError
from repro.sgml.content_model import ContentModel


def valid(model, tags, has_text=False):
    return ContentModel(model).validate(tags, has_text) is None


class TestSpecials:
    def test_empty(self):
        assert valid("EMPTY", [])
        assert not valid("EMPTY", ["A"])
        assert not valid("EMPTY", [], has_text=True)

    def test_any(self):
        assert valid("ANY", ["A", "B"], has_text=True)

    def test_pcdata_only(self):
        assert valid("(#PCDATA)", [], has_text=True)
        assert valid("(#PCDATA)", [])
        assert not valid("(#PCDATA)", ["A"])


class TestSequences:
    def test_exact_sequence(self):
        assert valid("(A, B, C)", ["A", "B", "C"])
        assert not valid("(A, B, C)", ["A", "C", "B"])
        assert not valid("(A, B, C)", ["A", "B"])

    def test_optional(self):
        assert valid("(A, B?)", ["A"])
        assert valid("(A, B?)", ["A", "B"])
        assert not valid("(A, B?)", ["A", "B", "B"])

    def test_star(self):
        assert valid("(A*)", [])
        assert valid("(A*)", ["A", "A", "A"])

    def test_plus(self):
        assert not valid("(A+)", [])
        assert valid("(A+)", ["A", "A"])

    def test_text_rejected_without_pcdata(self):
        assert not valid("(A)", ["A"], has_text=True)


class TestChoices:
    def test_simple_choice(self):
        assert valid("(A | B)", ["A"])
        assert valid("(A | B)", ["B"])
        assert not valid("(A | B)", ["A", "B"])

    def test_repeated_choice(self):
        assert valid("((A | B)*)", ["A", "B", "B", "A"])

    def test_mixed_content(self):
        model = "(#PCDATA | A)*"
        assert valid(model, [], has_text=True)
        assert valid(model, ["A", "A"], has_text=True)

    def test_nested_groups(self):
        model = "(T, (A | B)+, C?)"
        assert valid(model, ["T", "A", "B"])
        assert valid(model, ["T", "B", "C"])
        assert not valid(model, ["T", "C"])

    def test_mmf_document_model(self):
        model = "(LOGBOOK, DOCTITLE, ABSTRACT?, (PARA | SECTION | FIGURE)*)"
        assert valid(model, ["LOGBOOK", "DOCTITLE", "PARA", "PARA"])
        assert valid(model, ["LOGBOOK", "DOCTITLE", "ABSTRACT", "SECTION", "FIGURE"])
        assert not valid(model, ["DOCTITLE", "LOGBOOK"])


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "(A, B | C)",   # mixed connectors in one group
            "(A",           # missing close
            "()",           # empty group
            "(#WEIRD)",     # unknown reserved name
            "(A) B",        # trailing content
        ],
    )
    def test_malformed_models_raise(self, source):
        with pytest.raises(DTDSyntaxError):
            ContentModel(source)

    def test_validation_message_names_model(self):
        message = ContentModel("(A, B)").validate(["A"], False)
        assert "content model" in message

    def test_case_insensitive_names(self):
        assert valid("(para)", ["PARA"])
