"""SGML loader: fragmentation into database objects (Section 4.1)."""

import pytest

from repro.oodb import Database
from repro.sgml.loader import ELEMENT_CLASS, SGMLLoader
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def loaded():
    db = Database()
    loader = SGMLLoader(db)
    loader.register_dtd(mmf_dtd())
    doc = build_document(
        "Loaded",
        ["alpha text", "beta text"],
        year="1994",
        sections=[{"title": "Sec", "paragraphs": ["gamma text"]}],
    )
    root = loader.load_document(doc)
    return db, loader, root


class TestClassGeneration:
    def test_element_type_classes_created(self, loaded):
        db, _loader, _root = loaded
        for tag in ("MMFDOC", "PARA", "SECTION", "SECTITLE"):
            assert db.schema.has_class(tag)
            assert db.schema.is_subclass(tag, ELEMENT_CLASS)

    def test_register_dtd_idempotent(self, loaded):
        db, loader, _root = loaded
        assert loader.register_dtd(mmf_dtd()) == []

    def test_base_class_wiring(self):
        db = Database()
        db.define_class("IRSObject")
        loader = SGMLLoader(db, base_class="IRSObject")
        loader.ensure_element_type("PARA")
        assert db.schema.is_subclass("PARA", "IRSObject")


class TestFragmentation:
    def test_one_object_per_element(self, loaded):
        db, _loader, root = loaded
        # MMFDOC + LOGBOOK + DOCTITLE + 2 PARA + SECTION + SECTITLE + PARA
        assert db.object_count() == 8

    def test_parent_child_wiring(self, loaded):
        _db, _loader, root = loaded
        children = root.send("getChildren")
        assert children[0].send("getParent") == root

    def test_doc_order_assigned(self, loaded):
        db, _loader, root = loaded
        orders = [e.get("doc_order") for e in root.send("getDescendants")]
        assert sorted(orders) == orders == list(range(1, 8))

    def test_content_on_leaves(self, loaded):
        db, _loader, _root = loaded
        paras = db.instances_of("PARA")
        assert {p.get("content") for p in paras} == {"alpha text", "beta text", "gamma text"}

    def test_sgml_attributes_stored(self, loaded):
        _db, _loader, root = loaded
        assert root.send("getAttributeValue", "YEAR") == "1994"
        assert root.send("getAttributeValue", "year") == "1994"  # case-insensitive
        assert root.send("getAttributeValue", "NOPE") is None


class TestNavigationMethods:
    def test_get_next_and_prev(self, loaded):
        db, _loader, _root = loaded
        paras = [p for p in db.instances_of("PARA") if p.get("content").startswith(("alpha", "beta"))]
        first = next(p for p in paras if p.get("content") == "alpha text")
        second = first.send("getNext")
        assert second.get("content") == "beta text"
        assert second.send("getPrev") == first

    def test_get_containing(self, loaded):
        db, _loader, root = loaded
        gamma = next(p for p in db.instances_of("PARA") if p.get("content") == "gamma text")
        assert gamma.send("getContaining", "SECTION").get("tag") == "SECTION"
        assert gamma.send("getContaining", "MMFDOC") == root
        assert gamma.send("getContaining", "FIGURE") is None

    def test_get_root(self, loaded):
        db, _loader, root = loaded
        for obj in db.instances_of("PARA"):
            assert obj.send("getRoot") == root

    def test_get_text_content_recursive(self, loaded):
        _db, _loader, root = loaded
        text = root.send("getTextContent")
        assert "alpha text" in text and "gamma text" in text

    def test_length(self, loaded):
        db, _loader, _root = loaded
        para = db.instances_of("PARA")[0]
        assert para.send("length") == len(para.get("content"))

    def test_is_leaf(self, loaded):
        db, _loader, root = loaded
        assert db.instances_of("PARA")[0].send("isLeaf")
        assert not root.send("isLeaf")

    def test_get_descendants_filtered(self, loaded):
        _db, _loader, root = loaded
        assert len(root.send("getDescendants", "PARA")) == 3


class TestEditing:
    def test_insert_element(self, loaded):
        db, loader, root = loaded
        new = loader.insert_element(root, "PARA", "inserted text")
        assert new.send("getParent") == root
        assert new.oid in root.get("children")
        assert db.instances_of("PARA")[-1].get("content") == "inserted text"

    def test_insert_at_position(self, loaded):
        _db, loader, root = loaded
        new = loader.insert_element(root, "PARA", "front", position=0)
        assert root.get("children")[0] == new.oid

    def test_update_content(self, loaded):
        db, loader, _root = loaded
        para = db.instances_of("PARA")[0]
        loader.update_content(para, "updated")
        assert para.get("content") == "updated"

    def test_remove_element_subtree(self, loaded):
        db, loader, root = loaded
        section = db.instances_of("SECTION")[0]
        removed = loader.remove_element(section)
        assert removed == 3  # SECTION + SECTITLE + PARA
        assert section.oid not in root.get("children")
        assert db.object_count() == 5

    def test_delete_document(self, loaded):
        db, loader, root = loaded
        assert loader.delete_document(root) == 8
        assert db.object_count() == 0
