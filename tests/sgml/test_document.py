"""Element tree: construction, navigation, text extraction."""

import pytest

from repro.sgml.document import Element, Text


@pytest.fixture
def tree():
    doc = Element("MMFDOC", {"year": "1994"})
    title = doc.append_element("DOCTITLE")
    title.append_text("Telnet")
    section = doc.append_element("SECTION")
    section.append_element("SECTITLE").append_text("Intro")
    p1 = section.append_element("PARA")
    p1.append_text("first paragraph")
    p2 = section.append_element("PARA")
    p2.append_text("second paragraph")
    doc.tree_parts = (title, section, p1, p2)
    return doc


class TestConstruction:
    def test_tags_uppercased(self):
        assert Element("para").tag == "PARA"

    def test_attribute_names_uppercased(self):
        assert Element("p", {"id": "x"}).attributes == {"ID": "x"}

    def test_append_sets_parent(self, tree):
        _title, section, p1, _p2 = tree.tree_parts
        assert p1.parent is section
        assert section.parent is tree


class TestNavigation:
    def test_child_elements_excludes_text(self, tree):
        title = tree.tree_parts[0]
        assert title.child_elements() == []
        assert len(tree.child_elements()) == 2

    def test_iter_document_order(self, tree):
        tags = [e.tag for e in tree.iter()]
        assert tags == ["MMFDOC", "DOCTITLE", "SECTION", "SECTITLE", "PARA", "PARA"]

    def test_find_all(self, tree):
        assert len(tree.find_all("PARA")) == 2
        assert tree.find_all("para")[0].text() == "first paragraph"

    def test_find_first(self, tree):
        assert tree.find("SECTITLE").text() == "Intro"
        assert tree.find("NOPE") is None

    def test_ancestors(self, tree):
        p1 = tree.tree_parts[2]
        assert [a.tag for a in p1.ancestors()] == ["SECTION", "MMFDOC"]

    def test_next_sibling(self, tree):
        _t, _s, p1, p2 = tree.tree_parts
        assert p1.next_sibling() is p2
        assert p2.next_sibling() is None

    def test_next_sibling_of_root_is_none(self, tree):
        assert tree.next_sibling() is None

    def test_depth(self, tree):
        assert tree.depth() == 0
        assert tree.tree_parts[2].depth() == 2


class TestText:
    def test_subtree_text(self, tree):
        assert tree.text() == "Telnet Intro first paragraph second paragraph"

    def test_own_text_only_direct_leaves(self, tree):
        section = tree.tree_parts[1]
        assert section.own_text() == ""
        assert tree.tree_parts[0].own_text() == "Telnet"

    def test_whitespace_leaves_skipped(self):
        element = Element("P")
        element.append(Text("  \n "))
        element.append_text("word")
        assert element.text() == "word"

    def test_is_leaf(self, tree):
        assert tree.tree_parts[2].is_leaf()
        assert not tree.is_leaf()

    def test_element_count(self, tree):
        assert tree.element_count() == 6

    def test_text_node_equality(self):
        assert Text("x") == Text("x")
        assert Text("x") != Text("y")
