"""DTD parsing and document validation."""

import pytest

from repro.errors import DTDSyntaxError, ValidationError
from repro.sgml.dtd import parse_dtd
from repro.sgml.document import Element
from repro.sgml.mmf import MMF_DTD_TEXT

SIMPLE_DTD = """
<!-- a small test DTD -->
<!ELEMENT DOC - - (HEAD, BODY)>
<!ELEMENT HEAD - O (#PCDATA)>
<!ELEMENT BODY - - (PARA+)>
<!ELEMENT PARA - - (#PCDATA)>
<!ATTLIST DOC  YEAR   NUMBER #REQUIRED
               KIND   (draft | final) "draft"
               LABEL  CDATA #IMPLIED>
"""


@pytest.fixture
def dtd():
    return parse_dtd(SIMPLE_DTD, name="simple")


class TestParsing:
    def test_elements_parsed(self, dtd):
        assert dtd.element_names() == ["DOC", "HEAD", "BODY", "PARA"]

    def test_minimization_recorded(self, dtd):
        assert dtd.element("HEAD").minimization == "- O"
        assert dtd.element("DOC").minimization == "- -"

    def test_attlist_parsed(self, dtd):
        attrs = dtd.element("DOC").attributes
        assert attrs["YEAR"].required
        assert attrs["KIND"].default == "draft"
        assert attrs["KIND"].allowed_values == ("draft", "final")
        assert attrs["LABEL"].default is None

    def test_comments_stripped(self):
        parse_dtd("<!-- only a comment -->")

    def test_mmf_dtd_parses(self):
        dtd = parse_dtd(MMF_DTD_TEXT)
        assert "MMFDOC" in dtd.element_names()
        assert dtd.element("MMFDOC").attributes["TYPE"].default == "article"

    @pytest.mark.parametrize(
        "text",
        [
            "<!ELEMENT X>",                       # missing model
            "<!ELEMENT X - - (A)><!ELEMENT X - - (B)>",  # duplicate
            "<!ATTLIST NOPE A CDATA #IMPLIED>",   # attlist for unknown element
            "<!WEIRD thing>",                     # unknown declaration
            "<!ELEMENT X - - (A)> stray words",   # garbage between declarations
            "<!ATTLIST X>",
        ],
    )
    def test_malformed_dtds_raise(self, text):
        base = "<!ELEMENT X - - (A)><!ELEMENT A - - (#PCDATA)>"
        with pytest.raises(DTDSyntaxError):
            parse_dtd(text if "ATTLIST X" not in text else base + text)

    def test_unknown_element_lookup_raises(self, dtd):
        with pytest.raises(DTDSyntaxError):
            dtd.element("NOPE")


def make_valid_doc():
    doc = Element("DOC", {"YEAR": "1994"})
    doc.append_element("HEAD").append_text("title")
    body = doc.append_element("BODY")
    body.append_element("PARA").append_text("text")
    return doc


class TestValidation:
    def test_valid_document(self, dtd):
        dtd.validate(make_valid_doc())

    def test_missing_required_attribute(self, dtd):
        doc = make_valid_doc()
        del doc.attributes["YEAR"]
        errors = dtd.validation_errors(doc)
        assert any("YEAR" in e for e in errors)

    def test_bad_enumeration_value(self, dtd):
        doc = make_valid_doc()
        doc.attributes["KIND"] = "sketchy"
        assert any("KIND" in e for e in dtd.validation_errors(doc))

    def test_bad_number_value(self, dtd):
        doc = make_valid_doc()
        doc.attributes["YEAR"] = "ninety"
        assert any("NUMBER" in e for e in dtd.validation_errors(doc))

    def test_wrong_child_order(self, dtd):
        doc = Element("DOC", {"YEAR": "1994"})
        doc.append_element("BODY").append_element("PARA").append_text("x")
        doc.append_element("HEAD").append_text("late")
        assert dtd.validation_errors(doc)

    def test_undeclared_element(self, dtd):
        doc = make_valid_doc()
        doc.append_element("MYSTERY")
        assert any("MYSTERY" in e for e in dtd.validation_errors(doc))

    def test_validate_raises_on_error(self, dtd):
        doc = make_valid_doc()
        del doc.attributes["YEAR"]
        with pytest.raises(ValidationError):
            dtd.validate(doc)

    def test_apply_defaults(self, dtd):
        doc = make_valid_doc()
        dtd.apply_defaults(doc)
        assert doc.attributes["KIND"] == "draft"

    def test_apply_defaults_keeps_explicit(self, dtd):
        doc = make_valid_doc()
        doc.attributes["KIND"] = "final"
        dtd.apply_defaults(doc)
        assert doc.attributes["KIND"] == "final"
