"""General entity declarations and resolution."""

import pytest

from repro.errors import DTDSyntaxError, SGMLSyntaxError
from repro.sgml.dtd import parse_dtd
from repro.sgml.parser import parse_document

DTD_TEXT = """
<!ELEMENT DOC - - (PARA+)>
<!ELEMENT PARA - - (#PCDATA)>
<!ENTITY gmd "GMD-IPSI Darmstadt">
<!ENTITY www "World Wide Web">
<!ATTLIST DOC LABEL CDATA #IMPLIED>
"""


@pytest.fixture
def dtd():
    return parse_dtd(DTD_TEXT, name="entities")


class TestDeclaration:
    def test_entities_parsed(self, dtd):
        assert dtd.entities == {
            "gmd": "GMD-IPSI Darmstadt",
            "www": "World Wide Web",
        }

    def test_duplicate_entity_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd('<!ENTITY a "x"><!ENTITY a "y">')

    def test_parameter_entities_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd('<!ENTITY % model "(#PCDATA)">')

    def test_malformed_entity_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ENTITY broken unquoted>")

    def test_single_quoted_entity(self):
        dtd = parse_dtd("<!ENTITY q 'it''s'>")
        assert dtd.entities["q"] == "it''s" or dtd.entities["q"]


class TestResolution:
    def test_entity_resolved_in_text(self, dtd):
        root = parse_document("<DOC><PARA>visit the &www; today</PARA></DOC>", dtd=dtd)
        assert root.text() == "visit the World Wide Web today"

    def test_entity_resolved_in_attribute(self, dtd):
        root = parse_document('<DOC LABEL="&gmd;"><PARA>x</PARA></DOC>', dtd=dtd)
        assert root.attributes["LABEL"] == "GMD-IPSI Darmstadt"

    def test_builtin_entities_still_work(self, dtd):
        root = parse_document("<DOC><PARA>&amp; &www;</PARA></DOC>", dtd=dtd)
        assert root.text() == "& World Wide Web"

    def test_undeclared_entity_still_rejected(self, dtd):
        with pytest.raises(SGMLSyntaxError):
            parse_document("<DOC><PARA>&nope;</PARA></DOC>", dtd=dtd)

    def test_without_dtd_declared_entities_unknown(self):
        with pytest.raises(SGMLSyntaxError):
            parse_document("<DOC><PARA>&www;</PARA></DOC>")

    def test_entity_text_is_indexed(self, system, dtd):
        system.register_dtd(dtd)
        root = system.add_document(
            "<DOC><PARA>all about the &www; and more</PARA></DOC>", dtd=dtd
        )
        from repro.core.collection import _create_collection, _get_irs_result, index_objects

        collection = _create_collection(system.db, "c", "ACCESS p FROM p IN PARA")
        index_objects(collection)
        values = _get_irs_result(collection, "world")
        assert values  # the expansion text is retrievable
