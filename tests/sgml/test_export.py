"""HTML export of document objects."""

import pytest

from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.sgml.export import HTMLExporter, export_document
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def doc_root(system):
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    return system.add_document(
        build_document(
            "Export & Test",
            ["the www paragraph <one>", "another paragraph"],
            abstract="short abstract",
            sections=[{"title": "Sec", "paragraphs": ["inner para"]}],
            figures=["a diagram"],
        ),
        dtd=dtd,
    )


class TestRendering:
    def test_structure_mapped_to_html(self, doc_root):
        html_text = HTMLExporter().render(doc_root)
        assert html_text.startswith("<article>")
        assert "<h1>Export &amp; Test</h1>" in html_text
        assert "<h2>Sec</h2>" in html_text
        assert "<figcaption>a diagram</figcaption>" in html_text

    def test_entities_escaped(self, doc_root):
        html_text = HTMLExporter().render(doc_root)
        assert "&lt;one&gt;" in html_text
        assert "<one>" not in html_text

    def test_logbook_becomes_comment(self, doc_root):
        html_text = HTMLExporter().render(doc_root)
        assert "<!-- logbook:" in html_text

    def test_unknown_tags_render_as_div(self, system, doc_root):
        element = system.loader.insert_element(doc_root, "WEIRD", "odd content")
        html_text = HTMLExporter().render(element)
        assert html_text == "<div>odd content</div>"

    def test_page_wrapper(self, doc_root):
        page = export_document(doc_root)
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>Export &amp; Test</title>" in page

    def test_custom_stylesheet(self, doc_root):
        exporter = HTMLExporter(stylesheet={"PARA": ("<li>", "</li>")})
        html_text = exporter.render(doc_root)
        assert "<li>the www paragraph" in html_text


class TestHighlighting:
    def test_relevant_paragraphs_marked(self, system, doc_root):
        collection = _create_collection(system.db, "c", "ACCESS p FROM p IN PARA")
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        exporter = HTMLExporter(highlight_values=values)
        html_text = exporter.render(doc_root)
        assert "<mark>the www paragraph" in html_text
        assert "data-relevance=" in html_text
        assert "<mark>another paragraph" not in html_text

    def test_threshold_filters_marks(self, system, doc_root):
        collection = _create_collection(system.db, "c2", "ACCESS p FROM p IN PARA")
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        exporter = HTMLExporter(highlight_values=values, highlight_threshold=0.99)
        assert "<mark>" not in exporter.render(doc_root)

    def test_rendering_reflects_edits(self, system, doc_root):
        para = doc_root.send("getDescendants", "PARA")[0]
        system.loader.update_content(para, "edited body")
        assert "edited body" in HTMLExporter().render(doc_root)
