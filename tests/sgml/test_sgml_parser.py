"""SGML document parser and serializer."""

import pytest

from repro.errors import SGMLSyntaxError, ValidationError
from repro.sgml.mmf import PAPER_FRAGMENT, build_document, mmf_dtd
from repro.sgml.parser import parse_document, serialize


class TestParsing:
    def test_paper_fragment(self):
        root = parse_document(PAPER_FRAGMENT)
        assert root.tag == "MMFDOC"
        assert [c.tag for c in root.child_elements()] == [
            "LOGBOOK", "DOCTITLE", "ABSTRACT", "PARA", "PARA",
        ]

    def test_attributes(self):
        root = parse_document('<D year="1994" kind=draft flag><P>x</P></D>')
        assert root.attributes == {"YEAR": "1994", "KIND": "draft", "FLAG": "flag"}

    def test_single_quoted_attribute(self):
        root = parse_document("<D a='b c'><P>x</P></D>")
        assert root.attributes["A"] == "b c"

    def test_text_with_entities(self):
        root = parse_document("<P>Fischer &amp; Aberer &lt;eds&gt;</P>")
        assert root.text() == "Fischer & Aberer <eds>"

    def test_numeric_entities(self):
        assert parse_document("<P>&#65;&#x42;</P>").text() == "AB"

    def test_comments_skipped(self):
        root = parse_document("<!-- prolog --><D><!-- inner --><P>x</P></D>")
        assert root.find("P").text() == "x"

    def test_doctype_skipped(self):
        root = parse_document('<!DOCTYPE MMFDOC SYSTEM "mmf.dtd"><MMFDOC></MMFDOC>')
        assert root.tag == "MMFDOC"

    def test_self_closing_tag(self):
        root = parse_document("<D><IMG src='x'/><P>t</P></D>")
        assert root.child_elements()[0].tag == "IMG"

    def test_whitespace_only_text_dropped(self):
        root = parse_document("<D>\n  <P>x</P>\n</D>")
        assert len(root.children) == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<D><P>x</P>",            # missing end tag
            "<D></E>",                # mismatched end tag
            "<D><P>x</P></D><D></D>", # two roots
            "<D>&nope;</D>",          # unknown entity
            "<D a='b></D>",           # unterminated quote
            "just text",              # no root element
            "<1BAD></1BAD>",          # bad element name
            "<D",                     # unterminated tag
        ],
    )
    def test_malformed_documents_raise(self, text):
        with pytest.raises(SGMLSyntaxError):
            parse_document(text)


class TestValidationIntegration:
    def test_parse_with_dtd_applies_defaults(self):
        root = parse_document(PAPER_FRAGMENT, dtd=mmf_dtd())
        assert root.attributes["TYPE"] == "article"

    def test_parse_with_dtd_rejects_invalid(self):
        with pytest.raises(ValidationError):
            parse_document("<MMFDOC><PARA>x</PARA></MMFDOC>", dtd=mmf_dtd())


class TestSerialization:
    def test_round_trip_preserves_structure(self):
        original = build_document(
            "Round Trip", ["first para", "second para"],
            sections=[{"title": "S", "paragraphs": ["inner"]}],
        )
        text = serialize(original)
        reparsed = parse_document(text)
        assert [e.tag for e in reparsed.iter()] == [e.tag for e in original.iter()]
        assert reparsed.text() == original.text()
        assert reparsed.attributes == original.attributes

    def test_entities_escaped(self):
        doc = build_document("A & B < C", ["x > y"])
        reparsed = parse_document(serialize(doc))
        assert reparsed.attributes["TITLE"] == "A & B < C"
        assert "x > y" in reparsed.text()

    def test_compact_mode(self):
        doc = build_document("T", ["p"])
        compact = serialize(doc, pretty=False)
        assert "\n" not in compact
        assert parse_document(compact).text() == doc.text()
