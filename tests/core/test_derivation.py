"""Derivation schemes (Section 4.5.2), incl. the Figure 4 experiment."""

import pytest

from repro.core import DocumentSystem
from repro.core.derivation import (
    component_values,
    derive_average,
    derive_maximum,
    known_schemes,
    register_scheme,
    scheme_named,
)
from repro.errors import CouplingError
from repro.workloads.figure4 import (
    EXPECTED_PAIRS,
    EXPECTED_RELEVANT,
    load_figure4,
    rank_documents,
    satisfied_pairs,
)


@pytest.fixture(scope="module")
def figure4():
    system = DocumentSystem()
    setup = load_figure4(system)
    setup["system"] = system
    return setup


class TestComponents:
    def test_components_are_indexed_descendants(self, figure4):
        m2 = figure4["roots"]["M2"]
        components = component_values(figure4["collection"], "www", m2)
        tags = {c.get("tag") for c, _v in components}
        assert tags == {"PARA"}
        assert len(components) == 2  # P4, P5

    def test_unmatched_components_contribute_zero(self, figure4):
        m2 = figure4["roots"]["M2"]
        components = component_values(figure4["collection"], "www", m2)
        values = sorted(v for _c, v in components)
        assert values[0] == 0.0  # P5 has no www
        assert values[1] > 0.0   # P4 has www

    def test_leaf_object_has_no_components(self, figure4):
        p4 = figure4["paragraphs"]["P4"]
        assert component_values(figure4["collection"], "www", p4) == []
        assert derive_maximum(figure4["collection"], "www", p4) == 0.0


class TestSchemeBasics:
    def test_known_schemes(self):
        names = known_schemes()
        for expected in (
            "maximum", "average", "weighted_type", "length_weighted",
            "subquery", "subquery_locality",
        ):
            assert expected in names

    def test_unknown_scheme_raises(self):
        with pytest.raises(CouplingError):
            scheme_named("nope")

    def test_register_custom_scheme(self, figure4):
        register_scheme("constant", lambda coll, query, obj: 0.42)
        try:
            figure4["collection"].set("derivation", "constant")
            figure4["collection"].set("buffer", {})
            value = figure4["roots"]["M1"].send(
                "deriveIRSValue", figure4["collection"], "www"
            )
            assert value == 0.42
        finally:
            from repro.core.derivation import _SCHEMES

            _SCHEMES.pop("constant", None)

    def test_maximum_at_least_average(self, figure4):
        collection = figure4["collection"]
        for root in figure4["roots"].values():
            assert derive_maximum(collection, "www", root) >= derive_average(
                collection, "www", root
            )

    def test_weighted_type_weights_respected(self, figure4):
        collection = figure4["collection"]
        m3 = figure4["roots"]["M3"]
        collection.set("type_weights", {"PARA": 0.0})
        try:
            from repro.core.derivation import derive_weighted_type

            assert derive_weighted_type(collection, "www", m3) == 0.0
        finally:
            collection.set("type_weights", {})


class TestFigure4:
    """The worked example of Section 4.5.2, quantitatively."""

    def test_paragraph_winner_is_p4(self, figure4):
        from repro.core.collection import _get_irs_result

        values = _get_irs_result(figure4["collection"], "#and(WWW NII)")
        best = max(values, key=values.get)
        assert best == figure4["paragraphs"]["P4"].oid

    def test_maximum_cannot_separate_m3_from_m1(self, figure4):
        ranking = dict(
            rank_documents(figure4["roots"], figure4["collection"], "#and(WWW NII)", "maximum")
        )
        assert ranking["M3"] == pytest.approx(ranking["M1"])

    def test_average_demotes_m2(self, figure4):
        ranking = rank_documents(
            figure4["roots"], figure4["collection"], "#and(WWW NII)", "average"
        )
        assert ranking[0][0] != "M2"

    def test_subquery_separates_m3_from_m4(self, figure4):
        ranking = dict(
            rank_documents(figure4["roots"], figure4["collection"], "#and(WWW NII)", "subquery")
        )
        assert ranking["M3"] > ranking["M4"]

    def test_subquery_ranks_relevant_documents_top(self, figure4):
        ranking = rank_documents(
            figure4["roots"], figure4["collection"], "#and(WWW NII)", "subquery"
        )
        top_two = {name for name, _v in ranking[:2]}
        assert top_two == set(EXPECTED_RELEVANT)

    def test_subquery_locality_satisfies_all_paper_constraints(self, figure4):
        ranking = rank_documents(
            figure4["roots"], figure4["collection"], "#and(WWW NII)", "subquery_locality"
        )
        assert satisfied_pairs(ranking) == EXPECTED_PAIRS

    def test_no_fixed_scheme_is_best_everywhere(self, figure4):
        # For the single-term query, maximum behaves perfectly well —
        # scheme choice is application semantics, the paper's core claim.
        ranking = dict(
            rank_documents(figure4["roots"], figure4["collection"], "WWW", "maximum")
        )
        assert ranking["M1"] > ranking["M4"]
        assert ranking["M2"] > ranking["M4"]
