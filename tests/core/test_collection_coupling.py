"""COLLECTION coupling methods: indexObjects, getIRSResult, findIRSValue."""

import pytest

from repro.core.collection import (
    _create_collection,
    _get_irs_result,
    index_objects,
    segment_text,
)
from repro.errors import CouplingError
from repro.oodb.oid import OID


class TestCreateCollection:
    def test_creates_irs_collection(self, mmf_system):
        _create_collection(mmf_system.db, "mine", "ACCESS p FROM p IN PARA")
        assert mmf_system.engine.has_collection("mine")

    def test_duplicate_name_rejected(self, mmf_system):
        _create_collection(mmf_system.db, "mine", "")
        with pytest.raises(CouplingError):
            _create_collection(mmf_system.db, "mine", "")

    def test_arbitrary_number_of_collections(self, mmf_system):
        for i in range(5):
            _create_collection(mmf_system.db, f"coll{i}", "")
        assert len(mmf_system.engine.collection_names()) == 5


class TestIndexObjects:
    def test_indexes_spec_query_result(self, mmf_system, para_collection):
        assert para_collection.send("memberCount") == 6
        irs = mmf_system.engine.collection("collPara")
        assert len(irs) == 6

    def test_oid_metadata_attached(self, mmf_system, para_collection):
        irs = mmf_system.engine.collection("collPara")
        for document in irs.documents():
            oid = OID.parse(document.metadata["oid"])
            assert mmf_system.db.object_exists(oid)

    def test_overlapping_collections_allowed(self, mmf_system, para_collection):
        # The same paragraphs can belong to a second collection (Figure 2).
        other = _create_collection(
            mmf_system.db, "collPara2", "ACCESS p FROM p IN PARA"
        )
        index_objects(other)
        assert other.send("memberCount") == 6

    def test_spec_query_override_is_remembered(self, mmf_system):
        collection = _create_collection(mmf_system.db, "c", "")
        index_objects(collection, spec_query="ACCESS d FROM d IN MMFDOC")
        assert collection.get("spec_query") == "ACCESS d FROM d IN MMFDOC"
        assert collection.send("memberCount") == 3

    def test_missing_spec_query_rejected(self, mmf_system):
        collection = _create_collection(mmf_system.db, "c", "")
        with pytest.raises(CouplingError):
            index_objects(collection)

    def test_multi_column_spec_query_rejected(self, mmf_system):
        collection = _create_collection(
            mmf_system.db, "c", "ACCESS p, p -> length() FROM p IN PARA"
        )
        with pytest.raises(CouplingError):
            index_objects(collection)

    def test_non_irsobject_rejected(self, mmf_system):
        mmf_system.db.define_class("Alien")
        mmf_system.db.create_object("Alien")
        collection = _create_collection(mmf_system.db, "c", "ACCESS a FROM a IN Alien")
        with pytest.raises(CouplingError):
            index_objects(collection)

    def test_reindex_replaces_documents(self, mmf_system, para_collection):
        index_objects(para_collection)
        irs = mmf_system.engine.collection("collPara")
        assert len(irs) == 6  # not 12

    def test_reindex_clears_buffer(self, mmf_system, para_collection):
        _get_irs_result(para_collection, "www")
        assert para_collection.get("buffer")
        index_objects(para_collection)
        assert para_collection.get("buffer") == {}

    def test_spool_file_written_with_result_files(self, tmp_path):
        from repro.core import DocumentSystem
        from repro.sgml.mmf import build_document, mmf_dtd

        system = DocumentSystem(directory=str(tmp_path))
        system.register_dtd(mmf_dtd())
        system.add_document(build_document("T", ["some www text"]), dtd=mmf_dtd())
        collection = _create_collection(system.db, "c", "ACCESS p FROM p IN PARA")
        index_objects(collection)
        spool = tmp_path / "irs" / "c.spool.txt"
        assert spool.exists()
        assert "www" in spool.read_text()
        system.close()


class TestGetIRSResult:
    def test_returns_oid_keyed_values(self, mmf_system, para_collection):
        values = _get_irs_result(para_collection, "www")
        assert values
        for oid, value in values.items():
            assert isinstance(oid, OID)
            assert 0 < value <= 1

    def test_second_call_hits_buffer(self, mmf_system, para_collection):
        mmf_system.engine.counters.reset()
        _get_irs_result(para_collection, "www")
        _get_irs_result(para_collection, "www")
        assert mmf_system.engine.counters.queries_executed == 1

    def test_distinct_queries_distinct_entries(self, mmf_system, para_collection):
        mmf_system.engine.counters.reset()
        _get_irs_result(para_collection, "www")
        _get_irs_result(para_collection, "nii")
        assert mmf_system.engine.counters.queries_executed == 2

    def test_model_override_used(self, mmf_system):
        collection = _create_collection(
            mmf_system.db, "bool", "ACCESS p FROM p IN PARA", model="boolean"
        )
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        assert set(values.values()) == {1.0}


class TestFindIRSValue:
    def test_member_value_from_irs(self, mmf_system, para_collection):
        values = _get_irs_result(para_collection, "www")
        oid = next(iter(values))
        obj = mmf_system.db.get_object(oid)
        assert para_collection.send("findIRSValue", "www", obj) == values[oid]

    def test_member_without_match_scores_zero(self, mmf_system, para_collection):
        values = _get_irs_result(para_collection, "www")
        paras = mmf_system.db.instances_of("PARA")
        unmatched = [p for p in paras if p.oid not in values]
        assert unmatched
        assert para_collection.send("findIRSValue", "www", unmatched[0]) == 0.0

    def test_nonmember_derives(self, mmf_system, para_collection):
        doc = mmf_system.roots[1]
        value = para_collection.send("findIRSValue", "www", doc)
        assert value > 0
        assert mmf_system.context.counters.derivations == 1

    def test_derived_value_amended_into_buffer(self, mmf_system, para_collection):
        doc = mmf_system.roots[1]
        para_collection.send("findIRSValue", "www", doc)
        mmf_system.context.counters.reset()
        para_collection.send("findIRSValue", "www", doc)
        assert mmf_system.context.counters.derivations == 0  # buffered now


class TestContainment:
    def test_contains_object(self, mmf_system, para_collection):
        para = mmf_system.db.instances_of("PARA")[0]
        doc = mmf_system.roots[0]
        assert para_collection.send("containsObject", para)
        assert not para_collection.send("containsObject", doc)


class TestSegmentText:
    def test_no_segmentation(self):
        assert segment_text("a b c", 0) == ["a b c"]

    def test_even_split(self):
        assert segment_text("a b c d", 2) == ["a b", "c d"]

    def test_remainder_kept(self):
        assert segment_text("a b c d e", 2) == ["a b", "c d", "e"]

    def test_empty_text_single_segment(self):
        assert segment_text("", 30) == [""]

    def test_segmented_collection_multiplies_documents(self, mmf_system):
        collection = _create_collection(
            mmf_system.db, "seg", "ACCESS d FROM d IN MMFDOC", segment_words=4
        )
        index_objects(collection)
        irs = mmf_system.engine.collection("seg")
        assert len(irs) > 3  # more IRS documents than MMF documents
        doc_map = collection.get("doc_map")
        assert any(len(ids) > 1 for ids in doc_map.values())
