"""The paper's file-based IRS exchange (Section 4.5).

"Currently the IRS writes the result to a file which is parsed afterwards
to extract the OID-relevance value pairs.  This mechanism can be improved
by using the API of an IRS."  Both mechanisms exist; these tests pin the
file path down.
"""

import os

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def file_system():
    system = DocumentSystem(use_result_files=True)
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    system.add_document(
        build_document("Doc", ["the www paragraph here", "the nii paragraph there"]),
        dtd=dtd,
    )
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


class TestFileExchange:
    def test_query_answers_through_result_file(self, file_system):
        system, collection = file_system
        values = _get_irs_result(collection, "www")
        assert values
        result_files = [
            name
            for name in os.listdir(system.context.result_file_directory)
            if name.endswith(".result")
        ]
        assert result_files  # the exchange file is on disk

    def test_file_and_api_results_agree(self, file_system):
        system, collection = file_system
        via_file = _get_irs_result(collection, "nii")
        direct = system.engine.query("collPara", "nii").by_metadata(
            system.engine.collection("collPara"), "oid"
        )
        assert {str(oid): round(v, 5) for oid, v in via_file.items()} == {
            k: round(v, 5) for k, v in direct.items()
        }

    def test_spool_file_written_at_indexing(self, file_system):
        system, _collection = file_system
        spool = os.path.join(system.context.result_file_directory, "collPara.spool.txt")
        assert os.path.exists(spool)
        content = open(spool, encoding="utf-8").read()
        assert "www paragraph" in content
        assert "OID" in content

    def test_buffer_still_avoids_repeat_files(self, file_system):
        system, collection = file_system
        _get_irs_result(collection, "www")
        written_before = system.engine.counters.result_files_written
        _get_irs_result(collection, "www")  # buffered: no second file
        assert system.engine.counters.result_files_written == written_before

    def test_long_queries_produce_safe_filenames(self, file_system):
        system, collection = file_system
        nasty = "#and(" + " ".join(f"term{i}" for i in range(20)) + ")"
        _get_irs_result(collection, nasty)  # must not raise on filename length
