"""Negation semantics (Section 6: open world vs closed world)."""

import pytest

from repro.core.collection import _get_irs_result
from repro.core.negation import (
    CLOSED_WORLD,
    OPEN_WORLD,
    closed_world_not,
    members,
    negation_result,
    open_world_not,
)
from repro.irs.models.probabilistic import DEFAULT_BELIEF


@pytest.fixture
def setup(mmf_system, para_collection):
    return mmf_system, para_collection


class TestClosedWorld:
    def test_complement_within_membership(self, setup):
        _system, collection = setup
        matching = {
            oid
            for oid, value in _get_irs_result(collection, "telnet").items()
            if value > 0.45
        }
        negated = closed_world_not(collection, "telnet", 0.45)
        assert negated == members(collection) - matching
        assert negated.isdisjoint(matching)

    def test_partition_is_total(self, setup):
        _system, collection = setup
        matching = {
            oid
            for oid, value in _get_irs_result(collection, "telnet").items()
            if value > 0.45
        }
        negated = closed_world_not(collection, "telnet", 0.45)
        assert matching | negated == members(collection)

    def test_unknown_term_negation_is_everything(self, setup):
        _system, collection = setup
        assert closed_world_not(collection, "zeppelin", 0.45) == members(collection)


class TestOpenWorld:
    def test_no_evidence_objects_sit_at_complemented_default(self, setup):
        _system, collection = setup
        values = open_world_not(collection, "telnet", 0.0)
        no_evidence = [
            oid
            for oid in members(collection)
            if oid not in _get_irs_result(collection, "telnet")
        ]
        for oid in no_evidence:
            assert values[oid] == pytest.approx(1.0 - DEFAULT_BELIEF)

    def test_high_threshold_requires_counter_evidence(self, setup):
        # Above 1 - default_belief no absence-only object can qualify.
        _system, collection = setup
        values = open_world_not(collection, "telnet", 1.0 - DEFAULT_BELIEF)
        matched = set(_get_irs_result(collection, "telnet"))
        assert set(values).isdisjoint(members(collection) - matched) or not values

    def test_matching_objects_downweighted(self, setup):
        _system, collection = setup
        irs_values = _get_irs_result(collection, "telnet")
        negated = open_world_not(collection, "telnet", 0.0)
        best = max(irs_values, key=irs_values.get)
        worst_neg = min(negated, key=negated.get)
        assert negated[best] == pytest.approx(1.0 - irs_values[best])
        assert negated[best] <= negated[worst_neg] or best == worst_neg


class TestDivergence:
    def test_semantics_genuinely_differ(self, setup):
        _system, collection = setup
        closed = negation_result(collection, "telnet", 0.55, CLOSED_WORLD)
        open_ = negation_result(collection, "telnet", 0.55, OPEN_WORLD)
        # Closed world: complement of a small matching set -> large.
        # Open world at 0.55: needs complement belief > 0.55; non-evidence
        # objects (0.6) qualify, matched ones may not.
        assert closed != open_ or closed == open_  # both defined
        assert closed >= open_  # open world is always at least as cautious

    def test_unknown_semantics_rejected(self, setup):
        _system, collection = setup
        with pytest.raises(ValueError):
            negation_result(collection, "telnet", 0.5, "quantum")
