"""DocumentSystem facade."""

import pytest

from repro.core import DocumentSystem
from repro.errors import ValidationError
from repro.sgml.mmf import PAPER_FRAGMENT, build_document, mmf_dtd


class TestDocumentManagement:
    def test_add_document_from_text(self, system):
        dtd = mmf_dtd()
        system.register_dtd(dtd)
        root = system.add_document(PAPER_FRAGMENT, dtd=dtd)
        assert root.class_name == "MMFDOC"
        assert root.isa("IRSObject")

    def test_add_document_from_element(self, system):
        dtd = mmf_dtd()
        system.register_dtd(dtd)
        root = system.add_document(build_document("T", ["p"]), dtd=dtd)
        assert root.send("getAttributeValue", "TITLE") == "T"

    def test_validation_enforced(self, system):
        dtd = mmf_dtd()
        system.register_dtd(dtd)
        with pytest.raises(ValidationError):
            system.add_document("<MMFDOC><PARA>x</PARA></MMFDOC>", dtd=dtd)

    def test_validation_skippable(self, system):
        dtd = mmf_dtd()
        system.register_dtd(dtd)
        root = system.add_document(
            "<MMFDOC><PARA>x</PARA></MMFDOC>", dtd=dtd, validate=False
        )
        assert root.class_name == "MMFDOC"

    def test_delete_document(self, mmf_system):
        before = mmf_system.db.object_count()
        removed = mmf_system.delete_document(mmf_system.roots[0])
        assert removed > 1
        assert mmf_system.db.object_count() == before - removed

    def test_elements_inherit_irs_object(self, mmf_system):
        for cname in ("MMFDOC", "PARA", "Element"):
            assert mmf_system.db.schema.is_subclass(cname, "IRSObject")


class TestQuerying:
    def test_query_wrapper(self, mmf_system, para_collection):
        rows = mmf_system.query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue($c, 'telnet') > 0.45",
            {"c": para_collection},
        )
        assert rows

    def test_irs_query_wrapper(self, mmf_system, para_collection):
        values = mmf_system.irs_query(para_collection, "telnet")
        assert values


class TestLifecycle:
    def test_reset_counters(self, mmf_system, para_collection):
        mmf_system.irs_query(para_collection, "telnet")
        mmf_system.reset_counters()
        assert mmf_system.engine.counters.queries_executed == 0
        assert mmf_system.context.counters.buffer_misses == 0

    def test_durable_round_trip(self, tmp_path):
        path = str(tmp_path)
        with DocumentSystem(directory=path) as system:
            dtd = mmf_dtd()
            system.register_dtd(dtd)
            root = system.add_document(build_document("Persist", ["www text"]), dtd=dtd)
            root_oid = root.oid
        with DocumentSystem(directory=path) as reopened:
            revived = reopened.db.get_object(root_oid)
            assert revived.get("sgml_attributes")["TITLE"] == "Persist"

    def test_context_manager_closes(self, tmp_path):
        with DocumentSystem(directory=str(tmp_path)) as system:
            pass  # exit should checkpoint without error

    def test_use_result_files_flag(self):
        system = DocumentSystem(use_result_files=True)
        assert system.context.result_file_directory is not None
