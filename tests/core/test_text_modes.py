"""Text modes: the getText strategies of Section 4.3."""

import pytest

from repro.core import text_modes
from repro.errors import CouplingError
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def doc_root(system):
    system.register_dtd(mmf_dtd())
    doc = build_document(
        "Telnet Guide",
        ["telnet connects remote hosts. second sentence here.", "sessions persist. more detail."],
        abstract="about telnet",
        sections=[{"title": "Advanced Telnet", "paragraphs": ["options negotiation works. detail."]}],
    )
    return system.add_document(doc, dtd=mmf_dtd())


class TestFullText:
    def test_full_subtree_text(self, doc_root):
        text = text_modes.text_for(doc_root, text_modes.FULL_TEXT)
        assert "telnet connects remote hosts" in text
        assert "options negotiation" in text

    def test_full_text_of_leaf_is_its_content(self, doc_root):
        para = doc_root.send("getDescendants", "PARA")[0]
        assert text_modes.text_for(para, text_modes.FULL_TEXT) == para.get("content")


class TestOwnText:
    def test_internal_node_own_text_empty(self, doc_root):
        assert text_modes.text_for(doc_root, text_modes.OWN_TEXT) == ""

    def test_leaf_own_text(self, doc_root):
        para = doc_root.send("getDescendants", "PARA")[0]
        assert text_modes.text_for(para, text_modes.OWN_TEXT).startswith("telnet connects")


class TestTitleAbstract:
    def test_collects_titles(self, doc_root):
        text = text_modes.text_for(doc_root, text_modes.TITLE_ABSTRACT)
        assert "Telnet Guide" in text
        assert "Advanced Telnet" in text
        assert "sessions persist" not in text

    def test_title_element_contributes_own_content(self, doc_root):
        sectitle = doc_root.send("getDescendants", "SECTITLE")[0]
        assert "Advanced Telnet" in text_modes.text_for(sectitle, text_modes.TITLE_ABSTRACT)


class TestFirstSentences:
    def test_first_sentence_per_leaf(self, doc_root):
        text = text_modes.text_for(doc_root, text_modes.FIRST_SENTENCES)
        assert "telnet connects remote hosts" in text
        assert "second sentence" not in text

    def test_leaf_first_sentence(self, doc_root):
        para = doc_root.send("getDescendants", "PARA")[0]
        text = text_modes.text_for(para, text_modes.FIRST_SENTENCES)
        assert text == "telnet connects remote hosts"


class TestRegistry:
    def test_unknown_mode_raises(self, doc_root):
        with pytest.raises(CouplingError):
            text_modes.text_for(doc_root, 999)

    def test_register_custom_mode(self, doc_root):
        text_modes.register_text_mode(50, lambda obj: "constant")
        try:
            assert text_modes.text_for(doc_root, 50) == "constant"
            assert 50 in text_modes.known_modes()
        finally:
            text_modes._MODES.pop(50, None)

    def test_known_modes_sorted(self):
        modes = text_modes.known_modes()
        assert modes == sorted(modes)
        assert text_modes.FULL_TEXT in modes
