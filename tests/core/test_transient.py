"""On-the-fly indexing (Section 4.3.1, alternative (3))."""

import pytest

from repro.core.collection import _get_irs_result
from repro.core.transient import transient_members
from repro.errors import ReproError


@pytest.fixture
def setup(mmf_system, para_collection):
    return mmf_system, para_collection


class TestScope:
    def test_member_inside_scope_only(self, setup):
        system, collection = setup
        doc = system.roots[0]
        assert not collection.send("containsObject", doc)
        with transient_members(collection, [doc]):
            assert collection.send("containsObject", doc)
        assert not collection.send("containsObject", doc)

    def test_direct_value_inside_scope(self, setup):
        system, collection = setup
        doc = system.roots[1]  # "The Web"
        with transient_members(collection, [doc]):
            values = _get_irs_result(collection, "www")
            assert doc.oid in values
        # Outside: only derivation can answer; direct result excludes it.
        values = _get_irs_result(collection, "www")
        assert doc.oid not in values

    def test_existing_members_untouched(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        before = collection.send("memberCount")
        with transient_members(collection, [para]) as inserted:
            assert inserted == []
            assert collection.send("memberCount") == before
        assert collection.send("containsObject", para)

    def test_cleanup_on_exception(self, setup):
        system, collection = setup
        doc = system.roots[0]
        with pytest.raises(RuntimeError):
            with transient_members(collection, [doc]):
                raise RuntimeError("boom")
        assert not collection.send("containsObject", doc)
        # The IRS holds no orphan document for the OID.
        irs = system.engine.collection(collection.get("irs_name"))
        assert irs.find_by_metadata("oid", str(doc.oid)) == []

    def test_buffer_invalidated_on_both_transitions(self, setup):
        system, collection = setup
        _get_irs_result(collection, "telnet")
        assert collection.get("buffer")
        with transient_members(collection, [system.roots[0]]):
            assert collection.get("buffer") == {}
            _get_irs_result(collection, "telnet")
            assert collection.get("buffer")
        assert collection.get("buffer") == {}


class TestCost:
    def test_transient_costs_irs_maintenance(self, setup):
        """The paper's claim: insert+delete per query is the expensive part."""
        system, collection = setup
        docs = system.roots
        system.reset_counters()
        with transient_members(collection, docs):
            _get_irs_result(collection, "www")
        inserted = system.engine.counters.documents_indexed
        removed = system.engine.counters.documents_removed
        assert inserted == len(docs)
        assert removed == len(docs)

    def test_derivation_costs_nothing_in_irs_maintenance(self, setup):
        system, collection = setup
        system.reset_counters()
        for doc in system.roots:
            doc.send("getIRSValue", collection, "www")
        assert system.engine.counters.documents_indexed == 0
        assert system.engine.counters.documents_removed == 0
