"""Mixed-query evaluation strategies (Section 4.5.3)."""

import pytest

from repro.core.collection import (
    _create_collection,
    disable_irs_first_optimization,
    enable_irs_first_optimization,
    index_objects,
)
from repro.core.mixed import compare_strategies, evaluate_independent, evaluate_irs_first


@pytest.fixture
def setup(corpus_system):
    collection = _create_collection(
        corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
    )
    index_objects(collection)
    return corpus_system, collection


QUERY = "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, 'www') > 0.45"


class TestEquivalence:
    def test_same_rows_both_strategies(self, setup):
        system, collection = setup
        outcomes = compare_strategies(system.db, QUERY, {"coll": collection})
        rows_a = sorted(str(r[0].oid) for r in outcomes["independent"].rows)
        rows_b = sorted(str(r[0].oid) for r in outcomes["irs_first"].rows)
        assert rows_a == rows_b
        assert rows_a  # non-empty workload

    def test_equivalence_with_structure_predicate(self, setup):
        system, collection = setup
        query = (
            "ACCESS p FROM p IN PARA, d IN MMFDOC "
            "WHERE d -> getAttributeValue('YEAR') = '1994' AND "
            "p -> getContaining('MMFDOC') == d AND "
            "p -> getIRSValue(coll, 'www') > 0.45"
        )
        outcomes = compare_strategies(system.db, query, {"coll": collection})
        assert sorted(map(repr, outcomes["independent"].rows)) == sorted(
            map(repr, outcomes["irs_first"].rows)
        )


class TestCostProfile:
    def test_independent_calls_method_per_candidate(self, setup):
        system, collection = setup
        outcome = evaluate_independent(system.db, QUERY, {"coll": collection})
        paras = len(system.db.instances_of("PARA"))
        assert outcome.method_calls == paras

    def test_irs_first_avoids_per_object_calls(self, setup):
        system, collection = setup
        outcome = evaluate_irs_first(system.db, QUERY, {"coll": collection})
        assert outcome.method_calls == 0
        assert outcome.restrictor_calls == 1

    def test_one_irs_query_each_when_cold(self, setup):
        system, collection = setup
        outcome = evaluate_independent(system.db, QUERY, {"coll": collection})
        assert outcome.irs_queries == 1
        # warm now: the irs_first run needs none
        outcome2 = evaluate_irs_first(system.db, QUERY, {"coll": collection})
        assert outcome2.irs_queries == 0


class TestOptimizationToggle:
    def test_disabled_by_default(self, setup):
        system, collection = setup
        from repro.oodb.query.evaluator import QueryEvaluator

        evaluator = QueryEvaluator(system.db)
        _rows, stats = evaluator.run_with_stats(QUERY, {"coll": collection})
        assert stats.method_calls > 0  # restrictor declined

    def test_enable_disable_cycle(self, setup):
        system, collection = setup
        from repro.oodb.query.evaluator import QueryEvaluator

        enable_irs_first_optimization(system.db)
        try:
            evaluator = QueryEvaluator(system.db)
            _rows, stats = evaluator.run_with_stats(QUERY, {"coll": collection})
            assert stats.method_calls == 0
        finally:
            disable_irs_first_optimization(system.db)
        evaluator = QueryEvaluator(system.db)
        _rows, stats = evaluator.run_with_stats(QUERY, {"coll": collection})
        assert stats.method_calls > 0

    def test_less_than_comparisons_not_restricted(self, setup):
        # IRS-first only answers > and >=: a < threshold needs every object.
        system, collection = setup
        query = "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, 'www') < 0.45"
        outcome = evaluate_irs_first(system.db, query, {"coll": collection})
        assert outcome.method_calls > 0  # fell back to per-object
