"""Coupling context: installation and wiring."""

import pytest

from repro.core import coupling_context, install_coupling
from repro.core.context import CouplingCounters
from repro.errors import CouplingError
from repro.irs import IRSEngine
from repro.oodb import Database


class TestInstallation:
    def test_install_defines_coupling_classes(self):
        db = Database()
        install_coupling(db, IRSEngine())
        assert db.schema.has_class("IRSObject")
        assert db.schema.has_class("COLLECTION")
        assert db.schema.has_method("IRSObject", "getIRSValue")
        assert db.schema.has_method("COLLECTION", "indexObjects")

    def test_context_retrievable(self):
        db = Database()
        engine = IRSEngine()
        context = install_coupling(db, engine)
        assert coupling_context(db) is context
        assert context.engine is engine

    def test_missing_context_raises(self):
        with pytest.raises(CouplingError):
            coupling_context(Database())

    def test_reinstall_replaces_engine(self):
        db = Database()
        install_coupling(db, IRSEngine())
        second_engine = IRSEngine()
        install_coupling(db, second_engine)
        assert coupling_context(db).engine is second_engine

    def test_context_options(self):
        db = Database()
        context = install_coupling(
            db, IRSEngine(), default_update_policy="eager"
        )
        assert context.default_update_policy == "eager"


class TestCounters:
    def test_reset_zeros_everything(self):
        counters = CouplingCounters()
        counters.buffer_hits = 5
        counters.derivations = 3
        counters.reset()
        assert counters.buffer_hits == 0
        assert counters.derivations == 0
