"""IRS operators duplicated as COLLECTION methods (Section 4.5.4).

The key property: combining buffered sub-results inside the OODBMS yields
the same ranking the IRS itself computes for the combined query.
"""

import pytest

from repro.core.collection import _get_irs_result


def ranked(values):
    return sorted(values, key=lambda oid: (-values[oid], oid))


class TestEquivalenceWithIRS:
    def test_and_matches_irs_combined_query(self, mmf_system, para_collection):
        in_db = para_collection.send("IRSOperatorAND", "www", "nii")
        via_irs = _get_irs_result(para_collection, "#and(www nii)")
        assert set(in_db) >= set(via_irs)
        for oid in via_irs:
            assert in_db[oid] == pytest.approx(via_irs[oid])

    def test_or_matches_irs_combined_query(self, mmf_system, para_collection):
        in_db = para_collection.send("IRSOperatorOR", "www", "nii")
        via_irs = _get_irs_result(para_collection, "#or(www nii)")
        for oid in via_irs:
            assert in_db[oid] == pytest.approx(via_irs[oid])

    def test_sum_matches_irs_combined_query(self, mmf_system, para_collection):
        in_db = para_collection.send("IRSOperatorSUM", "www", "nii")
        via_irs = _get_irs_result(para_collection, "#sum(www nii)")
        for oid in via_irs:
            assert in_db[oid] == pytest.approx(via_irs[oid])

    def test_max_matches_irs_combined_query(self, mmf_system, para_collection):
        in_db = para_collection.send("IRSOperatorMAX", "www", "nii")
        via_irs = _get_irs_result(para_collection, "#max(www nii)")
        for oid in via_irs:
            assert in_db[oid] == pytest.approx(via_irs[oid])

    def test_wsum_matches_irs_combined_query(self, mmf_system, para_collection):
        in_db = para_collection.send("IRSOperatorWSUM", 2, "www", 1, "nii")
        via_irs = _get_irs_result(para_collection, "#wsum(2 www 1 nii)")
        for oid in via_irs:
            assert in_db[oid] == pytest.approx(via_irs[oid])

    def test_ranking_identical(self, mmf_system, para_collection):
        in_db = para_collection.send("IRSOperatorSUM", "www", "nii")
        via_irs = _get_irs_result(para_collection, "#sum(www nii)")
        shared = [oid for oid in ranked(in_db) if oid in via_irs]
        assert shared == ranked(via_irs)


class TestBufferedEvaluation:
    def test_combination_reuses_buffered_subresults(self, mmf_system, para_collection):
        _get_irs_result(para_collection, "www")
        _get_irs_result(para_collection, "nii")
        mmf_system.engine.counters.reset()
        para_collection.send("IRSOperatorAND", "www", "nii")
        assert mmf_system.engine.counters.queries_executed == 0

    def test_resubmission_costs_an_irs_call(self, mmf_system, para_collection):
        _get_irs_result(para_collection, "www")
        _get_irs_result(para_collection, "nii")
        mmf_system.engine.counters.reset()
        _get_irs_result(para_collection, "#and(www nii)")
        assert mmf_system.engine.counters.queries_executed == 1


class TestNotOperator:
    def test_not_ranges_over_members(self, mmf_system, para_collection):
        result = para_collection.send("IRSOperatorNOT", "telnet")
        assert len(result) == para_collection.send("memberCount")

    def test_not_penalizes_matching_documents(self, mmf_system, para_collection):
        matches = _get_irs_result(para_collection, "telnet")
        result = para_collection.send("IRSOperatorNOT", "telnet")
        matching_values = [result[oid] for oid in matches]
        other_values = [v for oid, v in result.items() if oid not in matches]
        assert max(matching_values) < min(other_values)


class TestArgumentValidation:
    def test_wsum_odd_arguments_rejected(self, mmf_system, para_collection):
        with pytest.raises(ValueError):
            para_collection.send("IRSOperatorWSUM", 2, "www", 1)
