"""The three Figure 1 architectures deliver the same answers at
different costs and feature sets."""

import pytest

from repro.core.architectures import (
    FEATURES,
    ControlModuleArchitecture,
    DBMSControlArchitecture,
    IRSControlArchitecture,
    MixedWorkloadQuery,
    run_comparison,
)
from repro.core.collection import _create_collection, index_objects


@pytest.fixture
def setup(corpus_system):
    # Plant a document that definitely matches the workload query.
    from repro.sgml.mmf import build_document, mmf_dtd

    corpus_system.add_document(
        build_document(
            "Planted", ["the www www hypertext web grows and grows"], year="1994"
        ),
        dtd=mmf_dtd(),
    )
    collection = _create_collection(
        corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
    )
    index_objects(collection)
    query = MixedWorkloadQuery("YEAR", "1994", "www", 0.45)
    return corpus_system, collection, query


class TestAgreement:
    def test_all_architectures_same_answer(self, setup):
        system, collection, query = setup
        reports = run_comparison(system, collection, [query])
        answers = {
            name: [oid for oid, _v in reps[0].rows]
            for name, reps in reports.items()
        }
        assert answers["control_module"] == answers["dbms_control"]
        assert answers["irs_control"] == answers["dbms_control"]
        assert answers["dbms_control"]  # workload must be non-trivial

    def test_values_agree(self, setup):
        system, collection, query = setup
        reports = run_comparison(system, collection, [query])
        cm = dict(reports["control_module"][0].rows)
        dbms = dict(reports["dbms_control"][0].rows)
        for oid, value in dbms.items():
            assert cm[oid] == pytest.approx(value)


class TestCosts:
    def test_control_module_crosses_interfaces_most(self, setup):
        system, collection, query = setup
        reports = run_comparison(system, collection, [query])
        cm = reports["control_module"][0].interface_crossings
        dbms = reports["dbms_control"][0].interface_crossings
        assert cm > dbms

    def test_dbms_control_single_crossing(self, setup):
        system, collection, query = setup
        report = DBMSControlArchitecture(system, collection).run(query)
        assert report.interface_crossings == 1


class TestFeatureMatrix:
    def test_dbms_control_supports_everything(self, setup):
        system, collection, _query = setup
        arch = DBMSControlArchitecture(system, collection)
        assert all(arch.features[f] for f in FEATURES)

    def test_alternatives_lack_database_features(self, setup):
        system, collection, _query = setup
        cm = ControlModuleArchitecture(system, collection)
        irs = IRSControlArchitecture(system, "collPara")
        for arch in (cm, irs):
            assert not arch.features["transactions"]
            assert not arch.features["derived_irs_values"]
            assert not arch.features["no_new_query_processor"]

    def test_feature_keys_complete(self, setup):
        system, collection, _query = setup
        for arch in (
            ControlModuleArchitecture(system, collection),
            IRSControlArchitecture(system, "collPara"),
            DBMSControlArchitecture(system, collection),
        ):
            assert set(arch.features) == set(FEATURES)


class TestIRSControlDenormalization:
    def test_prepare_copies_attribute_into_metadata(self, setup):
        system, _collection, query = setup
        arch = IRSControlArchitecture(system, "collPara")
        arch.prepare(query)
        irs = system.engine.collection("collPara")
        years = {d.metadata.get("YEAR") for d in irs.documents()}
        assert years <= {"1993", "1994", "1995", ""}
        assert "1994" in years
