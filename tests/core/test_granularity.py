"""Granularity policies (Section 4.3)."""

import pytest

from repro.core.granularity import (
    abstract_level,
    all_elements,
    document_level,
    element_type,
    equal_segments,
    leaf_level,
    standard_policies,
)


@pytest.fixture
def built(corpus_system):
    def build(policy):
        collection = policy.build(corpus_system.db)
        irs = corpus_system.engine.collection(collection.get("irs_name"))
        return collection, irs

    return corpus_system, build


class TestPolicies:
    def test_document_level_one_doc_per_mmfdoc(self, built):
        system, build = built
        _collection, irs = build(document_level())
        assert len(irs) == len(system.db.instances_of("MMFDOC"))

    def test_element_type_one_doc_per_para(self, built):
        system, build = built
        _collection, irs = build(element_type("PARA"))
        assert len(irs) == len(system.db.instances_of("PARA"))

    def test_leaf_level_covers_all_leaves(self, built):
        system, build = built
        _collection, irs = build(leaf_level())
        leaves = [
            e for e in system.db.instances_of("Element") if e.send("isLeaf")
        ]
        assert len(irs) == len(leaves)

    def test_equal_segments_multiplies_documents(self, built):
        system, build = built
        collection, irs = build(equal_segments(words=15))
        n_docs = len(system.db.instances_of("MMFDOC"))
        assert len(irs) > n_docs
        assert collection.get("segment_words") == 15

    def test_all_elements_is_most_redundant(self, built):
        system, build = built
        _c_doc, irs_doc = build(document_level())
        _c_all, irs_all = build(all_elements())
        assert irs_all.index.token_count > irs_doc.index.token_count

    def test_abstract_level_is_cheap(self, built):
        system, build = built
        _c_all, irs_all = build(all_elements())
        _c_abs, irs_abs = build(abstract_level())
        assert irs_abs.index.token_count < irs_all.index.token_count
        assert len(irs_abs) == len(irs_all)


class TestAnswerability:
    """Which query classes each granularity can answer directly."""

    def test_document_level_cannot_answer_paragraph_queries(self, built):
        system, build = built
        collection, _irs = build(document_level())
        para = system.db.instances_of("PARA")[0]
        assert not collection.send("containsObject", para)

    def test_element_level_answers_paragraph_queries_directly(self, built):
        system, build = built
        collection, _irs = build(element_type("PARA"))
        para = system.db.instances_of("PARA")[0]
        assert collection.send("containsObject", para)

    def test_document_queries_on_paragraph_collection_need_derivation(self, built):
        system, build = built
        collection, _irs = build(element_type("PARA"))
        system.context.counters.reset()
        doc = system.db.instances_of("MMFDOC")[0]
        doc.send("getIRSValue", collection, "www")
        assert system.context.counters.derivations == 1


class TestStandardSet:
    def test_standard_policies_all_buildable(self, corpus_system):
        policies = standard_policies()
        assert len(policies) == 6
        names = set()
        for policy in policies:
            collection = policy.build(corpus_system.db)
            names.add(collection.get("irs_name"))
        assert len(names) == 6

    def test_policy_names_unique(self):
        names = [p.name for p in standard_policies()]
        assert len(set(names)) == len(names)
