"""Administration reports."""

import pytest

from repro.core.admin import all_collection_reports, collection_report, system_report
from repro.core.collection import _create_collection, _get_irs_result, index_objects


class TestCollectionReport:
    def test_basic_fields(self, mmf_system, para_collection):
        report = collection_report(para_collection)
        assert report.name == "collPara"
        assert report.members == 6
        assert report.irs_documents == 6
        assert report.index_terms > 0
        assert report.index_bytes > 0
        assert report.update_policy in ("eager", "deferred")
        assert not report.is_stale

    def test_buffer_counted(self, mmf_system, para_collection):
        _get_irs_result(para_collection, "www")
        _get_irs_result(para_collection, "nii")
        report = collection_report(para_collection)
        assert report.buffered_queries == 2

    def test_staleness_reflects_pending_ops(self, mmf_system, para_collection):
        para_collection.set("update_policy", "deferred")
        para = mmf_system.db.instances_of("PARA")[0]
        para_collection.send("modifyObject", para)
        assert collection_report(para_collection).is_stale
        para_collection.send("propagateUpdates")
        assert not collection_report(para_collection).is_stale

    def test_all_reports(self, mmf_system, para_collection):
        _create_collection(mmf_system.db, "second", "ACCESS d FROM d IN MMFDOC")
        reports = all_collection_reports(mmf_system.db)
        assert {r.name for r in reports} == {"collPara", "second"}


class TestSystemReport:
    def test_shape(self, mmf_system, para_collection):
        _get_irs_result(para_collection, "www")
        report = system_report(mmf_system.db)
        assert report["objects"] == mmf_system.db.object_count()
        assert report["collections"] == 1
        assert report["objects_by_class"]["PARA"] == 6
        assert report["irs_queries_executed"] >= 1
        assert 0.0 <= report["buffer_hit_rate"] <= 1.0

    def test_stale_collections_listed(self, mmf_system, para_collection):
        para_collection.set("update_policy", "deferred")
        para = mmf_system.db.instances_of("PARA")[0]
        para_collection.send("modifyObject", para)
        report = system_report(mmf_system.db)
        assert report["stale_collections"] == ["collPara"]

    def test_empty_system(self, system):
        report = system_report(system.db)
        assert report["collections"] == 0
        assert report["buffer_hit_rate"] == 0.0
