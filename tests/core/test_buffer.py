"""The persistent IRS-result buffer (Section 4.2 / Figure 3)."""

import pytest

from repro.core.buffer import ResultBuffer
from repro.core.collection import _create_collection
from repro.core.context import CouplingCounters, coupling_context
from repro.oodb.oid import OID


@pytest.fixture
def buffer_and_collection(system):
    collection = _create_collection(system.db, "c", "ACCESS p FROM p IN IRSObject")
    counters = CouplingCounters()
    return ResultBuffer(collection, counters), collection, counters


class TestLookupStore:
    def test_miss_then_hit(self, buffer_and_collection):
        buffer, _collection, counters = buffer_and_collection
        assert buffer.lookup("www") is None
        assert counters.buffer_misses == 1
        buffer.store("www", {OID(1): 0.5})
        assert buffer.lookup("www") == {OID(1): 0.5}
        assert counters.buffer_hits == 1

    def test_contains_has_no_counter_side_effects(self, buffer_and_collection):
        buffer, _collection, counters = buffer_and_collection
        buffer.store("www", {})
        assert buffer.contains("www")
        assert not buffer.contains("nii")
        assert counters.buffer_hits == 0
        assert counters.buffer_misses == 0

    def test_model_distinguishes_entries(self, buffer_and_collection):
        buffer, _collection, _counters = buffer_and_collection
        buffer.store("www", {OID(1): 0.5}, model="inquery")
        assert buffer.lookup("www", model="vector") is None
        assert buffer.lookup("www", model="inquery") == {OID(1): 0.5}

    def test_empty_result_is_a_valid_entry(self, buffer_and_collection):
        buffer, _collection, counters = buffer_and_collection
        buffer.store("rare", {})
        assert buffer.lookup("rare") == {}
        assert counters.buffer_hits == 1


class TestAmend:
    def test_amend_adds_derived_value(self, buffer_and_collection):
        buffer, _collection, _counters = buffer_and_collection
        buffer.store("www", {OID(1): 0.5})
        buffer.amend("www", OID(9), 0.33)
        assert buffer.lookup("www")[OID(9)] == 0.33

    def test_amend_creates_entry_when_absent(self, buffer_and_collection):
        buffer, _collection, _counters = buffer_and_collection
        buffer.amend("fresh", OID(2), 0.1)
        assert buffer.lookup("fresh") == {OID(2): 0.1}


class TestInvalidation:
    def test_invalidate_clears_all(self, buffer_and_collection):
        buffer, _collection, _counters = buffer_and_collection
        buffer.store("a", {OID(1): 0.5})
        buffer.store("b", {OID(2): 0.6})
        assert buffer.size() == 2
        buffer.invalidate()
        assert buffer.size() == 0
        assert buffer.lookup("a") is None


class TestPersistence:
    def test_buffer_is_a_database_attribute(self, buffer_and_collection):
        buffer, collection, _counters = buffer_and_collection
        buffer.store("www", {OID(3): 0.7})
        stored = collection.get("buffer")
        assert "|www" in stored  # model-prefixed key
        assert stored["|www"] == {"OID3": 0.7}

    def test_buffer_survives_checkpoint_recovery(self, tmp_path):
        from repro.core import DocumentSystem

        path = str(tmp_path)
        system = DocumentSystem(directory=path)
        collection = _create_collection(system.db, "c", "ACCESS p FROM p IN IRSObject")
        ResultBuffer(collection, CouplingCounters()).store("www", {OID(5): 0.9})
        collection_oid = collection.oid
        system.close()

        reopened = DocumentSystem(directory=path)
        revived = reopened.db.get_object(collection_oid)
        buffer = ResultBuffer(revived, CouplingCounters())
        assert buffer.lookup("www") == {OID(5): 0.9}
        reopened.close()
