"""Update propagation (Section 4.6): policies, forcing, cancellation."""

import pytest

from repro.core import updates
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.errors import CouplingError


@pytest.fixture
def setup(mmf_system):
    collection = _create_collection(
        mmf_system.db, "collPara", "ACCESS p FROM p IN PARA",
        update_policy="deferred",
    )
    index_objects(collection)
    return mmf_system, collection


def new_para(system, root, text):
    return system.loader.insert_element(root, "PARA", text)


class TestEagerPolicy:
    def test_insert_applies_immediately(self, setup):
        system, collection = setup
        collection.set("update_policy", "eager")
        para = new_para(system, system.roots[0], "eager gopher text")
        collection.send("insertObject", para)
        assert collection.send("containsObject", para)
        values = _get_irs_result(collection, "gopher")
        assert para.oid in values

    def test_modify_applies_immediately(self, setup):
        system, collection = setup
        collection.set("update_policy", "eager")
        para = system.db.instances_of("PARA")[0]
        system.loader.update_content(para, "fresh gopher content")
        collection.send("modifyObject", para)
        assert para.oid in _get_irs_result(collection, "gopher")

    def test_delete_applies_immediately(self, setup):
        system, collection = setup
        collection.set("update_policy", "eager")
        para = system.db.instances_of("PARA")[0]
        collection.send("deleteObject", para)
        assert not collection.send("containsObject", para)

    def test_eager_invalidates_buffer(self, setup):
        system, collection = setup
        collection.set("update_policy", "eager")
        _get_irs_result(collection, "telnet")
        assert collection.get("buffer")
        para = new_para(system, system.roots[0], "x")
        collection.send("insertObject", para)
        assert collection.get("buffer") == {}


class TestDeferredPolicy:
    def test_operations_pend(self, setup):
        system, collection = setup
        para = new_para(system, system.roots[0], "pending text")
        collection.send("insertObject", para)
        assert updates.has_pending(collection)
        assert not collection.send("containsObject", para)

    def test_explicit_propagation(self, setup):
        system, collection = setup
        para = new_para(system, system.roots[0], "explicit gopher")
        collection.send("insertObject", para)
        applied = collection.send("propagateUpdates")
        assert applied == 1
        assert collection.send("containsObject", para)

    def test_query_forces_propagation(self, setup):
        system, collection = setup
        para = new_para(system, system.roots[0], "forced gopher")
        collection.send("insertObject", para)
        values = _get_irs_result(collection, "gopher")
        assert para.oid in values
        assert system.context.counters.forced_propagations == 1

    def test_propagation_invalidates_buffer(self, setup):
        system, collection = setup
        _get_irs_result(collection, "telnet")
        para = new_para(system, system.roots[0], "more telnet data")
        collection.send("insertObject", para)
        collection.send("propagateUpdates")
        # rerunning the query must see the new document
        assert para.oid in _get_irs_result(collection, "telnet")

    def test_propagate_with_nothing_pending_is_noop(self, setup):
        _system, collection = setup
        assert collection.send("propagateUpdates") == 0

    def test_deleted_object_before_propagation_is_skipped(self, setup):
        system, collection = setup
        para = new_para(system, system.roots[0], "short lived")
        collection.send("insertObject", para)
        system.db.delete_object(para)  # dies before propagation
        collection.send("propagateUpdates")
        assert not collection.send("containsObject", para)


class TestCancellation:
    def test_insert_then_delete_annihilates(self, setup):
        system, collection = setup
        para = new_para(system, system.roots[0], "ephemeral")
        collection.send("insertObject", para)
        collection.send("deleteObject", para)
        assert not updates.has_pending(collection)
        assert system.context.counters.updates_cancelled == 2

    def test_modify_after_insert_subsumed(self, setup):
        system, collection = setup
        para = new_para(system, system.roots[0], "v1")
        collection.send("insertObject", para)
        system.loader.update_content(para, "v2 gopher")
        collection.send("modifyObject", para)
        assert len(collection.get("pending_ops")) == 1
        collection.send("propagateUpdates")
        # the insert picked up the latest text
        assert para.oid in _get_irs_result(collection, "gopher")

    def test_repeated_modifies_collapse(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        collection.send("modifyObject", para)
        collection.send("modifyObject", para)
        collection.send("modifyObject", para)
        assert len(collection.get("pending_ops")) == 1
        assert system.context.counters.updates_cancelled == 2

    def test_delete_after_modify_keeps_only_delete(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        collection.send("modifyObject", para)
        collection.send("deleteObject", para)
        pending = collection.get("pending_ops")
        assert pending == [["delete", str(para.oid)]]

    def test_delete_then_insert_becomes_modify(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        collection.send("deleteObject", para)
        collection.send("insertObject", para)
        pending = collection.get("pending_ops")
        assert pending == [["modify", str(para.oid)]]

    def test_distinct_objects_do_not_cancel(self, setup):
        system, collection = setup
        paras = system.db.instances_of("PARA")
        collection.send("modifyObject", paras[0])
        collection.send("deleteObject", paras[1])
        assert len(collection.get("pending_ops")) == 2


class TestValidation:
    def test_unknown_policy_rejected(self, setup):
        system, collection = setup
        collection.set("update_policy", "sometimes")
        para = system.db.instances_of("PARA")[0]
        with pytest.raises(CouplingError):
            collection.send("modifyObject", para)

    def test_unknown_operation_rejected(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        with pytest.raises(CouplingError):
            updates.record_update(collection, "upsert", para)

    def test_counters_track_logging(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        system.context.counters.reset()
        collection.send("modifyObject", para)
        assert system.context.counters.updates_logged == 1
