"""IRSObject methods: getText, getIRSValue, collection choice (4.5.1)."""

import pytest

from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.errors import CouplingError


class TestGetText:
    def test_default_full_text(self, mmf_system, para_collection):
        doc = mmf_system.roots[0]
        assert "Telnet is a protocol" in doc.send("getText", 0)

    def test_mode_parameter_changes_representation(self, mmf_system):
        doc = mmf_system.roots[0]
        full = doc.send("getText", 0)
        own = doc.send("getText", 1)
        assert full != own

    def test_per_class_override_wins(self, mmf_system, para_collection):
        mmf_system.db.schema.get_class("PARA").add_method(
            "getText", lambda obj, mode=0: "overridden"
        )
        para = mmf_system.db.instances_of("PARA")[0]
        assert para.send("getText", 0) == "overridden"


class TestGetIRSValue:
    def test_explicit_collection_argument(self, mmf_system, para_collection):
        values = _get_irs_result(para_collection, "telnet")
        oid = next(iter(values))
        obj = mmf_system.db.get_object(oid)
        assert obj.send("getIRSValue", para_collection, "telnet") == values[oid]

    def test_collection_as_oid(self, mmf_system, para_collection):
        values = _get_irs_result(para_collection, "telnet")
        oid = next(iter(values))
        obj = mmf_system.db.get_object(oid)
        assert obj.send("getIRSValue", para_collection.oid, "telnet") == values[oid]

    def test_counts_calls(self, mmf_system, para_collection):
        obj = mmf_system.db.instances_of("PARA")[0]
        mmf_system.context.counters.reset()
        obj.send("getIRSValue", para_collection, "telnet")
        assert mmf_system.context.counters.get_irs_value_calls == 1

    def test_missing_query_rejected(self, mmf_system, para_collection):
        obj = mmf_system.db.instances_of("PARA")[0]
        with pytest.raises(CouplingError):
            obj.send("getIRSValue", para_collection)

    def test_non_collection_rejected(self, mmf_system, para_collection):
        obj = mmf_system.db.instances_of("PARA")[0]
        with pytest.raises(CouplingError):
            obj.send("getIRSValue", obj, "telnet")


class TestCollectionChoice:
    def test_default_collection_hard_wired(self, mmf_system, para_collection):
        obj = mmf_system.db.instances_of("PARA")[0]
        obj.send("setDefaultCollection", para_collection)
        value = obj.send("getIRSValue", None, "telnet")
        assert isinstance(value, float)

    def test_query_only_shorthand(self, mmf_system, para_collection):
        obj = mmf_system.db.instances_of("PARA")[0]
        obj.send("setDefaultCollection", para_collection)
        assert isinstance(obj.send("getIRSValue", "telnet"), float)

    def test_no_collection_resolvable_raises(self, mmf_system, para_collection):
        obj = mmf_system.db.instances_of("PARA")[0]
        with pytest.raises(CouplingError):
            obj.send("getIRSValue", None, "telnet")

    def test_choose_collection_override(self, mmf_system, para_collection):
        # (3) "a sophisticated choice of the IRSObject itself"
        mmf_system.db.schema.get_class("PARA").add_method(
            "chooseCollection", lambda obj: para_collection
        )
        obj = mmf_system.db.instances_of("PARA")[0]
        assert isinstance(obj.send("getIRSValue", None, "telnet"), float)

    def test_choose_collection_beats_default(self, mmf_system, para_collection):
        other = _create_collection(
            mmf_system.db, "other", "ACCESS d FROM d IN MMFDOC", model="boolean"
        )
        index_objects(other)
        mmf_system.db.schema.get_class("MMFDOC").add_method(
            "chooseCollection", lambda obj: other
        )
        doc = mmf_system.roots[0]
        doc.send("setDefaultCollection", para_collection)
        # boolean model yields exactly 1.0 for matches: proves `other` was used
        assert doc.send("getIRSValue", None, "telnet") == 1.0


class TestDeriveIRSValue:
    def test_scheme_dispatch(self, mmf_system, para_collection):
        doc = mmf_system.roots[0]
        para_collection.set("derivation", "average")
        value = doc.send("deriveIRSValue", para_collection, "telnet")
        assert 0 <= value <= 1

    def test_unknown_scheme_raises(self, mmf_system, para_collection):
        doc = mmf_system.roots[0]
        para_collection.set("derivation", "quantum")
        with pytest.raises(CouplingError):
            doc.send("deriveIRSValue", para_collection, "telnet")

    def test_per_class_override(self, mmf_system, para_collection):
        mmf_system.db.schema.get_class("MMFDOC").add_method(
            "deriveIRSValue", lambda obj, coll, query: 0.123
        )
        doc = mmf_system.roots[0]
        assert para_collection.send("findIRSValue", "telnet", doc) == 0.123
