"""Fixtures for the service-layer suite.

Everything here goes through the supported :class:`repro.Session` surface —
this suite runs under ``PYTHONWARNINGS=error::DeprecationWarning`` in CI, so
no fixture may touch the deprecated free functions.
"""

from __future__ import annotations

import pytest

from repro import DocumentSystem
from repro.sgml.mmf import build_document, mmf_dtd

TEXTS = [
    ["Telnet is a protocol for remote login", "Telnet enables remote sessions"],
    ["The WWW connects documents worldwide", "The NII supports the WWW expansion"],
    ["The NII is the national information infrastructure", "Funding for NII research grows"],
    ["Gopher predates the WWW as a menu system", "Archie searches FTP archives"],
]


@pytest.fixture
def system():
    """A DocumentSystem with four MMF documents loaded."""
    sys_ = DocumentSystem()
    dtd = mmf_dtd()
    sys_.register_dtd(dtd)
    sys_.roots = [
        sys_.add_document(build_document(f"Doc{i}", texts, year="1994"), dtd=dtd)
        for i, texts in enumerate(TEXTS)
    ]
    yield sys_
    sys_.close()


@pytest.fixture
def collection(system):
    """A populated paragraph collection (deferred updates)."""
    coll = system.session.create_collection(
        "collPara", "ACCESS p FROM p IN PARA", update_policy="deferred"
    )
    system.session.index(coll)
    return coll
