"""The PR 3 deprecation shims are gone; the Session surface is warning-free."""

from __future__ import annotations

import warnings

import pytest

import repro.core
import repro.core.collection as collection_module


class TestShimsRemoved:
    """The deprecated free functions were removed after one release of warnings.

    The supported surface is :class:`repro.Session`; the underscore
    implementations remain internal (``_create_collection`` et al.).
    """

    @pytest.mark.parametrize(
        "name", ["create_collection", "get_irs_result", "find_irs_value"]
    )
    def test_shim_gone_from_module(self, name):
        assert not hasattr(collection_module, name)
        assert hasattr(collection_module, f"_{name}")  # internals remain

    def test_shim_gone_from_package(self):
        assert not hasattr(repro.core, "create_collection")
        assert "create_collection" not in repro.core.__all__

    def test_module_no_longer_imports_warnings(self):
        # The only use of ``warnings`` was the shim layer.
        assert not hasattr(collection_module, "warnings")


class TestSessionSurfaceWarningFree:
    def test_session_surface_is_warning_free(self, system, collection):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            coll2 = system.session.create_collection(
                "clean", "ACCESS p FROM p IN PARA"
            )
            system.session.index(coll2)
            system.session.query(coll2, "telnet")
            system.session.query_batch([(coll2, "www"), (coll2, "nii")])
            system.search(coll2, "telnet")
            system.irs_query(coll2, "telnet")
