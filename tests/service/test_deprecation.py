"""The deprecated free-function shims: still working, now warning."""

from __future__ import annotations

import warnings

import pytest

from repro.core.collection import create_collection, find_irs_value, get_irs_result


class TestDeprecatedShims:
    def test_create_collection_warns_and_works(self, system):
        with pytest.warns(DeprecationWarning, match="Session.create_collection"):
            coll = create_collection(system.db, "legacy", "ACCESS p FROM p IN PARA")
        assert coll.get("irs_name") == "legacy"

    def test_get_irs_result_warns_and_matches_session(self, system, collection):
        expected = system.session.query(collection, "telnet").to_dict()
        with pytest.warns(DeprecationWarning, match="Session.query"):
            values = get_irs_result(collection, "telnet")
        assert values == expected

    def test_find_irs_value_warns_and_matches_session(self, system, collection):
        rs = system.session.query(collection, "telnet")
        hit = rs[0]
        with pytest.warns(DeprecationWarning, match="Session.find_value"):
            value = find_irs_value(collection, "telnet", hit.element)
        assert value == pytest.approx(hit.score)

    def test_session_surface_is_warning_free(self, system, collection):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            coll2 = system.session.create_collection(
                "clean", "ACCESS p FROM p IN PARA"
            )
            system.session.index(coll2)
            system.session.query(coll2, "telnet")
            system.session.query_batch([(coll2, "www"), (coll2, "nii")])
            system.search(coll2, "telnet")
            system.irs_query(coll2, "telnet")
