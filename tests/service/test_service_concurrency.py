"""Concurrent correctness of the pooled service.

The load-bearing test here is serial-replay equivalence: reader threads
hammer a pooled session while one updater thread mutates the collection.
Because every batched group is scored under a single collection read hold,
each :class:`ResultSet` is tagged with the index epoch it saw — and must be
byte-identical to the serial result computed at that same epoch.  The
updater (the only source of epoch transitions) records the serial truth
immediately after each propagation, while the epoch is stable.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import ServiceConfig, Session
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    RequestTimeoutError,
    RetryExhaustedError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service import DocumentService
from tests.support import wait_until

QUERIES = ["telnet", "www", "nii", "#and(www nii)", "#or(telnet gopher)"]


class TestSerialReplayEquivalence:
    def test_concurrent_results_match_serial_replay(self, system, collection):
        session = system.open_session(workers=4)
        truth = {}          # epoch -> {query: [(oid, score), ...]}
        truth_lock = threading.Lock()
        observations = []   # (query, epoch, [(oid, score), ...])
        obs_lock = threading.Lock()
        stop = threading.Event()
        errors = []

        def capture_truth():
            """Serial replay at the current (stable) epoch, via the engine."""
            engine = system.context.engine
            irs_name = collection.get("irs_name")
            with engine.reading(irs_name):
                irs_collection = engine.collection(irs_name)
                epoch = irs_collection.index.epoch
                if epoch in truth:
                    return
                per_query = {}
                for query in QUERIES:
                    result = engine.query(irs_name, query)
                    values = result.by_metadata(irs_collection, "oid")
                    per_query[query] = sorted(
                        (oid, value) for oid, value in values.items()
                    )
                with truth_lock:
                    truth[epoch] = per_query

        def updater():
            try:
                root = system.roots[0]
                for i in range(6):
                    para = system.loader.insert_element(
                        root, "PARA", f"fresh update {i} telnet gopher nii"
                    )
                    collection.send("insertObject", para)
                    # Whoever queries first propagates; make sure it happened,
                    # then record the serial truth at the resulting epoch.
                    session.propagate(collection)
                    capture_truth()
                    # Pace on observed progress, not wall clock: wait for
                    # the readers to rank every query at least once against
                    # this epoch before moving on.  Guarantees the final
                    # observation-count assertion without a tuned sleep.
                    with obs_lock:
                        seen = len(observations)
                    wait_until(
                        lambda: len(observations) >= seen + len(QUERIES),
                        timeout=30,
                        message="readers made no progress between updates",
                    )
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    for query in QUERIES:
                        rs = session.query(collection, query, timeout=30)
                        row = (
                            query,
                            rs.epoch,
                            sorted((str(h.oid), h.score) for h in rs),
                        )
                        with obs_lock:
                            observations.append(row)
            except BaseException as exc:
                errors.append(exc)

        capture_truth()  # epoch before any update
        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=updater))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        session.close()

        assert not errors, errors
        assert len(truth) >= 2, "updater never advanced the epoch"
        assert len(observations) > 20
        unmatched = [row for row in observations if row[1] not in truth]
        assert not unmatched, f"epochs without serial truth: {unmatched[:3]}"
        for query, epoch, ranked in observations:
            expected = sorted((str(o), v) for o, v in truth[epoch][query])
            assert ranked == expected, (
                f"{query!r} at epoch {epoch} diverged from serial replay"
            )

    def test_group_shares_one_epoch(self, system, collection):
        """All requests of one submitted batch see the same snapshot."""
        with system.open_session(workers=4) as session:
            results = session.query_batch(
                [(collection, q) for q in QUERIES] * 3
            )
        assert len({r.epoch for r in results}) == 1


class TestRetry:
    def _config(self, injector, **kw):
        return ServiceConfig(
            workers=1,
            failure_injector=injector,
            retry_seed=7,
            backoff_base=0.0005,
            backoff_cap=0.002,
            **kw,
        )

    def test_injected_deadlock_is_retried_within_budget(self, system, collection):
        attempts = []

        def injector(kind, attempt):
            attempts.append((kind, attempt))
            if attempt <= 2:
                raise DeadlockError("injected victim")

        started = time.perf_counter()
        with DocumentService(system.db, self._config(injector)) as service:
            rs = service.query(collection, "telnet", timeout=10)
        elapsed = time.perf_counter() - started
        assert rs
        assert [a for k, a in attempts if k == "group"] == [1, 2, 3]
        assert elapsed < 5.0, "retry backoff blew the budget"

    def test_lock_timeout_is_retried_too(self, system, collection):
        calls = []

        def injector(kind, attempt):
            calls.append(attempt)
            if attempt == 1:
                raise LockTimeoutError("injected timeout")

        with DocumentService(system.db, self._config(injector)) as service:
            assert service.query(collection, "www", timeout=10)
        assert calls == [1, 2]

    def test_retries_exhaust_with_cause(self, system, collection):
        def injector(kind, attempt):
            raise DeadlockError("always a victim")

        with DocumentService(
            system.db, self._config(injector, max_retries=2)
        ) as service:
            with pytest.raises(RetryExhaustedError) as excinfo:
                service.query(collection, "telnet", timeout=10)
        assert isinstance(excinfo.value.__cause__, DeadlockError)


class TestBackpressureAndLifecycle:
    def test_overload_rejects_with_service_overloaded(self, system, collection):
        service = DocumentService(
            system.db, ServiceConfig(workers=1, max_queue=2, auto_start=False)
        )
        f1 = service.submit_query(collection, "telnet")
        f2 = service.submit_query(collection, "www")
        with pytest.raises(ServiceOverloadedError):
            service.submit_query(collection, "nii")
        service.start()
        assert f1.result(10) is not None
        assert f2.result(10) is not None
        service.close()

    def test_request_timeout(self, system, collection):
        gate = threading.Event()
        running = threading.Event()

        def slow():
            running.set()
            gate.wait(5)

        with DocumentService(system.db, ServiceConfig(workers=1)) as service:
            service.submit_call(slow, label="slow")
            assert running.wait(5), "slow call never started"
            # The single worker is occupied; this query cannot finish in time.
            with pytest.raises(RequestTimeoutError):
                service.query(collection, "telnet", timeout=0.05)
            gate.set()

    def test_closed_service_rejects_and_fails_pending(self, system, collection):
        service = DocumentService(
            system.db, ServiceConfig(workers=1, auto_start=False)
        )
        pending = service.submit_query(collection, "telnet")
        service.close()
        with pytest.raises(ServiceClosedError):
            pending.result(1)
        with pytest.raises(ServiceClosedError):
            service.submit_query(collection, "www")
        with pytest.raises(ServiceClosedError):
            service.start()

    def test_close_is_idempotent_and_session_reports(self, system):
        session = Session(system.db, workers=1)
        assert session.pooled
        session.close()
        session.close()
        assert not session.service.running
