"""Service-layer behavior of the segmented index subsystem.

Covers the update-path satellites: ``Session.remove``, batched epoch
propagation (one epoch bump per grouped window), and segment/epoch
attribution in the slow-query log and ``explain`` traces.
"""

from __future__ import annotations

import pytest

from repro import Session, obs
from repro.errors import ReproError

QUERY_IRS = (
    "ACCESS p FROM p IN PARA "
    "WHERE p -> getIRSValue (collPara, 'telnet') > 0.1;"
)


def engine_of(system):
    return system.session.context.engine


def irs_collection(system, collection_obj):
    return engine_of(system).collection(collection_obj.get("irs_name"))


class TestBatchedEpochPropagation:
    def test_index_objects_bumps_epoch_once(self, system):
        coll = system.session.create_collection(
            "collFresh", "ACCESS p FROM p IN PARA", update_policy="deferred"
        )
        irs = irs_collection(system, coll)
        before = irs.index.epoch
        assert system.session.index(coll)
        assert len(irs) == 8, "all eight paragraphs indexed"
        assert irs.index.epoch == before + 1, (
            "a grouped indexObjects window is one epoch bump, not one per doc"
        )

    def test_propagation_window_bumps_epoch_once(self, system, collection):
        irs = irs_collection(system, collection)
        paras = system.db.instances_of("PARA")[:3]
        for i, para in enumerate(paras):
            system.loader.update_content(para, f"updated archie text {i}")
            collection.send("modifyObject", para)
        assert len(collection.get("pending_ops")) == 3
        before = irs.index.epoch
        applied = system.session.propagate(collection)
        assert applied == 3
        assert irs.index.epoch == before + 1
        assert collection.get("pending_ops") == []

    def test_empty_propagation_leaves_epoch_alone(self, system, collection):
        irs = irs_collection(system, collection)
        before = irs.index.epoch
        assert system.session.propagate(collection) == 0
        assert irs.index.epoch == before


class TestSessionRemove:
    def test_deferred_remove_pends_then_query_forces(self, system, collection):
        hit = system.session.query(collection, "telnet")[0]
        system.session.remove(collection, hit.element)
        pending = collection.get("pending_ops")
        assert pending == [["delete", str(hit.oid)]]
        # A query with removals pending forces propagation (Section 4.6).
        result = system.session.query(collection, "telnet")
        assert hit.oid not in result.oids()
        assert collection.get("pending_ops") == []
        assert not collection.send("containsObject", hit.element)

    def test_eager_remove_drops_documents_immediately(self, system, collection):
        collection.set("update_policy", "eager")
        hit = system.session.query(collection, "telnet")[0]
        irs = irs_collection(system, collection)
        size = len(irs)
        system.session.remove(collection, hit.element)
        assert len(irs) == size - 1
        assert collection.get("pending_ops") in ([], None)
        assert hit.oid not in system.session.query(collection, "telnet").oids()

    def test_pooled_remove(self, system, collection):
        with Session(system, workers=2) as pooled:
            hit = pooled.query(collection, "telnet")[0]
            pooled.remove(collection, hit.element)
            assert hit.oid not in pooled.query(collection, "telnet").oids()

    def test_remove_routes_errors_through_repro_hierarchy(self, system, collection):
        collection.set("update_policy", "bogus")
        para = system.db.instances_of("PARA")[0]
        with pytest.raises(ReproError):
            system.session.remove(collection, para)
        with Session(system, workers=1) as pooled:
            with pytest.raises(ReproError):
                pooled.remove(collection, para)

    def test_remove_then_reindex_restores_object(self, system, collection):
        hit = system.session.query(collection, "telnet")[0]
        system.session.remove(collection, hit.element)
        system.session.query(collection, "telnet")  # force the propagation
        assert system.session.index(collection)
        assert hit.oid in system.session.query(collection, "telnet").oids()


class TestSegmentAttribution:
    def test_slow_log_records_segments_and_epoch(self, system, collection):
        irs = irs_collection(system, collection)
        obs.configure(slow_query_seconds=0.0)
        try:
            obs.slow_log().clear()
            system.session.query(collection, "telnet")
            entries = [e for e in obs.slow_log().entries() if e.kind == "irs"]
            assert entries, "zero threshold must log the IRS query"
            entry = entries[-1]
            assert entry.info["segments"] == irs.segment_count
            assert entry.info["epoch"] == irs.index.epoch
            assert entry.info["collection"] == collection.get("irs_name")
        finally:
            obs.configure(slow_query_seconds=0.25)
            obs.slow_log().clear()

    def test_explain_attributes_segments_and_epoch(self, system, collection):
        irs = irs_collection(system, collection)
        collection.set("buffer", {})  # force the IRS engine to be consulted
        result = system.session.explain(QUERY_IRS, {"collPara": collection})
        spans = [s for s in result.root.iter_spans() if s.name == "irs.query"]
        assert spans, "explain tree must reach the IRS layer"
        assert spans[0].attributes["segments"] == irs.segment_count
        assert spans[0].attributes["epoch"] == irs.index.epoch
