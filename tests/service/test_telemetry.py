"""Request-level telemetry through the batching layer.

The load-bearing invariant is *conservation*: per-request cost profiles
attributed out of a batched window must sum back to the batch-level
totals, field by field.  Nothing the batch did may be double-billed or
lost, no matter how queries deduplicate across riders.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.obs.telemetry import COST_FIELDS, configure_sampling, sampler
from repro.service.config import ServiceConfig
from repro.service.executor import DocumentService

QUERIES = ["WWW", "WWW", "NII", "telnet", "NII", "WWW", "gopher", "archie"]


@pytest.fixture
def fresh_obs():
    """Clean instrumentation state around each test."""
    obs.enable()
    obs.tracer().clear()
    obs.metrics().reset()
    obs.slow_log().clear()
    yield
    sampler().head_every = 16  # restore default sampler knobs
    sampler().slow_seconds = None
    obs.tracer().clear()
    obs.metrics().reset()
    obs.slow_log().clear()


def one_window(system, collection, queries=QUERIES):
    """Run ``queries`` through exactly one batching window of one group."""
    config = ServiceConfig(workers=2, max_batch_per_worker=4, auto_start=False)
    with DocumentService(system.session.db, config) as service:
        futures = [
            service.submit_query(collection, query) for query in queries
        ]
        service.start()
        return [future.result(timeout=10.0) for future in futures]


class TestConservation:
    def test_per_request_costs_sum_to_group_totals(
        self, system, collection, fresh_obs
    ):
        results = one_window(system, collection)
        telemetries = [r.telemetry for r in results]
        assert all(t is not None for t in telemetries)

        # All eight requests rode the same group; every rider carries the
        # same group_totals aggregate.
        totals = telemetries[0].group_totals
        assert totals is not None
        assert totals["requests"] == len(QUERIES)
        assert totals["distinct"] == len(set(QUERIES))
        assert totals["deduplicated"] == len(QUERIES) - len(set(QUERIES))

        for field in COST_FIELDS:
            attributed = sum(getattr(t.cost, field) for t in telemetries)
            assert math.isclose(
                attributed, totals[field], rel_tol=1e-9, abs_tol=1e-12
            ), f"{field}: attributed {attributed} != batch total {totals[field]}"

        # The deduplicated query was scored once, so the group executed
        # exactly one engine query per distinct text.
        assert totals["queries"] == len(set(QUERIES))

    def test_riders_split_their_key_evenly(self, system, collection, fresh_obs):
        results = one_window(system, collection)
        www = [r.telemetry for r, q in zip(results, QUERIES) if q == "WWW"]
        assert all(t.riders == 3 for t in www)
        for telemetry in www:
            assert math.isclose(telemetry.cost.queries, 1.0 / 3.0)
        singleton = next(
            r.telemetry for r, q in zip(results, QUERIES) if q == "archie"
        )
        assert singleton.riders == 1
        assert math.isclose(singleton.cost.queries, 1.0)

    def test_batched_telemetry_shape(self, system, collection, fresh_obs):
        results = one_window(system, collection)
        telemetry = results[0].telemetry
        assert telemetry.mode == "batched"
        assert telemetry.window_size == len(QUERIES)
        assert telemetry.group_size == len(QUERIES)
        assert telemetry.distinct_queries == len(set(QUERIES))
        assert telemetry.collection == "collPara"
        assert telemetry.query == "WWW"
        assert telemetry.total_seconds >= telemetry.run_seconds >= 0.0
        assert telemetry.queue_seconds >= 0.0
        assert telemetry.outcome in {"exhaustive", "pruned", "cached"}
        record = telemetry.as_dict()
        assert record["cost"]["queries"] == pytest.approx(1.0 / 3.0)

    def test_second_window_reports_cached_outcome(
        self, system, collection, fresh_obs
    ):
        one_window(system, collection, queries=["WWW"])
        (result,) = one_window(system, collection, queries=["WWW"])
        assert result.telemetry.outcome == "cached"
        # A cached hit bills no fresh scoring work.
        assert result.telemetry.cost.candidates_scored == 0.0
        assert result.telemetry.cost.result_cache_hits == 1.0


class TestInlineTelemetry:
    def test_inline_query_gets_full_cost(self, system, collection, fresh_obs):
        result = system.session.query(collection, "telnet")
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.mode == "inline"
        assert telemetry.riders == 1
        # The classic inline path answers from the persistent buffer; the
        # engine is only consulted to (re)build it.
        assert telemetry.outcome in {"exhaustive", "pruned", "buffered"}
        assert telemetry.queue_seconds == 0.0
        assert telemetry.total_seconds == telemetry.run_seconds

    def test_repeat_inline_query_hits_persistent_buffer(
        self, system, collection, fresh_obs
    ):
        system.session.query(collection, "telnet")
        repeat = system.session.query(collection, "telnet")
        assert repeat.telemetry.outcome in {"buffered", "cached"}

    def test_top_k_inline_reports_pruning_costs(
        self, system, collection, fresh_obs
    ):
        result = system.session.query(collection, "NII", top_k=2)
        telemetry = result.telemetry
        assert telemetry.top_k == 2
        assert telemetry.cost.queries == 1.0
        if telemetry.outcome == "pruned":
            assert telemetry.cost.blocks_decoded >= 1.0


class TestSampling:
    def test_head_every_one_keeps_every_trace(self, system, collection, fresh_obs):
        configure_sampling(head_every=1, slow_seconds=999.0)
        result = system.session.query(collection, "WWW")
        assert result.telemetry.sampled
        assert result.telemetry.trace is not None
        assert result.telemetry.as_dict()["trace"]["name"] == "service.request"

    def test_head_every_zero_drops_fast_traces(
        self, system, collection, fresh_obs
    ):
        configure_sampling(head_every=0, slow_seconds=999.0)
        result = system.session.query(collection, "WWW")
        assert not result.telemetry.sampled
        assert result.telemetry.trace is None
        # The cost profile survives sampling: only the span tree is shed.
        assert result.telemetry.cost.queries >= 0.0

    def test_slow_threshold_zero_keeps_everything(
        self, system, collection, fresh_obs
    ):
        configure_sampling(head_every=0, slow_seconds=0.0)
        result = system.session.query(collection, "WWW")
        assert result.telemetry.sampled


class TestDisabled:
    def test_disabled_obs_attaches_no_telemetry(self, system, collection):
        obs.disable()
        try:
            inline = system.session.query(collection, "WWW")
            assert inline.telemetry is None
            (batched,) = one_window(system, collection, queries=["WWW"])
            assert batched.telemetry is None
        finally:
            obs.enable()


class TestHealth:
    def test_health_shape_and_ok_status(self, system, collection, fresh_obs):
        one_window(system, collection)
        health = system.health()
        assert health["status"] in {"ok", "degraded", "overloaded"}
        assert set(health) == {
            "status", "admission", "merge", "memtable", "shards", "network",
            "latency", "storage",
        }
        assert health["shards"]["executor_attached"] is False
        network = health["network"]
        assert network["servers"] == []  # no socket server started here
        assert network["connections"]["active"] == 0
        admission = health["admission"]
        assert admission["depth_peak"] >= 0
        assert 0.0 <= admission["utilization"] <= 1.0
        assert health["merge"]["segments"] >= 1
        assert health["memtable"]["bytes"] >= 0
        latency = health["latency"]
        assert latency["count"] >= len(QUERIES)
        assert latency["p50"] <= latency["p999"]
        assert 0.0 <= latency["slow_ratio"] <= 1.0

    def test_health_respects_slo_override(self, system, collection, fresh_obs):
        one_window(system, collection)
        generous = system.health(slo_seconds=1000.0)
        assert generous["latency"]["slo_seconds"] == 1000.0
        assert generous["latency"]["slow_ratio"] == 0.0
        # An impossible SLO marks every request slow and flags overload.
        harsh = system.health(slo_seconds=1e-12)
        assert harsh["latency"]["slow_ratio"] == 1.0
        assert harsh["status"] == "overloaded"


class TestSlowLogEnrichment:
    def test_slow_entries_carry_topk_outcome_and_segments(
        self, system, collection, fresh_obs
    ):
        previous = obs.slow_log().threshold
        try:
            obs.configure(slow_query_seconds=0.0)  # everything is "slow"
            system.session.query(collection, "NII", top_k=2)
            entries = obs.slow_log().entries()
            assert entries
            info = entries[-1].info
            assert info["collection"] == "collPara"
            assert info["top_k"] == 2
            assert info["segments"] >= 1
            assert "outcome" in info
        finally:
            obs.configure(slow_query_seconds=previous)


class TestRequestMetrics:
    def test_latency_metrics_are_rolling(self, system, collection, fresh_obs):
        one_window(system, collection)
        rolling = obs.metrics().snapshot()["rolling"]
        for name in (
            "service.request.queue_seconds",
            "service.request.run_seconds",
            "service.request.total_seconds",
            "service.batch.group_seconds",
        ):
            assert name in rolling, name
        assert rolling["service.request.total_seconds"]["count"] == len(QUERIES)
        assert rolling["service.batch.group_seconds"]["count"] == 1
        assert any(name.startswith("irs.query.seconds.") for name in rolling)
