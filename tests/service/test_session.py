"""The Session surface: typed results, both execution modes, error routing."""

from __future__ import annotations

import pytest

from repro import ResultSet, ScoredHit, ServiceConfig, Session
from repro.errors import (
    CouplingError,
    IRSQuerySyntaxError,
    QueryError,
    ReproError,
)
from repro.oodb.oid import OID


class TestResultSet:
    def _sample(self):
        return ResultSet.from_values(
            {OID(3): 0.5, OID(1): 0.9, OID(2): 0.5},
            collection="c",
            query="q",
            epoch=7,
        )

    def test_ranked_best_first_oid_tiebreak(self):
        rs = self._sample()
        assert rs.oids() == [OID(1), OID(2), OID(3)]
        assert rs.scores() == [0.9, 0.5, 0.5]

    def test_sequence_protocol(self):
        rs = self._sample()
        assert len(rs) == 3
        assert bool(rs)
        assert isinstance(rs[0], ScoredHit)
        assert rs[0].oid == OID(1)
        sliced = rs[1:]
        assert isinstance(sliced, ResultSet)
        assert sliced.epoch == 7
        assert sliced.oids() == [OID(2), OID(3)]
        assert not ResultSet([])

    def test_hit_unpacking(self):
        rs = self._sample()
        oid, score, element = rs[0]
        assert (oid, score, element) == (OID(1), 0.9, None)

    def test_top_and_to_dict(self):
        rs = self._sample()
        assert rs.top(2).oids() == [OID(1), OID(2)]
        assert rs.top(0).oids() == []
        assert rs.to_dict() == {OID(1): 0.9, OID(2): 0.5, OID(3): 0.5}

    def test_equality_is_by_ranked_values(self):
        a = ResultSet.from_values({OID(1): 0.4, OID(2): 0.8})
        b = ResultSet.from_values({OID(2): 0.8, OID(1): 0.4}, collection="other")
        assert a == b
        assert a != ResultSet.from_values({OID(1): 0.4})


class TestInlineSession:
    def test_system_owns_inline_session(self, system):
        assert isinstance(system.session, Session)
        assert not system.session.pooled
        assert system.session.service is None

    def test_query_returns_ranked_result_set(self, system, collection):
        rs = system.session.query(collection, "telnet")
        assert isinstance(rs, ResultSet)
        assert rs.collection == "collPara"
        assert rs.query == "telnet"
        assert rs.epoch is not None
        assert rs.scores() == sorted(rs.scores(), reverse=True)
        # Hits carry live element handles.
        assert all(hit.element is not None for hit in rs)
        assert all(hit.element.oid == hit.oid for hit in rs)

    def test_query_matches_legacy_dict_shape(self, system, collection):
        rs = system.session.query(collection, "www")
        assert system.irs_query(collection, "www") == rs.to_dict()

    def test_query_batch_preserves_order(self, system, collection):
        results = system.session.query_batch(
            [(collection, "telnet"), (collection, "www"), (collection, "telnet")]
        )
        assert [r.query for r in results] == ["telnet", "www", "telnet"]
        assert results[0] == results[2]

    def test_model_override(self, system, collection):
        ranked = system.session.query(collection, "telnet", model="boolean")
        assert set(ranked.scores()) <= {0.0, 1.0}
        assert ranked.model == "boolean"

    def test_find_value(self, system, collection):
        rs = system.session.query(collection, "telnet")
        hit = rs[0]
        value = system.session.find_value(collection, "telnet", hit.element)
        assert value == pytest.approx(hit.score)

    def test_execute_mixed_query(self, system, collection):
        rows = system.session.execute(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue($c, 'telnet') > 0.1",
            {"c": collection},
        )
        assert rows

    def test_explain(self, system, collection):
        result = system.session.explain(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue($c, 'telnet') > 0.1",
            {"c": collection},
        )
        assert result.rows
        assert result.render()


class TestPooledSession:
    def test_open_session_pooled(self, system, collection):
        sess = system.open_session(workers=2)
        assert sess.pooled
        try:
            rs = sess.query(collection, "telnet")
            assert rs == system.session.query(collection, "telnet")
        finally:
            sess.close()

    def test_pooled_batch_matches_inline(self, system, collection):
        queries = ["telnet", "www", "nii", "#and(www nii)", "telnet"]
        with system.open_session(workers=4) as sess:
            pooled = sess.query_batch([(collection, q) for q in queries])
        inline = system.session.query_batch([(collection, q) for q in queries])
        assert pooled == inline
        # One group, one snapshot: every result carries the same epoch.
        assert len({r.epoch for r in pooled}) == 1

    def test_pooled_execute_and_index(self, system, collection):
        with system.open_session(workers=2) as sess:
            assert sess.index(collection)
            rows = sess.execute(
                "ACCESS p FROM p IN PARA WHERE p -> getIRSValue($c, 'www') > 0.1",
                {"c": collection},
            )
            assert rows

    def test_sessions_closed_with_system(self, system):
        sess = system.open_session(workers=1)
        assert sess.service.running
        system.close()
        assert not sess.service.running

    def test_config_object(self, system, collection):
        config = ServiceConfig(workers=1, max_batch_per_worker=8)
        with Session(system.db, config=config) as sess:
            assert sess.pooled
            assert sess.service.config.window_size == 8
            assert sess.query(collection, "www")


class TestErrorRouting:
    def test_repro_errors_pass_through(self, system, collection):
        with pytest.raises(IRSQuerySyntaxError):
            system.session.query(collection, "#and(")
        with system.open_session(workers=1) as sess:
            with pytest.raises(IRSQuerySyntaxError):
                sess.query(collection, "#and(")

    def test_duplicate_collection_is_coupling_error(self, system, collection):
        with pytest.raises(CouplingError):
            system.session.create_collection("collPara")

    def test_unknown_model_is_repro_error(self, system, collection):
        with pytest.raises(ReproError):
            system.session.query(collection, "www", model="nonsense")
        with system.open_session(workers=1) as sess:
            with pytest.raises(ReproError):
                sess.query(collection, "www", model="nonsense")

    def test_malformed_mixed_query_is_query_error(self, system):
        with pytest.raises(QueryError) as excinfo:
            system.session.execute("FROM FROM FROM")
        assert isinstance(excinfo.value, ReproError)

    def test_batch_failure_is_contained(self, system, collection):
        with system.open_session(workers=2) as sess:
            futures = [
                sess.service.submit_query(collection, "telnet"),
                sess.service.submit_query(collection, "#and("),
                sess.service.submit_query(collection, "www"),
            ]
            assert futures[0].result(10)
            with pytest.raises(IRSQuerySyntaxError):
                futures[1].result(10)
            assert futures[2].result(10)
