"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import DocumentSystem
from repro.core.collection import _create_collection, index_objects
from repro.oodb import Database
from repro.sgml.mmf import build_document, mmf_dtd
from repro.workloads.corpus import CorpusGenerator, load_corpus


@pytest.fixture(autouse=True)
def _obs_config_isolation():
    """Keep ``obs.configure`` calls from leaking across tests.

    ``obs.configure`` mutates module-level runtime state (the slow-log
    instance and threshold, the trace sampler's knobs); a test tuning
    them used to silently reconfigure every test that ran after it.
    Snapshot before, restore after — unconditionally, so the default
    configuration is what every test starts from.
    """
    snapshot = obs.config_snapshot()
    try:
        yield
    finally:
        obs.config_restore(snapshot)


@pytest.fixture
def db():
    """An empty in-memory database."""
    return Database()


@pytest.fixture
def system():
    """An empty in-memory DocumentSystem (coupling installed)."""
    return DocumentSystem()


@pytest.fixture
def mmf_system():
    """A DocumentSystem with the MMF DTD registered and three documents."""
    sys_ = DocumentSystem()
    dtd = mmf_dtd()
    sys_.register_dtd(dtd)
    documents = [
        build_document(
            "Telnet",
            ["Telnet is a protocol for remote login", "Telnet enables remote sessions"],
            year="1993",
        ),
        build_document(
            "The Web",
            ["The WWW connects documents worldwide", "The NII supports the WWW expansion"],
            year="1994",
        ),
        build_document(
            "Infrastructure",
            ["The NII is the national information infrastructure", "Funding for NII research grows"],
            year="1994",
        ),
    ]
    roots = [sys_.add_document(d, dtd=dtd) for d in documents]
    sys_.roots = roots
    return sys_


@pytest.fixture
def para_collection(mmf_system):
    """A populated paragraph-level collection over mmf_system."""
    collection = _create_collection(
        mmf_system.db, "collPara", "ACCESS p FROM p IN PARA", derivation="maximum"
    )
    index_objects(collection)
    return collection


@pytest.fixture
def corpus_system():
    """A DocumentSystem with a 10-document seeded corpus."""
    sys_ = DocumentSystem()
    generator = CorpusGenerator(seed=11)
    generated = generator.corpus(documents=10, paragraphs=4)
    roots = load_corpus(sys_, generated)
    sys_.roots = roots
    sys_.generated = generated
    return sys_
