"""Offline compaction: pack() reclaims dead space without changing results."""

import os

from repro.irs.engine import IRSEngine
from repro.irs.segments.segment import SegmentConfig
from repro.store import SingleFileStore

MODELS = ("inquery", "vector", "boolean")


def build_store(tmp_path, churn=6):
    engine = IRSEngine(segment_config=SegmentConfig(seal_document_count=3))
    engine.create_collection("docs")
    for i in range(8):
        engine.index_document("docs", f"packable document number {i}", {"n": i})
    store = SingleFileStore(str(tmp_path / "irs.store"))
    store.checkpoint(engine)
    # Churn: every replace supersedes a doc batch, growing dead space.
    for round_ in range(churn):
        engine.replace_document("docs", 1 + round_ % 4, f"churned text {round_}")
        store.checkpoint(engine)
    return engine, store


def rankings(engine):
    return {
        model: engine.query("docs", "packable document", model=model).values
        for model in MODELS
    }


class TestPack:
    def test_pack_reclaims_dead_bytes(self, tmp_path):
        engine, store = build_store(tmp_path)
        before = store.stats()
        assert before["dead_bytes"] > 0
        result = store.pack()
        assert result["packed"]
        assert result["reclaimed_bytes"] > 0
        after = store.stats()
        assert after["size_bytes"] < before["size_bytes"]
        assert after["dead_bytes"] == 0
        store.close()

    def test_rankings_identical_after_pack(self, tmp_path):
        engine, store = build_store(tmp_path)
        expected = rankings(engine)
        store.pack()
        assert rankings(engine) == expected
        restored = store.load_engine()
        assert rankings(restored) == expected
        store.close()

    def test_post_pack_checkpoint_appends_nothing(self, tmp_path):
        engine, store = build_store(tmp_path)
        store.pack()
        # Stamps were remapped to the new file: an immediate checkpoint
        # finds nothing new to write.
        stats = store.checkpoint(engine)
        assert stats["records_appended"] == 0
        store.close()

    def test_pack_survives_reopen(self, tmp_path):
        engine, store = build_store(tmp_path)
        expected = rankings(engine)
        store.pack()
        store.close()
        again = SingleFileStore(str(tmp_path / "irs.store"))
        assert rankings(again.load_engine()) == expected
        assert again.stats()["dead_bytes"] == 0
        again.close()

    def test_pack_leaves_no_temporary_file(self, tmp_path):
        engine, store = build_store(tmp_path)
        store.pack()
        store.close()
        assert not os.path.exists(str(tmp_path / "irs.store.pack"))

    def test_pack_on_empty_store_is_a_no_op(self, tmp_path):
        store = SingleFileStore(str(tmp_path / "irs.store"))
        result = store.pack()
        assert result["packed"] is False
        assert result["reclaimed_bytes"] == 0
        store.close()

    def test_pack_then_more_churn_then_pack_again(self, tmp_path):
        engine, store = build_store(tmp_path)
        store.pack()
        engine.replace_document("docs", 2, "second era of churn")
        store.checkpoint(engine)
        expected = rankings(engine)
        result = store.pack()
        assert result["packed"]
        assert rankings(store.load_engine()) == expected
        store.close()
