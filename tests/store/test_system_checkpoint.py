"""DocumentSystem.checkpoint()/pack() and the session/health surfaces."""

import os

import pytest

from repro.core.system import DocumentSystem
from repro.errors import StoreError
from repro.sgml.mmf import build_document, mmf_dtd


def populated(tmp_path, name="sys", **kwargs):
    system = DocumentSystem(directory=str(tmp_path / name), **kwargs)
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    for i in range(4):
        system.add_document(
            build_document(f"T{i}", [f"checkpointed text {i}", "www telnet"]),
            dtd=dtd,
        )
    collection = system.create_collection("paras", "ACCESS p FROM p IN PARA")
    system.index_collection(collection)
    return system, collection, dtd


class TestCheckpoint:
    def test_checkpoint_returns_stats(self, tmp_path):
        system, _, _ = populated(tmp_path)
        stats = system.checkpoint()
        assert stats["checkpoint_id"] >= 1
        assert stats["seconds"] >= 0.0
        assert stats["size_bytes"] > 0
        system.close()

    def test_second_checkpoint_is_incremental(self, tmp_path):
        system, _, _ = populated(tmp_path)
        system.checkpoint()
        again = system.checkpoint()
        assert again["records_appended"] == 0
        assert again["records_reused"] > 0
        system.close()

    def test_checkpoint_truncates_the_wal(self, tmp_path):
        system, collection, dtd = populated(tmp_path)
        wal_path = os.path.join(str(tmp_path / "sys"), "db", "wal.log")
        assert os.path.getsize(wal_path) > 0
        system.checkpoint()
        assert os.path.getsize(wal_path) == 0
        system.close()

    def test_memory_system_cannot_checkpoint(self):
        system = DocumentSystem()
        with pytest.raises(StoreError):
            system.checkpoint()
        with pytest.raises(StoreError):
            system.pack()
        system.close()

    def test_json_mode_checkpoint_saves_legacy_indexes(self, tmp_path):
        system, _, _ = populated(tmp_path, storage="json")
        stats = system.checkpoint()
        assert stats["mode"] == "json"
        assert os.path.isdir(stats["directory"])
        system.close()

    def test_session_checkpoint_inline(self, tmp_path):
        system, _, _ = populated(tmp_path)
        stats = system.session.checkpoint()
        assert stats["checkpoint_id"] >= 1
        system.close()

    def test_session_checkpoint_through_pool(self, tmp_path):
        system, _, _ = populated(tmp_path)
        session = system.open_session(workers=2)
        stats = session.checkpoint()
        assert stats["checkpoint_id"] >= 1
        system.close()


class TestPackThroughSystem:
    def test_pack_checkpoints_first_then_compacts(self, tmp_path):
        system, collection, dtd = populated(tmp_path)
        system.checkpoint()
        # Dirty state: pack() must fold it in before compacting.
        system.add_document(
            build_document("Extra", ["extra packed paragraph"]), dtd=dtd
        )
        system.index_collection(collection)
        result = system.pack()
        assert result["packed"]
        expected = system.search(collection, "packed paragraph").to_dict()
        system.close()
        reopened = DocumentSystem(directory=str(tmp_path / "sys"))
        collection2 = next(iter(reopened.db.instances_of("COLLECTION")))
        assert reopened.search(collection2, "packed paragraph").to_dict() == expected
        reopened.close()


class TestCloseSemantics:
    def test_close_checkpoints_automatically(self, tmp_path):
        system, collection, _ = populated(tmp_path)
        expected = system.search(collection, "telnet").to_dict()
        system.close()  # no explicit checkpoint() before this
        reopened = DocumentSystem(directory=str(tmp_path / "sys"))
        # Everything was checkpointed at close: nothing to recover, the
        # collection comes back lazily.
        assert reopened.engine.lazy_collection_names() == ["paras"]
        collection2 = next(iter(reopened.db.instances_of("COLLECTION")))
        assert reopened.search(collection2, "telnet").to_dict() == expected
        reopened.close()


class TestHealthStorage:
    def test_store_mode_reports_storage_section(self, tmp_path):
        system, _, _ = populated(tmp_path)
        system.checkpoint()
        storage = system.health()["storage"]
        assert storage["enabled"] is True
        assert storage["size_bytes"] > 0
        assert storage["checkpoints"] >= 1
        assert storage["dead_ratio"] >= 0.0
        assert "needs_pack" in storage
        assert storage["dirty"]["documents"] == 0
        system.close()

    def test_dirty_documents_tracked(self, tmp_path):
        system, collection, dtd = populated(tmp_path)
        system.checkpoint()
        system.add_document(
            build_document("Dirty", ["unsaved paragraph"]), dtd=dtd
        )
        system.index_collection(collection)
        storage = system.health()["storage"]
        assert storage["dirty"]["documents"] > 0
        system.checkpoint()
        assert system.health()["storage"]["dirty"]["documents"] == 0
        system.close()

    def test_memory_system_storage_disabled(self):
        system = DocumentSystem()
        assert system.health()["storage"] == {"enabled": False}
        system.close()
