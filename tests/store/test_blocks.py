"""Block codecs: superblock, records, footer — and their corruption checks."""

import pytest

from repro.errors import StoreCorruptionError
from repro.store import blocks


class TestSuperblock:
    def test_round_trip(self):
        data = blocks.encode_superblock(token=12345)
        assert len(data) == blocks.SUPER_SIZE
        version, flags, token = blocks.decode_superblock(data)
        assert version == blocks.VERSION
        assert flags == 0
        assert token == 12345

    def test_bad_magic_rejected(self):
        data = b"NOTMAGIC" + blocks.encode_superblock(1)[8:]
        with pytest.raises(StoreCorruptionError):
            blocks.decode_superblock(data)

    def test_short_header_rejected(self):
        with pytest.raises(StoreCorruptionError):
            blocks.decode_superblock(blocks.encode_superblock(1)[:10])

    def test_crc_flip_rejected(self):
        data = bytearray(blocks.encode_superblock(99))
        data[10] ^= 0xFF
        with pytest.raises(StoreCorruptionError):
            blocks.decode_superblock(bytes(data))


class TestRecords:
    def test_round_trip(self):
        payload = blocks.encode_json({"a": 1, "b": [2, 3]})
        record = blocks.encode_record(blocks.KIND_DOCS, payload)
        assert blocks.verify_record(record, blocks.KIND_DOCS) == payload
        assert blocks.decode_json(payload) == {"a": 1, "b": [2, 3]}

    def test_kind_mismatch_rejected(self):
        record = blocks.encode_record(blocks.KIND_DOCS, b"x")
        with pytest.raises(StoreCorruptionError):
            blocks.verify_record(record, blocks.KIND_MANIFEST)

    def test_any_kind_accepted_when_unspecified(self):
        record = blocks.encode_record(blocks.KIND_SEGMENT, b"x")
        assert blocks.verify_record(record) == b"x"

    @pytest.mark.parametrize("position", [0, 4, 8, 9, -1])
    def test_bit_flip_rejected(self, position):
        record = bytearray(blocks.encode_record(blocks.KIND_INDEX, b"payload"))
        record[position] ^= 0x01
        with pytest.raises(StoreCorruptionError):
            blocks.verify_record(bytes(record))

    def test_truncated_record_rejected(self):
        record = blocks.encode_record(blocks.KIND_DOCS, b"longish payload")
        with pytest.raises(StoreCorruptionError):
            blocks.verify_record(record[:-3])

    def test_kind_byte_is_covered_by_crc(self):
        record = bytearray(blocks.encode_record(blocks.KIND_DOCS, b"x"))
        record[8] = blocks.KIND_MANIFEST  # swap the kind, keep the old crc
        with pytest.raises(StoreCorruptionError):
            blocks.verify_record(bytes(record))


class TestFooter:
    def test_round_trip(self):
        data = blocks.encode_footer(4096, 117)
        assert len(data) == blocks.FOOTER_SIZE
        assert blocks.decode_footer(data) == (4096, 117)

    def test_corrupt_footer_rejected(self):
        data = bytearray(blocks.encode_footer(4096, 117))
        data[12] ^= 0xFF
        with pytest.raises(StoreCorruptionError):
            blocks.decode_footer(bytes(data))

    def test_wrong_magic_rejected(self):
        data = blocks.encode_superblock(1)[:8] + blocks.encode_footer(1, 1)[8:]
        with pytest.raises(StoreCorruptionError):
            blocks.decode_footer(data)


class TestJson:
    def test_encoding_is_canonical(self):
        # sort_keys + compact separators: byte-identical for equal dicts,
        # so unchanged records never produce spurious new bytes.
        a = blocks.encode_json({"b": 1, "a": 2})
        b = blocks.encode_json({"a": 2, "b": 1})
        assert a == b
        assert b" " not in a
