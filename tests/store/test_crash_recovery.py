"""Crash fault injection: every interrupted write recovers deterministically.

Crashes are simulated the way a kill -9 looks to the filesystem: the store
file (or the whole system directory) is copied/truncated/bit-flipped at a
chosen point and reopened.  The invariant under test is the one the paper's
coupling needs: after recovery, rankings are bit-identical to a run that
never crashed — under all three retrieval models.
"""

import os
import shutil

import pytest

from repro.core.system import DocumentSystem
from repro.errors import StoreCorruptionError
from repro.irs.engine import IRSEngine
from repro.irs.segments.segment import SegmentConfig
from repro.sgml.mmf import build_document, mmf_dtd
from repro.store import SingleFileStore, blocks

MODELS = ("inquery", "vector", "boolean")


def build_engine():
    engine = IRSEngine(segment_config=SegmentConfig(seal_document_count=3))
    engine.create_collection("docs")
    for i in range(8):
        engine.index_document(
            "docs", f"structured document retrieval number {i}", {"oid": f"O{i}"}
        )
    return engine


def rankings(engine, name="docs", query="structured retrieval"):
    return {
        model: engine.query(name, query, model=model).values for model in MODELS
    }


class TestStoreLevelCrashes:
    """Faults injected directly into the store file between checkpoints."""

    def checkpointed_store(self, tmp_path):
        engine = build_engine()
        path = str(tmp_path / "irs.store")
        store = SingleFileStore(path)
        store.checkpoint(engine)
        expected = rankings(engine)
        return engine, store, path, expected

    @pytest.mark.parametrize("torn_bytes", [1, 7, 100, 1000])
    def test_torn_tail_after_second_checkpoint(self, tmp_path, torn_bytes):
        engine, store, path, expected = self.checkpointed_store(tmp_path)
        first_end = store.file.size
        engine.index_document("docs", "uncommitted extra document", {})
        store.checkpoint(engine)
        store.close()
        size = os.path.getsize(path)
        # Tear at most back to the end of the first checkpoint — its own
        # bytes are durable (commit fsyncs before returning).
        cut = min(torn_bytes, size - first_end)
        os.truncate(path, size - cut)
        recovered = SingleFileStore(path)
        # Whatever the cut destroyed, recovery lands on a *valid* manifest:
        # either checkpoint 2 survived intact or we are back at checkpoint 1.
        manifest_id = recovered.checkpoint_id
        assert manifest_id in (1, 2)
        restored = recovered.load_engine()
        got = rankings(restored)
        if manifest_id == 1:
            assert got == expected
        else:
            assert set(got["inquery"]) >= set(expected["inquery"])
        recovered.close()

    def test_every_truncation_point_yields_first_checkpoint(self, tmp_path):
        engine = build_engine()
        path = str(tmp_path / "irs.store")
        store = SingleFileStore(path)
        store.checkpoint(engine)
        expected = rankings(engine)
        first_end = store.file.size
        engine.index_document("docs", "later document", {})
        store.checkpoint(engine)
        store.close()
        final_size = os.path.getsize(path)
        # Any crash point strictly inside the second checkpoint's bytes
        # must recover to exactly the first checkpoint.
        for cut in range(first_end + 1, final_size, 97):
            work = str(tmp_path / "work.store")
            shutil.copyfile(path, work)
            os.truncate(work, cut)
            recovered = SingleFileStore(work)
            assert recovered.checkpoint_id == 1, f"cut at {cut}"
            assert rankings(recovered.load_engine()) == expected, f"cut at {cut}"
            recovered.close()

    def test_bit_flip_in_live_segment_fails_loud(self, tmp_path):
        engine, store, path, _ = self.checkpointed_store(tmp_path)
        entry = store.manifest["collections"]["docs"]
        segment = entry["segments"][0]
        store.close()
        with open(path, "r+b") as fh:
            fh.seek(segment["offset"] + blocks.RECORD_HEADER_SIZE + 5)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0x40]))
        recovered = SingleFileStore(path)
        restored = recovered.load_engine()
        # Never a silently wrong index: the flip surfaces on first touch.
        with pytest.raises(StoreCorruptionError):
            restored.collection("docs")
        recovered.close()

    def test_bit_flip_in_dead_space_is_harmless(self, tmp_path):
        engine, store, path, _ = self.checkpointed_store(tmp_path)
        # Checkpoint 1's manifest record is guaranteed dead once
        # checkpoint 2 commits — flip a bit inside it.
        dead_offset = store.file.manifest_offset
        engine.replace_document("docs", 1, "rewritten document text")
        store.checkpoint(engine)
        expected = rankings(engine)
        store.close()
        with open(path, "r+b") as fh:
            fh.seek(dead_offset + blocks.RECORD_HEADER_SIZE + 3)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0x20]))
        recovered = SingleFileStore(path)
        restored = recovered.load_engine()
        assert rankings(restored) == expected
        recovered.close()


def _make_system(path, **kwargs):
    system = DocumentSystem(directory=path, **kwargs)
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    return system, dtd


class TestSystemLevelCrashes:
    """The coordinated WAL + store crash window (kill between commits)."""

    def populated(self, tmp_path, shards=0):
        path = str(tmp_path / "sys")
        system, dtd = _make_system(path, shards=shards)
        for i in range(6):
            system.add_document(
                build_document(
                    f"T{i}", [f"telnet retrieval text {i}", "www structure access"]
                ),
                dtd=dtd,
            )
        collection = system.create_collection("paras", "ACCESS p FROM p IN PARA")
        system.index_collection(collection)
        return path, system, collection, dtd

    def _crash_image(self, path, tmp_path, tag):
        image = str(tmp_path / f"crash_{tag}")
        shutil.copytree(path, image)
        return image

    def _reopened_rankings(self, image, query="telnet retrieval"):
        system = DocumentSystem(directory=image)
        collection = next(iter(system.db.instances_of("COLLECTION")))
        got = {
            model: system.search(collection, query, model=model).to_dict()
            for model in MODELS
        }
        system.close()
        return got

    def expected(self, system, collection, query="telnet retrieval"):
        return {
            model: system.search(collection, query, model=model).to_dict()
            for model in MODELS
        }

    def test_kill_between_wal_commit_and_checkpoint(self, tmp_path):
        path, system, collection, dtd = self.populated(tmp_path)
        system.checkpoint()
        # Mutate through the WAL, then "crash" before the store checkpoint.
        system.add_document(
            build_document("Late", ["late telnet paragraph"]), dtd=dtd
        )
        system.index_collection(collection)
        image = self._crash_image(path, tmp_path, "wal_ahead")
        expected = self.expected(system, collection)
        system.close()
        assert self._reopened_rankings(image) == expected

    def test_kill_before_any_checkpoint(self, tmp_path):
        path, system, collection, dtd = self.populated(tmp_path)
        image = self._crash_image(path, tmp_path, "no_ckpt")
        expected = self.expected(system, collection)
        system.close()
        assert self._reopened_rankings(image) == expected

    def test_kill_after_clean_checkpoint(self, tmp_path):
        path, system, collection, dtd = self.populated(tmp_path)
        system.checkpoint()
        image = self._crash_image(path, tmp_path, "clean")
        expected = self.expected(system, collection)
        system.close()
        reopened = DocumentSystem(directory=image)
        # Clean image: nothing to reindex, the collection loads lazily.
        assert reopened.engine.lazy_collection_names() == ["paras"]
        collection2 = next(iter(reopened.db.instances_of("COLLECTION")))
        got = {
            model: reopened.search(collection2, "telnet retrieval", model=model).to_dict()
            for model in MODELS
        }
        reopened.close()
        assert got == expected

    def test_kill_between_deferred_propagation_and_checkpoint(self, tmp_path):
        path, system, collection, dtd = self.populated(tmp_path)
        system.checkpoint()
        root = system.add_document(
            build_document("Prop", ["propagated telnet update"]), dtd=dtd
        )
        para = root.get("children")[1]
        para_obj = system.db.get_object(para)
        collection.send("insertObject", para_obj)
        collection.send("propagateUpdates")
        image = self._crash_image(path, tmp_path, "propagated")
        expected = self.expected(system, collection)
        system.close()
        assert self._reopened_rankings(image) == expected

    def test_sharded_system_recovers_identically(self, tmp_path):
        path, system, collection, dtd = self.populated(tmp_path, shards=2)
        system.checkpoint()
        system.add_document(
            build_document("More", ["another telnet paragraph www"]), dtd=dtd
        )
        system.index_collection(collection)
        image = self._crash_image(path, tmp_path, "sharded")
        expected = self.expected(system, collection)
        system.close()
        assert self._reopened_rankings(image) == expected

    def test_torn_store_tail_plus_wal_ahead(self, tmp_path):
        """Double fault: WAL ahead of the store AND the store tail torn."""
        path, system, collection, dtd = self.populated(tmp_path)
        system.checkpoint()
        system.add_document(
            build_document("Torn", ["torn tail telnet paragraph"]), dtd=dtd
        )
        system.index_collection(collection)
        image = self._crash_image(path, tmp_path, "torn")
        expected = self.expected(system, collection)
        system.close()
        store_path = os.path.join(image, "irs.store")
        with open(store_path, "ab") as fh:
            fh.write(b"\x00garbage from a torn write\x00" * 3)
        assert self._reopened_rankings(image) == expected
