"""SingleFileStore: every layout round-trips; checkpoints are incremental."""

import pytest

from repro.irs.engine import IRSEngine
from repro.irs.segments.segment import SegmentConfig
from repro.store import SingleFileStore

TEXTS = [
    "information retrieval over structured documents",
    "the oodbms stores structured document elements",
    "retrieval models score documents by relevance",
    "segments seal into immutable sorted runs",
    "sharded collections scatter scoring across workers",
    "the coupling buffers retrieval results persistently",
    "queries combine structure and content conditions",
    "document elements inherit irs object behaviour",
]

MODELS = ("inquery", "vector", "boolean")


def build_engine(layout):
    if layout == "flat":
        engine = IRSEngine(segment_config=SegmentConfig(enabled=False))
        engine.create_collection("docs")
    elif layout == "segmented":
        engine = IRSEngine(segment_config=SegmentConfig(seal_document_count=3))
        engine.create_collection("docs")
    else:
        engine = IRSEngine(
            segment_config=SegmentConfig(seal_document_count=3), shard_count=2
        )
        engine.create_collection("docs", shards=2)
    for i, text in enumerate(TEXTS):
        engine.index_document("docs", text, {"oid": f"OID{i}"})
    return engine


def rankings(engine, query="structured retrieval documents"):
    return {
        model: engine.query("docs", query, model=model).values
        for model in MODELS
    }


@pytest.mark.parametrize("layout", ["flat", "segmented", "sharded"])
@pytest.mark.parametrize("lazy", [True, False])
class TestRoundTrip:
    def test_rankings_bit_identical(self, tmp_path, layout, lazy):
        engine = build_engine(layout)
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        expected = rankings(engine)
        store.close()

        again = SingleFileStore(str(tmp_path / "irs.store"))
        shard_count = 2 if layout == "sharded" else 0
        config = (
            SegmentConfig(enabled=False)
            if layout == "flat"
            else SegmentConfig(seal_document_count=3)
        )
        restored = again.load_engine(shard_count=shard_count, lazy=lazy)
        restored.segment_config = config
        assert rankings(restored) == expected
        again.close()

    def test_metadata_and_documents_survive(self, tmp_path, layout, lazy):
        engine = build_engine(layout)
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        store.close()
        again = SingleFileStore(str(tmp_path / "irs.store"))
        shard_count = 2 if layout == "sharded" else 0
        restored = again.load_engine(shard_count=shard_count, lazy=lazy)
        collection = restored.collection("docs")
        original = engine.collection("docs")
        assert len(collection) == len(original)
        assert collection.document(1).metadata == original.document(1).metadata
        assert collection.document(1).text == original.document(1).text
        again.close()


class TestIncremental:
    def test_unchanged_checkpoint_appends_nothing_but_volatile_refs(self, tmp_path):
        engine = build_engine("segmented")
        store = SingleFileStore(str(tmp_path / "irs.store"))
        first = store.checkpoint(engine)
        assert first["records_appended"] > 0
        second = store.checkpoint(engine)
        # Nothing changed: documents and sealed segments are all reused;
        # only the manifest itself is (by design) appended every time.
        assert second["records_appended"] == 0
        assert second["records_reused"] > 0
        store.close()

    def test_small_delta_appends_small(self, tmp_path):
        engine = build_engine("segmented")
        store = SingleFileStore(str(tmp_path / "irs.store"))
        first = store.checkpoint(engine)
        engine.index_document("docs", "one more tiny document", {"oid": "NEW"})
        delta = store.checkpoint(engine)
        assert 0 < delta["records_appended"] <= 2  # doc batch + memtable
        assert delta["bytes_appended"] < first["bytes_appended"]
        store.close()

    def test_sealed_segments_written_exactly_once(self, tmp_path):
        engine = build_engine("segmented")
        manager = engine.collection("docs").segments
        sealed_before = len(manager.sealed_segments())
        assert sealed_before > 0
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        stamps = [s.store_stamp for s in manager.sealed_segments()]
        assert all(stamps)
        store.checkpoint(engine)
        assert [s.store_stamp for s in manager.sealed_segments()] == stamps
        store.close()

    def test_document_revision_delta(self, tmp_path):
        engine = build_engine("flat")
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        engine.replace_document("docs", 1, "replaced text about retrieval")
        stats = store.checkpoint(engine)
        # One doc batch holding exactly the replaced document, plus the
        # rewritten flat index.
        entry = store.manifest["collections"]["docs"]
        last_batch = entry["doc_batches"][-1]
        batch = store.file.read_json(last_batch[0], last_batch[1])
        assert [d["doc_id"] for d in batch["documents"]] == [1]
        assert batch["documents"][0]["revision"] == 1
        assert stats["records_appended"] == 2
        store.close()

    def test_removals_travel_in_manifest(self, tmp_path):
        engine = build_engine("segmented")
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        engine.remove_document("docs", 2)
        store.checkpoint(engine)
        entry = store.manifest["collections"]["docs"]
        assert 2 in entry["removed_docs"]
        restored = store.load_engine()
        assert 2 not in restored.collection("docs")._documents
        store.close()

    def test_mass_removal_triggers_rebatch(self, tmp_path):
        engine = IRSEngine(segment_config=SegmentConfig(enabled=False))
        engine.create_collection("docs")
        for i in range(200):
            engine.index_document("docs", f"document number {i}", {})
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        for i in range(1, 180):
            engine.remove_document("docs", i)
        store.checkpoint(engine)
        entry = store.manifest["collections"]["docs"]
        # More dead than alive: batches were rewritten from scratch and the
        # removal list reset.
        assert entry["removed_docs"] == []
        assert len(entry["doc_batches"]) == 1
        restored = store.load_engine()
        assert len(restored.collection("docs")) == 21
        store.close()


class TestDroppedCollections:
    def test_dropped_collection_leaves_next_manifest(self, tmp_path):
        engine = build_engine("flat")
        engine.create_collection("extra")
        engine.index_document("extra", "short lived", {})
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        engine.drop_collection("extra")
        store.checkpoint(engine)
        assert set(store.manifest["collections"]) == {"docs"}
        restored = store.load_engine()
        assert restored.collection_names() == ["docs"]
        store.close()
