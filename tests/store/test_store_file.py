"""StoreFile: append/commit durability contract and tail recovery."""

import os

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.store import blocks
from repro.store.file import StoreFile, require_store


def _store(tmp_path, name="s.store", **kwargs):
    return StoreFile(str(tmp_path / name), **kwargs)


def _commit_one(store, payload=b'{"collections":{}}'):
    ref = store.append_record(blocks.KIND_DOCS, b"some docs")
    store.commit(payload)
    return ref


class TestLifecycle:
    def test_new_file_has_superblock_and_no_manifest(self, tmp_path):
        store = _store(tmp_path)
        assert store.manifest_offset is None
        assert store.read_manifest() is None
        assert store.size == blocks.SUPER_SIZE
        store.close()

    def test_token_survives_reopen(self, tmp_path):
        store = _store(tmp_path)
        token = store.token
        store.close()
        again = _store(tmp_path)
        assert again.token == token
        again.close()

    def test_commit_then_reopen_reads_manifest(self, tmp_path):
        store = _store(tmp_path)
        offset, length = _commit_one(store)
        store.close()
        again = _store(tmp_path)
        assert again.read_manifest() == {"collections": {}}
        assert again.read_record(offset, length, blocks.KIND_DOCS) == b"some docs"
        assert again.recovered_tail_bytes == 0
        again.close()

    def test_mmap_and_fallback_reads_agree(self, tmp_path):
        plain = _store(tmp_path, "a.store", use_mmap=False)
        offset, length = _commit_one(plain)
        plain.close()
        mapped = StoreFile(str(tmp_path / "a.store"), use_mmap=True)
        assert mapped.read_record(offset, length) == b"some docs"
        mapped.close()


class TestRecovery:
    def test_uncommitted_appends_are_discarded(self, tmp_path):
        store = _store(tmp_path)
        _commit_one(store)
        committed_end = store.size
        store.append_record(blocks.KIND_SEGMENT, b"never committed")
        store.close()
        again = _store(tmp_path)
        assert again.read_manifest() == {"collections": {}}
        assert again.size == committed_end
        assert again.recovered_tail_bytes > 0
        again.close()

    @pytest.mark.parametrize("cut", [1, 5, blocks.FOOTER_SIZE - 1])
    def test_torn_footer_falls_back_to_previous_commit(self, tmp_path, cut):
        store = _store(tmp_path)
        _commit_one(store, b'{"checkpoint":1}')
        store.append_record(blocks.KIND_DOCS, b"second wave")
        store.commit(b'{"checkpoint":2}')
        store.close()
        path = str(tmp_path / "s.store")
        os.truncate(path, os.path.getsize(path) - cut)
        again = StoreFile(path)
        assert again.read_manifest() == {"checkpoint": 1}
        again.close()

    def test_torn_manifest_falls_back_to_previous_commit(self, tmp_path):
        store = _store(tmp_path)
        _commit_one(store, b'{"checkpoint":1}')
        end_of_first = store.size
        store.commit(b'{"checkpoint":2,"padding":"' + b"x" * 200 + b'"}')
        store.close()
        path = str(tmp_path / "s.store")
        # Cut into the middle of the second manifest record.
        os.truncate(path, end_of_first + 40)
        again = StoreFile(path)
        assert again.read_manifest() == {"checkpoint": 1}
        again.close()

    def test_crash_before_first_commit_is_an_empty_store(self, tmp_path):
        store = _store(tmp_path)
        store.append_record(blocks.KIND_DOCS, b"lost")
        store.close()
        again = _store(tmp_path)
        assert again.read_manifest() is None
        assert again.recovered_tail_bytes > 0
        again.close()

    def test_footer_magic_inside_garbage_is_not_trusted(self, tmp_path):
        store = _store(tmp_path)
        _commit_one(store, b'{"checkpoint":1}')
        store.close()
        path = str(tmp_path / "s.store")
        with open(path, "ab") as fh:
            # A forged footer magic with garbage after it: the candidate
            # fails validation and scan-back continues to the real footer.
            fh.write(b"junk" + blocks.FOOTER_MAGIC + b"\x00" * 40)
        again = StoreFile(path)
        assert again.read_manifest() == {"checkpoint": 1}
        again.close()

    def test_tail_is_truncated_before_next_append(self, tmp_path):
        store = _store(tmp_path)
        _commit_one(store)
        store.close()
        path = str(tmp_path / "s.store")
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef" * 16)
        again = StoreFile(path)
        end = again.size
        again.append_record(blocks.KIND_DOCS, b"fresh")
        again.commit(b"{}")
        again.close()
        # The garbage is physically gone: the new record begins at the
        # committed end, and a reopen finds a clean file.
        final = StoreFile(path)
        assert final.recovered_tail_bytes == 0
        assert final.read_record(end + 0, final.manifest_offset - end) == b"fresh"
        final.close()

    def test_bit_flip_in_referenced_record_surfaces_on_read(self, tmp_path):
        store = _store(tmp_path)
        offset, length = _commit_one(store)
        store.close()
        path = str(tmp_path / "s.store")
        with open(path, "r+b") as fh:
            fh.seek(offset + blocks.RECORD_HEADER_SIZE + 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0x10]))
        again = StoreFile(path)
        assert again.read_manifest() is not None  # manifest itself intact
        with pytest.raises(StoreCorruptionError):
            again.read_record(offset, length)
        again.close()


class TestRequireStore:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            require_store(str(tmp_path / "nope.store"))

    def test_not_a_store(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a store file header")
        with pytest.raises(StoreCorruptionError):
            require_store(str(path))

    def test_valid_store(self, tmp_path):
        store = _store(tmp_path)
        store.close()
        require_store(str(tmp_path / "s.store"))
