"""Lazy restart: reopening touches only the manifest until data is needed."""

import pytest

from repro import obs
from repro.irs.engine import IRSEngine
from repro.irs.segments.segment import SegmentConfig
from repro.store import SingleFileStore


@pytest.fixture
def fresh_obs():
    obs.enable()
    obs.metrics().reset()
    yield
    obs.metrics().reset()


def build_store(tmp_path, names=("alpha", "beta", "gamma")):
    engine = IRSEngine(segment_config=SegmentConfig(seal_document_count=2))
    for name in names:
        engine.create_collection(name)
        for i in range(4):
            engine.index_document(name, f"{name} document number {i}", {"n": i})
    store = SingleFileStore(str(tmp_path / "irs.store"))
    store.checkpoint(engine)
    store.close()
    return SingleFileStore(str(tmp_path / "irs.store"))


class TestLazyLoading:
    def test_names_visible_before_materialization(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine()
        assert sorted(engine.collection_names()) == ["alpha", "beta", "gamma"]
        assert sorted(engine.lazy_collection_names()) == ["alpha", "beta", "gamma"]
        store.close()

    def test_touch_materializes_only_that_collection(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine()
        engine.collection("beta")
        assert sorted(engine.lazy_collection_names()) == ["alpha", "gamma"]
        store.close()

    def test_query_triggers_materialization(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine()
        result = engine.query("alpha", "alpha document")
        assert result.values
        assert "alpha" not in engine.lazy_collection_names()
        store.close()

    def test_materialization_counter_advances(self, tmp_path, fresh_obs):
        store = build_store(tmp_path)
        engine = store.load_engine()
        before = obs.metrics().snapshot()["counters"].get(
            "store.lazy.materializations", 0
        )
        engine.collection("alpha")
        engine.collection("gamma")
        counters = obs.metrics().snapshot()["counters"]
        assert counters["store.lazy.materializations"] == before + 2
        rolling = obs.metrics().snapshot()["rolling"]
        assert rolling["store.materialize.seconds"]["count"] >= 2
        store.close()

    def test_eager_load_materializes_everything(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine(lazy=False)
        assert engine.lazy_collection_names() == []
        store.close()


class TestUntouchedCarryForward:
    def test_untouched_lazy_collection_survives_checkpoint(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine()
        # Touch and mutate only alpha; beta and gamma stay lazy.
        engine.index_document("alpha", "a brand new alpha document", {})
        stats = store.checkpoint(engine)
        assert stats["records_appended"] > 0
        assert sorted(engine.lazy_collection_names()) == ["beta", "gamma"]
        # The carried-forward entries still load correctly afterwards.
        assert len(engine.collection("beta")) == 4
        assert len(engine.collection("gamma")) == 4
        assert len(engine.collection("alpha")) == 5
        store.close()

    def test_carry_forward_is_byte_for_byte(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine()
        before = store.manifest["collections"]["beta"]
        engine.collection("alpha")  # materialize something else
        store.checkpoint(engine)
        after = store.manifest["collections"]["beta"]
        assert after == before

    def test_reopen_after_partial_touch_round_trips(self, tmp_path):
        store = build_store(tmp_path)
        engine = store.load_engine()
        engine.index_document("alpha", "alpha grows", {})
        store.checkpoint(engine)
        expected = {
            name: engine.query(name, f"{name} document").values
            for name in ("alpha", "beta", "gamma")
        }
        store.close()
        again = SingleFileStore(str(tmp_path / "irs.store"))
        restored = again.load_engine()
        got = {
            name: restored.query(name, f"{name} document").values
            for name in ("alpha", "beta", "gamma")
        }
        assert got == expected
        again.close()
