"""Legacy JSON layouts and the single-file store load each other's data.

Both persistence formats serialize the same collection payloads, so an
engine can round-trip json → store → json with bit-identical rankings and
payload-equal documents — the migration path for pre-store directories.
"""

import os

import pytest

from repro.core.system import DocumentSystem
from repro.irs.engine import IRSEngine
from repro.irs.persistence import load_engine as load_json_engine
from repro.irs.persistence import save_engine as save_json_engine
from repro.irs.segments.segment import SegmentConfig
from repro.sgml.mmf import build_document, mmf_dtd
from repro.store import SingleFileStore

TEXTS = [
    "structured documents stored in the object base",
    "the retrieval system indexes document text",
    "flexible coupling of database and retrieval",
    "segments seal into immutable runs",
    "shards scatter scoring across processes",
    "queries mix structure and content",
]

MODELS = ("inquery", "vector", "boolean")


def build_engine(layout):
    if layout == "flat":
        engine = IRSEngine(segment_config=SegmentConfig(enabled=False))
        engine.create_collection("docs")
    elif layout == "segmented":
        engine = IRSEngine(segment_config=SegmentConfig(seal_document_count=2))
        engine.create_collection("docs")
    else:
        engine = IRSEngine(
            segment_config=SegmentConfig(seal_document_count=2), shard_count=2
        )
        engine.create_collection("docs", shards=2)
    for i, text in enumerate(TEXTS):
        engine.index_document("docs", text, {"oid": f"OID{i}"})
    return engine


def rankings(engine, query="structured retrieval documents"):
    return {
        model: engine.query("docs", query, model=model).values
        for model in MODELS
    }


def documents(engine):
    collection = engine.collection("docs")
    return {
        doc_id: (doc.text, doc.metadata)
        for doc_id, doc in sorted(collection._documents.items())
    }


@pytest.mark.parametrize("layout", ["flat", "segmented", "sharded"])
class TestEngineLevel:
    def shard_count(self, layout):
        return 2 if layout == "sharded" else 0

    def test_json_to_store(self, tmp_path, layout):
        engine = build_engine(layout)
        expected = rankings(engine)
        json_dir = str(tmp_path / "irs_index")
        save_json_engine(engine, json_dir)

        via_json = load_json_engine(json_dir, shard_count=self.shard_count(layout))
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(via_json)
        store.close()

        again = SingleFileStore(str(tmp_path / "irs.store"))
        via_store = again.load_engine(shard_count=self.shard_count(layout))
        assert rankings(via_store) == expected
        assert documents(via_store) == documents(engine)
        again.close()

    def test_store_to_json(self, tmp_path, layout):
        engine = build_engine(layout)
        expected = rankings(engine)
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(engine)
        via_store = store.load_engine(shard_count=self.shard_count(layout))
        json_dir = str(tmp_path / "irs_index")
        save_json_engine(via_store, json_dir)
        store.close()

        via_json = load_json_engine(json_dir, shard_count=self.shard_count(layout))
        assert rankings(via_json) == expected
        assert documents(via_json) == documents(engine)

    def test_full_cycle_preserves_payloads(self, tmp_path, layout):
        engine = build_engine(layout)
        json_a = str(tmp_path / "a")
        save_json_engine(engine, json_a)
        store = SingleFileStore(str(tmp_path / "irs.store"))
        store.checkpoint(
            load_json_engine(json_a, shard_count=self.shard_count(layout))
        )
        restored = store.load_engine(shard_count=self.shard_count(layout))
        json_b = str(tmp_path / "b")
        save_json_engine(restored, json_b)
        store.close()
        # The cycle is lossless: both json snapshots load identically.
        first = load_json_engine(json_a, shard_count=self.shard_count(layout))
        second = load_json_engine(json_b, shard_count=self.shard_count(layout))
        assert rankings(first) == rankings(second)
        assert documents(first) == documents(second)


def _populate(system, dtd):
    for i in range(5):
        system.add_document(
            build_document(f"T{i}", [f"archie gopher text {i}", "www access"]),
            dtd=dtd,
        )
    collection = system.create_collection("paras", "ACCESS p FROM p IN PARA")
    system.index_collection(collection)
    return collection


def _search_all(system, query="archie access"):
    collection = next(iter(system.db.instances_of("COLLECTION")))
    return {
        model: system.search(collection, query, model=model).to_dict()
        for model in MODELS
    }


class TestSystemLevel:
    def test_legacy_json_directory_migrates_to_store(self, tmp_path):
        path = str(tmp_path / "sys")
        legacy = DocumentSystem(directory=path, storage="json")
        dtd = mmf_dtd()
        legacy.register_dtd(dtd)
        _populate(legacy, dtd)
        expected = _search_all(legacy)
        legacy.close()
        assert os.path.isdir(os.path.join(path, "irs_index"))

        # Opt in to the store: recovery rebuilds from the WAL-durable
        # doc_map and checkpoints, creating irs.store alongside.
        migrated = DocumentSystem(directory=path, storage="store")
        assert migrated._storage_mode == "store"
        assert _search_all(migrated) == expected
        migrated.close()
        assert os.path.exists(os.path.join(path, "irs.store"))

        # auto now prefers the store.
        reopened = DocumentSystem(directory=path)
        assert reopened._storage_mode == "store"
        assert _search_all(reopened) == expected
        reopened.close()

    def test_auto_prefers_existing_json_directory(self, tmp_path):
        path = str(tmp_path / "sys")
        legacy = DocumentSystem(directory=path, storage="json")
        dtd = mmf_dtd()
        legacy.register_dtd(dtd)
        _populate(legacy, dtd)
        expected = _search_all(legacy)
        legacy.close()

        reopened = DocumentSystem(directory=path)
        assert reopened._storage_mode == "json"
        assert _search_all(reopened) == expected
        reopened.close()

    def test_fresh_directory_defaults_to_store(self, tmp_path):
        system = DocumentSystem(directory=str(tmp_path / "fresh"))
        assert system._storage_mode == "store"
        assert system.store is not None
        system.close()
        assert os.path.exists(str(tmp_path / "fresh" / "irs.store"))

    def test_memory_system_has_no_store(self):
        system = DocumentSystem()
        assert system._storage_mode == "memory"
        assert system.store is None
        system.close()

    def test_unknown_storage_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DocumentSystem(directory=str(tmp_path / "x"), storage="parquet")
