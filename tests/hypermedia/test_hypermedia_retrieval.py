"""Section 5: media text, implies-augmented text, link derivation."""

import pytest

from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.hypermedia import (
    IMPLIES_TEXT_MODE,
    MEDIA_TEXT_MODE,
    create_link,
    install_hypermedia_text_modes,
    register_link_derivation,
)
from repro.hypermedia.links import DESCRIBES, IMPLIES
from repro.hypermedia.text_providers import implies_text, media_text
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def hyper(system):
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    install_hypermedia_text_modes(system.db)
    register_link_derivation()
    doc = build_document(
        "Media Piece",
        ["The www topology diagram below shows growth"],
        figures=["network graph"],
    )
    root = system.add_document(doc, dtd=dtd)
    figure = system.db.instances_of("FIGURE")[0]
    para = system.db.instances_of("PARA")[0]
    return system, root, figure, para


class TestMediaText:
    def test_caption_included(self, hyper):
        _system, _root, figure, _para = hyper
        assert "network graph" in media_text(figure)

    def test_describes_link_source_included(self, hyper):
        system, _root, figure, para = hyper
        create_link(system.db, para, figure, DESCRIBES)
        assert "topology diagram" in media_text(figure)

    def test_previous_sibling_included(self, hyper):
        # The paragraph right before the figure introduces it.
        _system, _root, figure, _para = hyper
        assert "topology" in media_text(figure)

    def test_media_collection_makes_figures_retrievable(self, hyper):
        system, _root, figure, para = hyper
        create_link(system.db, para, figure, DESCRIBES)
        collection = _create_collection(
            system.db, "media", "ACCESS f FROM f IN FIGURE",
            text_mode=MEDIA_TEXT_MODE,
        )
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        assert figure.oid in values

    def test_caption_only_collection_misses_topic(self, hyper):
        system, _root, figure, _para = hyper
        collection = _create_collection(
            system.db, "media_plain", "ACCESS f FROM f IN FIGURE",
            text_mode=0,
        )
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        assert figure.oid not in values


class TestImpliesText:
    def test_sources_text_included(self, hyper):
        system, _root, _figure, para = hyper
        target = system.loader.insert_element(
            system.db.get_object(para.get("parent")), "PARA", "plain conclusion"
        )
        create_link(system.db, para, target, IMPLIES)
        text = implies_text(target)
        assert "plain conclusion" in text
        assert "www" in text.lower()

    def test_no_links_means_own_text(self, hyper):
        _system, _root, _figure, para = hyper
        assert implies_text(para) == para.send("getTextContent")


class TestLinkDerivation:
    def test_value_propagates_along_implies(self, hyper):
        system, root, _figure, para = hyper
        # A second document whose paragraph says nothing about www.
        other = system.add_document(
            build_document("Other", ["completely unrelated content"]), dtd=mmf_dtd()
        )
        other_para = system.db.instances_of("PARA")[-1]
        create_link(system.db, para, other_para, IMPLIES)

        collection = _create_collection(
            system.db, "collPara", "ACCESS p FROM p IN PARA",
            derivation="link_propagation",
        )
        index_objects(collection)
        # The *document root* of `other` is not indexed; derivation walks
        # components and links.
        collection.set("derivation", "link_propagation")
        value_with_links = other_para.send("deriveIRSValue", collection, "www")
        assert value_with_links > 0

    def test_damping_reduces_value(self, hyper):
        system, _root, _figure, para = hyper
        other = system.add_document(
            build_document("Other", ["completely unrelated content"]), dtd=mmf_dtd()
        )
        other_para = system.db.instances_of("PARA")[-1]
        create_link(system.db, para, other_para, IMPLIES)
        collection = _create_collection(
            system.db, "collPara", "ACCESS p FROM p IN PARA",
            derivation="link_propagation",
        )
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        direct = values[para.oid]
        derived = other_para.send("deriveIRSValue", collection, "www")
        assert derived < direct

    def test_cycles_terminate(self, hyper):
        system, _root, _figure, para = hyper
        other = system.add_document(
            build_document("Other", ["more text here"]), dtd=mmf_dtd()
        )
        other_para = system.db.instances_of("PARA")[-1]
        create_link(system.db, para, other_para, IMPLIES)
        create_link(system.db, other_para, para, IMPLIES)
        collection = _create_collection(
            system.db, "collPara", "ACCESS p FROM p IN PARA",
            derivation="link_propagation",
        )
        index_objects(collection)
        # Must not recurse forever.
        assert other_para.send("deriveIRSValue", collection, "www") >= 0
