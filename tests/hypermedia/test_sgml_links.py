"""Declarative SGML linking: LINKEND attributes become LINK objects."""

import pytest

from repro.hypermedia import wire_sgml_links
from repro.hypermedia.links import IMPLIES, links_from, neighbours_in
from repro.sgml.mmf import mmf_dtd

DOC_A = """
<MMFDOC TITLE="Source" YEAR="1994">
<LOGBOOK>log</LOGBOOK>
<DOCTITLE>Source</DOCTITLE>
<PARA ID="anchor">the www grows rapidly in every country</PARA>
</MMFDOC>
"""

DOC_B = """
<MMFDOC TITLE="Citing" YEAR="1994">
<LOGBOOK>log</LOGBOOK>
<DOCTITLE>Citing</DOCTITLE>
<PARA LINKEND="anchor">as argued elsewhere the trend continues</PARA>
<PARA LINKEND="anchor" LINKTYPE="describes">a descriptive reference</PARA>
<PARA LINKEND="missing">dangling reference is fine</PARA>
</MMFDOC>
"""


@pytest.fixture
def loaded(system):
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    root_a = system.add_document(DOC_A, dtd=dtd)
    root_b = system.add_document(DOC_B, dtd=dtd)
    return system, root_a, root_b


class TestWiring:
    def test_links_created_for_resolvable_linkends(self, loaded):
        system, _root_a, root_b = loaded
        created = wire_sgml_links(system.db, root_b)
        assert len(created) == 2  # the dangling one is skipped

    def test_link_targets_resolve_by_id(self, loaded):
        system, root_a, root_b = loaded
        wire_sgml_links(system.db, root_b)
        anchor = next(
            p for p in root_a.send("getDescendants", "PARA")
            if p.send("getAttributeValue", "ID") == "anchor"
        )
        sources = neighbours_in(anchor)
        assert len(sources) == 2

    def test_linktype_attribute_respected(self, loaded):
        system, root_a, root_b = loaded
        wire_sgml_links(system.db, root_b)
        anchor = next(
            p for p in root_a.send("getDescendants", "PARA")
            if p.send("getAttributeValue", "ID") == "anchor"
        )
        types = sorted(
            link.get("link_type")
            for para in root_b.send("getDescendants", "PARA")
            for link in links_from(para)
        )
        assert types == ["describes", IMPLIES]

    def test_default_type_is_implies(self, loaded):
        system, _root_a, root_b = loaded
        created = wire_sgml_links(system.db, root_b)
        plain = [l for l in created if l.get("link_type") == IMPLIES]
        assert len(plain) == 1

    def test_cross_document_retrieval_via_links(self, loaded):
        """The implies-augmented text mode sees the linking fragment."""
        from repro.core.collection import _create_collection, _get_irs_result, index_objects
        from repro.hypermedia import IMPLIES_TEXT_MODE, install_hypermedia_text_modes

        system, root_a, root_b = loaded
        install_hypermedia_text_modes(system.db)
        wire_sgml_links(system.db, root_b)
        collection = _create_collection(
            system.db, "aug", "ACCESS p FROM p IN PARA", text_mode=IMPLIES_TEXT_MODE
        )
        index_objects(collection)
        anchor = next(
            p for p in root_a.send("getDescendants", "PARA")
            if p.send("getAttributeValue", "ID") == "anchor"
        )
        # The anchor's IRS document now contains the citing fragments.
        values = _get_irs_result(collection, "trend")
        assert anchor.oid in values

    def test_mmf_dtd_declares_link_attributes(self):
        dtd = mmf_dtd()
        attrs = dtd.element("PARA").attributes
        assert "LINKEND" in attrs and "LINKTYPE" in attrs
