"""Typed hypertext links."""

import pytest

from repro.hypermedia.links import (
    DESCRIBES,
    IMPLIES,
    create_link,
    define_link_class,
    links_from,
    links_to,
    neighbours_in,
    neighbours_out,
)


@pytest.fixture
def linked(mmf_system):
    paras = mmf_system.db.instances_of("PARA")
    create_link(mmf_system.db, paras[0], paras[1], IMPLIES)
    create_link(mmf_system.db, paras[2], paras[1], IMPLIES)
    create_link(mmf_system.db, paras[0], paras[3], DESCRIBES)
    return mmf_system, paras


class TestLinkObjects:
    def test_links_are_database_objects(self, linked):
        system, paras = linked
        links = system.db.instances_of("LINK")
        assert len(links) == 3
        assert links[0].get("link_type") in (IMPLIES, DESCRIBES)

    def test_define_idempotent(self, linked):
        system, _paras = linked
        define_link_class(system.db)  # second call must not raise

    def test_links_from(self, linked):
        _system, paras = linked
        assert len(links_from(paras[0])) == 2
        assert len(links_from(paras[0], IMPLIES)) == 1

    def test_links_to(self, linked):
        _system, paras = linked
        assert len(links_to(paras[1], IMPLIES)) == 2
        assert links_to(paras[0]) == []


class TestNeighbours:
    def test_neighbours_out(self, linked):
        _system, paras = linked
        targets = neighbours_out(paras[0])
        assert paras[1] in targets and paras[3] in targets

    def test_neighbours_in(self, linked):
        _system, paras = linked
        sources = neighbours_in(paras[1], IMPLIES)
        assert set(sources) == {paras[0], paras[2]}

    def test_type_filter(self, linked):
        _system, paras = linked
        assert neighbours_out(paras[0], DESCRIBES) == [paras[3]]

    def test_dangling_link_skipped(self, linked):
        system, paras = linked
        system.db.delete_object(paras[1])
        assert paras[1] not in neighbours_out(paras[0], IMPLIES)
