"""Fixtures for the network suite: a live server on an OS-picked port.

Everything binds ``127.0.0.1:0`` so parallel CI jobs never collide; the
client fixtures use small pools and fast backoff so failure-path tests
(timeouts, refused connections) stay quick.
"""

from __future__ import annotations

import socket

import pytest

from repro import DocumentSystem
from repro.net import RemoteSession
from repro.sgml.mmf import build_document, mmf_dtd

TEXTS = [
    ["Telnet is a protocol for remote login", "Telnet enables remote sessions"],
    ["The WWW connects documents worldwide", "The NII supports the WWW expansion"],
    ["The NII is the national information infrastructure", "Funding for NII research grows"],
    ["Gopher predates the WWW as a menu system", "Archie searches FTP archives"],
]


@pytest.fixture
def system():
    """A DocumentSystem with four MMF documents loaded."""
    sys_ = DocumentSystem()
    dtd = mmf_dtd()
    sys_.register_dtd(dtd)
    sys_.roots = [
        sys_.add_document(build_document(f"Doc{i}", texts, year="1994"), dtd=dtd)
        for i, texts in enumerate(TEXTS)
    ]
    yield sys_
    sys_.close()


@pytest.fixture
def collection(system):
    """A populated paragraph collection (deferred updates)."""
    coll = system.session.create_collection(
        "collPara", "ACCESS p FROM p IN PARA", update_policy="deferred"
    )
    system.session.index(coll)
    return coll


@pytest.fixture
def server(system):
    """A running DocumentServer on an OS-picked loopback port."""
    return system.serve()  # stopped by system.close()


@pytest.fixture
def remote(server):
    """A RemoteSession onto ``server`` tuned for fast tests."""
    session = RemoteSession(
        server.address,
        pool_size=4,
        connect_attempts=3,
        backoff_base=0.01,
        backoff_cap=0.05,
        request_timeout=10.0,
    )
    yield session
    session.close()


@pytest.fixture
def raw_socket(server):
    """A bare client socket — for speaking broken protocol on purpose."""
    sock = socket.create_connection(server.address, timeout=5.0)
    yield sock
    try:
        sock.close()
    except OSError:
        pass
