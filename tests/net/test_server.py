"""The socket server: lifecycle, dispatch, admission, fault behavior.

These tests speak the wire protocol directly (``raw_socket``) so the
server's responses are asserted byte-for-byte at the protocol level —
the RemoteSession client is deliberately out of the loop here.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro import obs
from repro.net import DocumentServer, RemoteSession, ServerConfig, wire
from repro.errors import ServiceOverloadedError
from tests.support import wait_until


def roundtrip(sock, envelope, max_bytes=wire.MAX_FRAME_BYTES):
    wire.send_frame(sock, envelope, max_bytes)
    return wire.recv_frame(sock, max_bytes)


class TestLifecycle:
    def test_start_binds_an_os_picked_port(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0
        assert server.running

    def test_start_is_idempotent(self, server):
        address = server.address
        assert server.start() is server
        assert server.address == address

    def test_stop_refuses_new_connections(self, system):
        server = DocumentServer(system).start()
        address = server.address
        server.stop()
        assert not server.running
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)

    def test_restart_after_stop_is_rejected(self, system):
        server = DocumentServer(system).start()
        server.stop()
        with pytest.raises(RuntimeError, match="already stopped"):
            server.start()

    def test_context_manager_stops_the_server(self, system):
        with DocumentServer(system) as server:
            address = server.address
            assert server.running
        assert not server.running
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)

    def test_system_close_stops_served_servers(self, system):
        server = system.serve()
        assert server.running
        system.close()
        assert not server.running
        # keep the fixture teardown idempotent
        system.close()


class TestDispatch:
    def test_ping_roundtrip(self, raw_socket):
        response = roundtrip(raw_socket, wire.request_envelope(1, "ping"))
        assert response["ok"] is True
        assert response["id"] == 1
        assert response["v"] == wire.PROTOCOL_VERSION
        assert response["result"]["pong"] is True
        assert response["result"]["protocol"] == wire.PROTOCOL_VERSION

    def test_request_ids_echo_back(self, raw_socket):
        for request_id in (41, 7, 1999):
            response = roundtrip(raw_socket, wire.request_envelope(request_id, "ping"))
            assert response["id"] == request_id

    def test_unknown_op_answers_typed_error_and_keeps_connection(self, raw_socket):
        response = roundtrip(raw_socket, wire.request_envelope(1, "frobnicate"))
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert "frobnicate" in response["error"]["message"]
        # The connection survives a bad op — only a broken byte stream closes it.
        assert roundtrip(raw_socket, wire.request_envelope(2, "ping"))["ok"] is True

    def test_missing_op_is_a_protocol_error(self, raw_socket):
        request = wire.request_envelope(1, "ping")
        del request["op"]
        response = roundtrip(raw_socket, request)
        assert response["error"]["type"] == "ProtocolError"

    def test_version_mismatch_is_answered_not_dropped(self, raw_socket):
        request = wire.request_envelope(1, "ping")
        request["v"] = 999
        response = roundtrip(raw_socket, request)
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert "version mismatch" in response["error"]["message"]
        assert roundtrip(raw_socket, wire.request_envelope(2, "ping"))["ok"] is True

    def test_domain_error_crosses_with_its_type(self, raw_socket, collection):
        response = roundtrip(
            raw_socket,
            wire.request_envelope(1, "query", {"collection": "missing", "irs_query": "x"}),
        )
        assert response["error"]["type"] == "UnknownCollectionError"
        assert "missing" in response["error"]["message"]

    def test_query_carries_telemetry(self, raw_socket, collection):
        response = roundtrip(
            raw_socket,
            wire.request_envelope(
                1, "query", {"collection": "collPara", "irs_query": "telnet"}
            ),
        )
        assert response["ok"] is True
        assert response["result"]["hits"]
        assert response["telemetry"]["query"] == "telnet"
        assert response["telemetry"]["cost"]["queries"] >= 1


class TestFrameRejection:
    def test_garbage_bytes_answered_once_then_closed(self, raw_socket):
        body = b"this is not json"
        raw_socket.sendall(struct.pack("!I", len(body)) + body)
        response = wire.recv_frame(raw_socket)
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert response["id"] is None
        assert wire.recv_frame(raw_socket) is None  # server closed

    def test_oversized_declared_length_rejected_and_closed(self, system):
        config = ServerConfig(max_frame_bytes=4096)
        with DocumentServer(system, config=config) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            try:
                sock.sendall(struct.pack("!I", 1 << 29))
                response = wire.recv_frame(sock)
                assert response["error"]["type"] == "FrameTooLargeError"
                assert wire.recv_frame(sock) is None
            finally:
                sock.close()

    def test_rejected_frames_are_counted(self, server, raw_socket):
        before = obs.metrics().counter("net.frames.rejected").value
        body = b"{broken"
        raw_socket.sendall(struct.pack("!I", len(body)) + body)
        wire.recv_frame(raw_socket)
        assert obs.metrics().counter("net.frames.rejected").value == before + 1


class TestDisconnects:
    def test_mid_frame_disconnect_leaves_server_serving(self, server):
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(struct.pack("!I", 512) + b"only a few bytes")
        sock.close()  # vanish mid-frame
        with socket.create_connection(server.address, timeout=5.0) as again:
            assert roundtrip(again, wire.request_envelope(1, "ping"))["ok"] is True
        wait_until(
            lambda: server.network_section()["active_connections"] == 0,
            message="handler thread to retire the dead connection",
        )

    def test_clean_eof_between_frames(self, server, raw_socket):
        assert roundtrip(raw_socket, wire.request_envelope(1, "ping"))["ok"] is True
        raw_socket.close()
        wait_until(
            lambda: server.network_section()["active_connections"] == 0,
            message="connection count to drop after clean EOF",
        )


class TestAdmission:
    def test_connection_limit_rejects_with_retry_after(self, system):
        config = ServerConfig(max_connections=2, retry_after_seconds=0.125)
        with DocumentServer(system, config=config) as server:
            keepers = [
                socket.create_connection(server.address, timeout=5.0)
                for _ in range(2)
            ]
            try:
                for sock in keepers:  # prove both were admitted
                    assert roundtrip(sock, wire.request_envelope(1, "ping"))["ok"]
                extra = socket.create_connection(server.address, timeout=5.0)
                try:
                    rejection = wire.recv_frame(extra)
                    assert rejection["ok"] is False
                    assert rejection["error"]["type"] == "ServiceOverloadedError"
                    assert rejection["error"]["retry_after_seconds"] == 0.125
                    assert rejection["id"] is None
                    assert wire.recv_frame(extra) is None  # then closed
                finally:
                    extra.close()
            finally:
                for sock in keepers:
                    sock.close()

    def test_rejection_is_counted_and_slot_frees_up(self, system):
        config = ServerConfig(max_connections=1)
        with DocumentServer(system, config=config) as server:
            before = obs.metrics().counter("net.connections.rejected").value
            first = socket.create_connection(server.address, timeout=5.0)
            try:
                assert roundtrip(first, wire.request_envelope(1, "ping"))["ok"]
                with socket.create_connection(server.address, timeout=5.0) as extra:
                    assert wire.recv_frame(extra)["ok"] is False
                assert (
                    obs.metrics().counter("net.connections.rejected").value
                    == before + 1
                )
            finally:
                first.close()
            # Once the admitted connection leaves, a newcomer gets in.
            wait_until(
                lambda: server.network_section()["active_connections"] == 0,
                message="admitted connection to retire",
            )
            with socket.create_connection(server.address, timeout=5.0) as again:
                assert roundtrip(again, wire.request_envelope(1, "ping"))["ok"]

    def test_session_overload_propagates_with_retry_hint(
        self, server, collection, monkeypatch
    ):
        def overloaded(*args, **kwargs):
            raise ServiceOverloadedError("admission queue full")

        monkeypatch.setattr(server.session, "query", overloaded)
        with RemoteSession(server.address, pool_size=1) as remote:
            with pytest.raises(ServiceOverloadedError) as excinfo:
                remote.query("collPara", "telnet")
            assert excinfo.value.retry_after == server.config.retry_after_seconds


class TestObservability:
    def test_request_counters_and_endpoint_latency(self, server, remote, collection):
        registry = obs.metrics()
        completed = registry.counter("net.requests.completed").value
        failed = registry.counter("net.requests.failed").value
        remote.ping()
        remote.query("collPara", "telnet")
        with pytest.raises(Exception):
            remote.query("missing", "telnet")
        assert registry.counter("net.requests.completed").value == completed + 2
        assert registry.counter("net.requests.failed").value == failed + 1
        snapshot = registry.snapshot()["rolling"]
        assert snapshot["net.request.seconds.ping"]["count"] >= 1
        assert snapshot["net.request.seconds.query"]["count"] >= 2

    def test_health_reports_the_server(self, server, remote, collection):
        report = remote.health()
        network = report["network"]
        assert network["servers"], "serve() must register in health"
        section = network["servers"][0]
        assert section["address"] == list(server.address)
        assert section["running"] is True
        assert section["active_connections"] >= 1  # at least this caller
        assert network["connections"]["accepted"] >= 1
        assert "query" in network["endpoints"] or "health" in network["endpoints"]

    def test_network_metrics_reach_prometheus_exposition(
        self, server, remote, collection
    ):
        from repro.obs.export import prometheus_text

        remote.query("collPara", "telnet")
        text = prometheus_text()
        assert "net_connections_accepted" in text
        assert "net_connections_active" in text
        assert "net_request_seconds_query" in text
