"""The frame codec and envelope layer, in isolation (no sockets).

The hypothesis round-trip is the load-bearing test: any JSON-expressible
payload survives encode → arbitrary re-chunking → decode unchanged.
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.errors as errors_module
from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    NetworkError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    ServiceOverloadedError,
    UnknownCollectionError,
)
from repro.net import wire

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)
json_objects = st.dictionaries(st.text(max_size=10), json_values, max_size=6)


class TestFrameCodec:
    @settings(max_examples=60, deadline=None)
    @given(payload=json_objects, chunk=st.integers(min_value=1, max_value=7))
    def test_roundtrip_survives_any_chunking(self, payload, chunk):
        frame = wire.encode_frame(payload)
        decoder = wire.FrameDecoder()
        received = []
        for start in range(0, len(frame), chunk):
            received.extend(decoder.feed(frame[start : start + chunk]))
        assert received == [payload]
        assert decoder.pending_bytes == 0

    def test_floats_roundtrip_bit_exact(self):
        scores = [0.1 + 0.2, 1e-308, 0.7462186513100967, 3.141592653589793]
        frame = wire.encode_frame({"scores": scores})
        (payload,) = wire.FrameDecoder().feed(frame)
        assert payload["scores"] == scores  # == on floats is bit-comparison

    def test_multiple_frames_in_one_feed(self):
        data = wire.encode_frame({"a": 1}) + wire.encode_frame({"b": 2})
        assert wire.FrameDecoder().feed(data) == [{"a": 1}, {"b": 2}]

    def test_truncated_frame_stays_pending(self):
        frame = wire.encode_frame({"key": "value"})
        decoder = wire.FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [{"key": "value"}]

    def test_non_object_payload_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            wire.encode_frame(["not", "an", "object"])

    def test_unencodable_payload_rejected(self):
        with pytest.raises(ProtocolError):
            wire.encode_frame({"sock": object()})
        with pytest.raises(ProtocolError):
            wire.encode_frame({"bad": float("nan")})

    def test_oversized_payload_refused_by_sender(self):
        with pytest.raises(FrameTooLargeError):
            wire.encode_frame({"blob": "x" * 100}, max_bytes=50)

    def test_oversized_prefix_rejected_after_four_bytes(self):
        decoder = wire.FrameDecoder(max_bytes=1024)
        with pytest.raises(FrameTooLargeError):
            decoder.feed(struct.pack("!I", 1 << 30))

    def test_garbage_body_is_a_protocol_error(self):
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError):
            wire.FrameDecoder().feed(struct.pack("!I", len(body)) + body)

    def test_non_object_json_body_is_a_protocol_error(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError):
            wire.FrameDecoder().feed(struct.pack("!I", len(body)) + body)


class TestEnvelopes:
    def test_request_envelope_shape(self):
        envelope = wire.request_envelope(7, "query", {"collection": "c"})
        assert envelope == {
            "v": wire.PROTOCOL_VERSION,
            "id": 7,
            "op": "query",
            "params": {"collection": "c"},
        }

    def test_result_envelope_carries_telemetry_only_when_present(self):
        assert "telemetry" not in wire.result_envelope(1, {"x": 1})
        assert wire.result_envelope(1, None, {"cost": {}})["telemetry"] == {"cost": {}}

    def test_version_mismatch_detected(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            wire.check_version({"v": 99, "id": 1})
        wire.check_version({"v": wire.PROTOCOL_VERSION})  # no raise

    @pytest.mark.parametrize(
        "exc_type",
        sorted(
            (
                candidate
                for candidate in vars(errors_module).values()
                if isinstance(candidate, type)
                and issubclass(candidate, ReproError)
            ),
            key=lambda t: t.__name__,
        ),
        ids=lambda t: t.__name__,
    )
    def test_every_repro_error_roundtrips_as_itself(self, exc_type):
        envelope = wire.error_envelope(3, exc_type("something broke"))
        assert envelope["ok"] is False
        assert envelope["error"]["type"] == exc_type.__name__
        with pytest.raises(exc_type, match="something broke"):
            wire.raise_from_envelope(envelope)

    def test_unknown_error_type_degrades_to_network_error(self):
        envelope = wire.error_envelope(3, UnknownCollectionError("x"))
        envelope["error"]["type"] = "SomeFutureError"
        with pytest.raises(NetworkError):
            wire.raise_from_envelope(envelope)

    def test_non_repro_exception_crosses_as_network_error(self):
        envelope = wire.error_envelope(3, KeyError("oops"))
        assert envelope["error"]["type"] == "NetworkError"
        assert "KeyError" in envelope["error"]["message"]
        with pytest.raises(NetworkError, match="KeyError"):
            wire.raise_from_envelope(envelope)

    def test_retry_after_hint_survives_the_roundtrip(self):
        envelope = wire.error_envelope(
            None, ServiceOverloadedError("full"), retry_after_seconds=0.25
        )
        with pytest.raises(ServiceOverloadedError) as excinfo:
            wire.raise_from_envelope(envelope)
        assert excinfo.value.retry_after == 0.25

    def test_cause_is_preserved_in_message(self):
        try:
            try:
                raise ValueError("root cause")
            except ValueError as inner:
                raise RequestTimeoutError("timed out") from inner
        except RequestTimeoutError as exc:
            envelope = wire.error_envelope(1, exc)
        assert envelope["error"]["cause"] == "ValueError: root cause"
        with pytest.raises(RequestTimeoutError, match="root cause"):
            wire.raise_from_envelope(envelope)

    def test_network_errors_are_repro_errors(self):
        assert issubclass(NetworkError, ReproError)
        assert issubclass(ProtocolError, NetworkError)
        assert issubclass(FrameTooLargeError, ProtocolError)
        assert issubclass(ConnectionLostError, NetworkError)


class TestValueEncoding:
    def test_scalars_and_containers_pass_through(self):
        value = {"a": [1, 2.5, "x", None, True], "b": {"nested": []}}
        assert wire.decode_value(wire.encode_value(value)) == value

    def test_tuples_and_sets_become_lists(self):
        assert wire.encode_value((1, 2)) == [1, 2]
        assert wire.encode_value({3}) == [3]

    def test_dbobject_becomes_tagged_snapshot(self, system, collection):
        packed = wire.encode_value(collection)
        assert set(packed) == {wire.OBJECT_TAG}
        ref = packed[wire.OBJECT_TAG]
        assert ref["oid"] == str(collection.oid)
        assert ref["class"] == "COLLECTION"
        assert ref["attributes"]["irs_name"] == "collPara"
        element = wire.decode_value(packed)
        assert element.oid == collection.oid
        assert element.get("irs_name") == "collPara"

    def test_unrepresentable_value_degrades_to_repr(self):
        encoded = wire.encode_value({"x": object()})
        assert isinstance(encoded["x"], str)
        assert "object" in encoded["x"]
