"""Remote results are bit-identical to in-process results.

The PR's hard constraint: rankings AND scores from a RemoteSession equal
the in-process Session's, across all three retrieval models, across
epochs, and through the batching path.  JSON floats round-trip IEEE
doubles exactly, so equality here is ``==`` on floats — no tolerance.

The serial-replay idiom mirrors ``tests/service/test_service_concurrency``:
every remote observation is tagged with the epoch it saw and compared to
the serial truth captured at that same epoch.
"""

from __future__ import annotations

import threading

import pytest

from repro.net import RemoteSession

QUERIES = ["telnet", "www", "nii", "#and(www nii)", "#or(telnet gopher)"]
MODELS = ["boolean", "vector", "inquery"]


def pairs(result):
    return [(hit.oid, hit.score) for hit in result]


class TestModelEquivalence:
    @pytest.mark.parametrize("model", MODELS)
    def test_rankings_and_scores_bit_equal(self, system, collection, remote, model):
        for query in QUERIES:
            local = system.session.query(collection, query, model=model)
            over_wire = remote.query("collPara", query, model=model)
            assert pairs(over_wire) == pairs(local), (
                f"remote ranking diverged for {model}/{query}"
            )
            assert over_wire == local  # ResultSet eq: (oid, score) lists
            assert over_wire.model == local.model
            assert over_wire.query == local.query

    def test_top_k_equivalence(self, system, collection, remote):
        for query in QUERIES:
            local = system.session.query(collection, query, top_k=2)
            over_wire = remote.query("collPara", query, top_k=2)
            assert pairs(over_wire) == pairs(local)

    def test_elements_materialize_to_matching_snapshots(
        self, system, collection, remote
    ):
        local = system.session.query(collection, "telnet")
        over_wire = remote.query("collPara", "telnet")
        for local_hit, remote_hit in zip(local, over_wire):
            assert remote_hit.element.oid == local_hit.element.oid
            assert remote_hit.element.class_name == local_hit.element.class_name
            assert remote_hit.element.get("content") == local_hit.element.get(
                "content"
            )


class TestEpochEquivalence:
    def test_epoch_tags_cross_the_wire(self, system, collection, remote):
        local = system.session.query(collection, "telnet")
        over_wire = remote.query("collPara", "telnet")
        assert over_wire.epoch == local.epoch
        assert over_wire.epoch is not None

    def test_updates_between_queries_stay_equivalent(
        self, system, collection, remote
    ):
        epochs = set()
        for i in range(3):
            para = system.loader.insert_element(
                system.roots[0], "PARA", f"fresh update {i} telnet gopher nii"
            )
            collection.send("insertObject", para)
            remote.propagate("collPara")
            for query in QUERIES:
                local = system.session.query(collection, query)
                over_wire = remote.query("collPara", query)
                assert pairs(over_wire) == pairs(local)
                assert over_wire.epoch == local.epoch
            epochs.add(remote.query("collPara", "telnet").epoch)
        assert len(epochs) == 3, "each propagation advances the epoch"

    def test_serial_replay_under_concurrent_remote_readers(
        self, system, collection, server
    ):
        truth = {}  # epoch -> {query: [(oid, score), ...]}
        truth_lock = threading.Lock()
        observations = []
        errors = []

        def capture_truth():
            engine = system.context.engine
            irs_name = collection.get("irs_name")
            with engine.reading(irs_name):
                irs_collection = engine.collection(irs_name)
                epoch = irs_collection.index.epoch
                if epoch in truth:
                    return
                per_query = {}
                for query in QUERIES:
                    result = engine.query(irs_name, query)
                    values = result.by_metadata(irs_collection, "oid")
                    per_query[query] = sorted(values.items())
                with truth_lock:
                    truth[epoch] = per_query

        capture_truth()

        def reader():
            try:
                with RemoteSession(server.address, pool_size=1) as session:
                    for _ in range(3):
                        for query in QUERIES:
                            result = session.query("collPara", query)
                            observed = sorted(
                                (str(hit.oid), hit.score) for hit in result
                            )
                            observations.append((query, result.epoch, observed))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(observations) == 4 * 3 * len(QUERIES)
        for query, epoch, observed in observations:
            assert observed == truth[epoch][query], (
                f"remote observation at epoch {epoch} diverged for {query!r}"
            )


class TestBatchEquivalence:
    def test_query_batch_matches_serial_queries(self, system, collection, remote):
        items = [("collPara", query) for query in QUERIES]
        batched = remote.query_batch(items)
        assert len(batched) == len(QUERIES)
        for query, result in zip(QUERIES, batched):
            local = system.session.query(collection, query)
            assert pairs(result) == pairs(local)
            assert result.query == query

    def test_batch_accepts_model_and_top_k(self, system, collection, remote):
        items = [("collPara", "telnet", "vector", 2)]
        (result,) = remote.query_batch(items)
        local = system.session.query(collection, "telnet", model="vector", top_k=2)
        assert pairs(result) == pairs(local)


class TestTelemetryOverTheWire:
    def test_telemetry_rides_on_query_responses(self, remote, collection):
        result = remote.query("collPara", "telnet")
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.query == "telnet"
        assert telemetry.collection == "collPara"
        assert telemetry.cost.queries >= 0
        assert telemetry.total_seconds >= 0

    def test_find_value_equivalence(self, system, collection, remote):
        local = system.session.query(collection, "telnet")
        for hit in local:
            assert remote.find_value("collPara", "telnet", hit.oid) == hit.score
