"""The ``checkpoint`` wire operation, end to end over a live socket."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro import DocumentSystem
from repro.errors import StoreError
from repro.net import RemoteSession
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture
def durable_system(tmp_path):
    system = DocumentSystem(directory=str(tmp_path / "netsys"))
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    for i in range(3):
        system.add_document(
            build_document(f"Doc{i}", [f"telnet text {i}", "www access"]),
            dtd=dtd,
        )
    collection = system.session.create_collection(
        "collPara", "ACCESS p FROM p IN PARA"
    )
    system.session.index(collection)
    yield system
    system.close()


@pytest.fixture
def durable_remote(durable_system):
    server = durable_system.serve()
    session = RemoteSession(server.address, pool_size=2, request_timeout=10.0)
    yield session
    session.close()


class TestRemoteCheckpoint:
    def test_checkpoint_returns_store_stats(self, durable_remote):
        stats = durable_remote.checkpoint()
        assert stats["checkpoint_id"] >= 1
        assert stats["size_bytes"] > 0

    def test_repeat_checkpoint_is_incremental(self, durable_remote):
        durable_remote.checkpoint()
        again = durable_remote.checkpoint()
        assert again["records_appended"] == 0
        assert again["records_reused"] > 0

    def test_checkpoint_on_memory_system_maps_store_error(self, server, system):
        session = RemoteSession(server.address, pool_size=1, request_timeout=10.0)
        try:
            with pytest.raises(StoreError):
                session.checkpoint()
        finally:
            session.close()


class TestAsyncCheckpoint:
    def test_async_checkpoint(self, durable_system):
        server = durable_system.serve()

        async def scenario():
            async with repro.connect(server.address, asynchronous=True) as session:
                return await session.checkpoint()

        stats = asyncio.run(scenario())
        assert stats["checkpoint_id"] >= 1
