"""RemoteSession: pooling, reconnect, deadlines, typed errors."""

from __future__ import annotations

import threading
import time

import pytest

from repro import DocumentSystem
from repro.errors import (
    ConnectionLostError,
    ProtocolError,
    IRSQuerySyntaxError,
    RequestTimeoutError,
    ServiceClosedError,
    UnknownCollectionError,
)
from repro.net import ClientConfig, DocumentServer, RemoteSession, ServerConfig


class TestAddressing:
    def test_accepts_tuple_string_and_url(self, server):
        host, port = server.address
        for target in [(host, port), f"{host}:{port}", f"tcp://{host}:{port}"]:
            with RemoteSession(target) as session:
                assert session.ping()["pong"] is True

    def test_rejects_nonsense_address(self):
        with pytest.raises(ValueError, match="not a server address"):
            RemoteSession("definitely not an address")

    def test_config_and_options_are_mutually_exclusive(self, server):
        with pytest.raises(ValueError, match="config= or keyword options"):
            RemoteSession(server.address, config=ClientConfig(), pool_size=2)


class TestPooling:
    def test_sequential_requests_reuse_one_connection(self, remote):
        for _ in range(5):
            remote.ping()
        assert remote.pool_stats == {"total": 1, "idle": 1}

    def test_pool_grows_only_under_concurrency(self, remote):
        barrier = threading.Barrier(3)
        results = []

        def worker():
            barrier.wait()
            results.append(remote.ping()["pong"])

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [True, True, True]
        stats = remote.pool_stats
        assert 1 <= stats["total"] <= 3
        assert stats["idle"] == stats["total"]

    def test_pool_size_caps_connections(self, server):
        with RemoteSession(server.address, pool_size=2) as session:
            barrier = threading.Barrier(6)
            done = []

            def worker():
                barrier.wait()
                done.append(session.ping()["pong"])

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(done) == 6
            assert session.pool_stats["total"] <= 2

    def test_closed_session_refuses_requests(self, remote):
        remote.close()
        with pytest.raises(ServiceClosedError):
            remote.ping()
        remote.close()  # idempotent


class TestReconnect:
    def test_client_survives_server_restart_on_same_port(self, system, collection):
        server = DocumentServer(system).start()
        host, port = server.address
        session = RemoteSession(
            (host, port),
            connect_attempts=8,
            backoff_base=0.02,
            backoff_cap=0.2,
        )
        try:
            assert len(session.query("collPara", "telnet")) > 0
            server.stop()
            # The pooled connection is now dead: the next request fails...
            with pytest.raises(ConnectionLostError):
                session.query("collPara", "telnet")
            # ...and once a server is back on the same port, dialing with
            # backoff inside acquire() finds it without any client restart.
            restarted = DocumentServer(
                system, config=ServerConfig(host=host, port=port)
            ).start()
            try:
                assert len(session.query("collPara", "telnet")) > 0
            finally:
                restarted.stop()
        finally:
            session.close()

    def test_connect_failure_exhausts_attempts_with_backoff(self):
        session = RemoteSession(
            ("127.0.0.1", 1),  # reserved port: connection refused
            connect_attempts=3,
            backoff_base=0.01,
            backoff_cap=0.02,
        )
        try:
            started = time.perf_counter()
            with pytest.raises(ConnectionLostError, match="after 3 attempts"):
                session.ping()
            elapsed = time.perf_counter() - started
            assert elapsed >= 0.01  # at least one backoff sleep happened
        finally:
            session.close()


class TestDeadlines:
    def test_slow_server_surfaces_request_timeout(self, server, collection, monkeypatch):
        original = server.session.query

        def slow_query(*args, **kwargs):
            time.sleep(0.6)
            return original(*args, **kwargs)

        monkeypatch.setattr(server.session, "query", slow_query)
        with RemoteSession(server.address, pool_size=1) as session:
            with pytest.raises(RequestTimeoutError, match="did not complete"):
                session.query("collPara", "telnet", timeout=0.1)
            # The timed-out socket was discarded, not pooled: the late
            # response cannot misdeliver into this fresh request.
            monkeypatch.setattr(server.session, "query", original)
            assert session.pool_stats["total"] == 0
            result = session.query("collPara", "telnet", timeout=5.0)
            assert len(result) > 0

    def test_per_request_timeout_overrides_config(
        self, server, collection, monkeypatch
    ):
        original = server.session.query

        def slow_query(*args, **kwargs):
            time.sleep(0.3)
            return original(*args, **kwargs)

        monkeypatch.setattr(server.session, "query", slow_query)
        # The config default (0.05s) would expire mid-request; the
        # generous per-request deadline wins and the call succeeds.
        with RemoteSession(server.address, request_timeout=0.05) as session:
            result = session.query("collPara", "telnet", timeout=10.0)
            assert len(result) > 0
            with pytest.raises(RequestTimeoutError):
                session.query("collPara", "telnet")  # default applies again


class TestTypedErrors:
    def test_unknown_collection_raises_same_type_as_local(self, remote):
        with pytest.raises(UnknownCollectionError, match="no collection named"):
            remote.query("ghost", "telnet")

    def test_query_syntax_error_crosses_typed(self, remote, collection):
        with pytest.raises(IRSQuerySyntaxError, match="unterminated"):
            remote.query("collPara", "#and(")

    def test_protocol_error_for_bad_collection_reference(self, remote):
        with pytest.raises(ProtocolError, match="cannot address collection"):
            remote.query(3.14, "telnet")


class TestContract:
    def test_create_index_query_collections(self, remote, system):
        collection = remote.create_collection(
            "remoteColl", "ACCESS p FROM p IN PARA"
        )
        assert collection.name == "remoteColl"
        assert collection.get("irs_name") == "remoteColl"
        assert remote.index(collection) is True
        assert "remoteColl" in remote.collections()
        result = remote.query(collection, "telnet")
        assert len(result) > 0
        # and by plain name, like the local Session accepts
        assert remote.query("remoteColl", "telnet") == result

    def test_collection_handle_is_server_checked(self, remote, collection):
        handle = remote.collection("collPara")
        assert handle.name == "collPara"
        with pytest.raises(UnknownCollectionError):
            remote.collection("ghost")

    def test_remove_and_propagate(self, remote, system, collection):
        before = remote.query("collPara", "telnet")
        victim = before[0].oid
        remote.remove("collPara", victim)
        assert remote.propagate("collPara") >= 1
        after = remote.query("collPara", "telnet")
        assert victim not in [hit.oid for hit in after]

    def test_find_value_matches_local(self, remote, system, collection):
        local_result = system.session.query(collection, "telnet")
        hit = local_result[0]
        remote_value = remote.find_value("collPara", "telnet", hit.oid)
        assert remote_value == system.session.find_value(
            collection, "telnet", hit.element
        )

    def test_execute_returns_remote_element_rows(self, remote, system, collection):
        rows = remote.execute(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, 'telnet') > 0",
            {"coll": remote.collection("collPara")},
        )
        assert rows
        local_rows = system.session.execute(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, 'telnet') > 0",
            {"coll": collection},
        )
        assert [row[0].oid for row in rows] == [row[0].oid for row in local_rows]
        element = rows[0][0]
        assert element.isa("PARA")
        assert "telnet" in element.get("content", "").lower()

    def test_materialize_false_ships_bare_hits(self, server, collection):
        with RemoteSession(server.address, materialize=False) as session:
            result = session.query("collPara", "telnet")
            assert len(result) > 0
            assert all(hit.element is None for hit in result)

    def test_pooled_property_and_repr(self, remote):
        assert remote.pooled is True
        assert "RemoteSession" in repr(remote)
