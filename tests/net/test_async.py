"""AsyncSession: the await-based surface over remote and local transports."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.errors import UnknownCollectionError
from repro.net import AsyncSession, RemoteSession


def run(coro):
    return asyncio.run(coro)


class TestRemoteAsync:
    def test_full_contract_roundtrip(self, server, collection):
        async def scenario():
            async with repro.connect(server.address, asynchronous=True) as session:
                assert (await session.ping())["pong"] is True
                coll = await session.collection("collPara")
                result = await session.query(coll, "telnet")
                assert len(result) > 0
                names = await session.collections()
                assert "collPara" in names
                report = await session.health()
                assert report["status"] in {"ok", "degraded", "overloaded"}
                return result

        result = run(scenario())
        assert result[0].score > 0

    def test_gather_overlaps_requests(self, server, collection):
        queries = ["telnet", "www", "nii", "#and(www nii)", "#or(telnet gopher)"]

        async def scenario():
            session = repro.connect(
                server.address, asynchronous=True, pool_size=4
            )
            try:
                return await asyncio.gather(
                    *(session.query("collPara", query) for query in queries)
                )
            finally:
                await session.close()

        results = run(scenario())
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.query == query

    def test_typed_errors_propagate_to_awaiter(self, server):
        async def scenario():
            async with AsyncSession(RemoteSession(server.address)) as session:
                with pytest.raises(UnknownCollectionError):
                    await session.query("ghost", "telnet")

        run(scenario())

    def test_results_match_sync_client(self, server, collection, remote):
        sync_result = remote.query("collPara", "telnet")

        async def scenario():
            async with AsyncSession(RemoteSession(server.address)) as session:
                return await session.query("collPara", "telnet")

        assert run(scenario()) == sync_result


class TestLocalAsync:
    def test_wraps_a_local_session(self, system, collection):
        async def scenario():
            session = repro.connect(system, asynchronous=True)
            assert isinstance(session, AsyncSession)
            result = await session.query("collPara", "telnet")
            assert (await session.ping())["pong"] is True
            return result

        result = run(scenario())
        assert len(result) > 0
        # Local transport: elements are live DBObjects, not snapshots.
        assert result[0].element.class_name == "PARA"

    def test_create_and_index_through_await(self, system):
        async def scenario():
            session = AsyncSession(system.session)
            coll = await session.create_collection(
                "asyncColl", "ACCESS p FROM p IN PARA"
            )
            await session.index(coll)
            return await session.collections()

        assert "asyncColl" in run(scenario())

    def test_executor_errors_do_not_wedge_the_loop(self, system, collection):
        async def scenario():
            session = AsyncSession(system.session)
            with pytest.raises(UnknownCollectionError):
                await session.query("ghost", "telnet")
            # The pool is still serviceable after an exception.
            return await session.query("collPara", "telnet")

        assert len(run(scenario())) > 0
