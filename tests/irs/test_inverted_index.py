"""Inverted index: postings, statistics, round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.inverted_index import InvertedIndex


@pytest.fixture
def index():
    idx = InvertedIndex()
    idx.add_document(1, ["www", "browser", "www"])
    idx.add_document(2, ["nii", "policy"])
    idx.add_document(3, ["www", "nii"])
    return idx


class TestPostings:
    def test_tf_counts_occurrences(self, index):
        assert index.term_frequency("www", 1) == 2
        assert index.term_frequency("www", 2) == 0

    def test_positions_recorded(self, index):
        postings = index.postings("www")
        assert postings[0].doc_id == 1
        assert postings[0].positions == [0, 2]

    def test_postings_in_doc_id_order(self, index):
        assert [p.doc_id for p in index.postings("www")] == [1, 3]

    def test_absent_term_empty(self, index):
        assert index.postings("zzz") == []

    def test_duplicate_doc_id_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(1, ["x"])


class TestStatistics:
    def test_document_count(self, index):
        assert index.document_count == 3

    def test_document_frequency(self, index):
        assert index.document_frequency("www") == 2
        assert index.document_frequency("policy") == 1
        assert index.document_frequency("zzz") == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("www") == 3

    def test_lengths(self, index):
        assert index.document_length(1) == 3
        assert index.average_document_length == pytest.approx(7 / 3)

    def test_posting_and_token_counts(self, index):
        assert index.posting_count == 6
        assert index.token_count == 7

    def test_empty_index_statistics(self):
        empty = InvertedIndex()
        assert empty.average_document_length == 0.0
        assert empty.document_count == 0


class TestRemoval:
    def test_remove_document(self, index):
        index.remove_document(1)
        assert not index.has_document(1)
        assert index.document_frequency("browser") == 0
        assert index.document_frequency("www") == 1

    def test_remove_unknown_raises(self, index):
        with pytest.raises(KeyError):
            index.remove_document(99)

    def test_empty_terms_pruned(self, index):
        index.remove_document(2)
        index.remove_document(3)
        assert "nii" not in set(index.terms())


class TestDocumentVector:
    def test_vector_matches_terms(self, index):
        assert index.document_vector(1) == {"www": 2, "browser": 1}

    def test_vector_of_unknown_doc_is_empty(self, index):
        assert index.document_vector(42) == {}


_doc_terms = st.lists(
    st.sampled_from(["www", "nii", "web", "policy", "browser"]), max_size=12
)


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_doc_terms, min_size=1, max_size=8))
    def test_payload_round_trip(self, docs):
        index = InvertedIndex()
        for doc_id, terms in enumerate(docs, start=1):
            index.add_document(doc_id, terms)
        restored = InvertedIndex.from_payload(index.to_payload())
        assert restored.document_count == index.document_count
        assert restored.posting_count == index.posting_count
        for doc_id in index.document_ids():
            assert restored.document_vector(doc_id) == index.document_vector(doc_id)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_doc_terms, min_size=2, max_size=8))
    def test_remove_then_stats_consistent(self, docs):
        index = InvertedIndex()
        for doc_id, terms in enumerate(docs, start=1):
            index.add_document(doc_id, terms)
        index.remove_document(1)
        assert index.document_count == len(docs) - 1
        assert 1 not in index.document_ids()
        for term in index.terms():
            assert index.document_frequency(term) >= 1
