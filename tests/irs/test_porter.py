"""Porter stemmer: canonical examples from the 1980 paper + properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.irs.porter import stem


class TestCanonicalExamples:
    # Input/output pairs taken from Porter's published step examples.
    @pytest.mark.parametrize(
        "word,expected",
        [
            # step 1a
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            # step 1b
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            # step 1b cleanup
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            # step 1c
            ("happy", "happi"),
            ("sky", "sky"),
            # step 2
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            # step 3
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            # step 4
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            # step 5
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_example(self, word, expected):
        assert stem(word) == expected


class TestDomainTerms:
    def test_retrieval_vocabulary_conflates(self):
        assert stem("retrieval") == stem("retrieving") != ""
        assert stem("indexing") == stem("indexed") == stem("index")
        assert stem("documents") == stem("document")

    def test_www_and_nii_unchanged(self):
        assert stem("www") == "www"
        assert stem("nii") == "nii"


class TestProperties:
    def test_short_words_unchanged(self):
        for word in ("a", "an", "is", "it"):
            assert stem(word) == word

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_never_longer_than_input(self, word):
        assert len(stem(word)) <= len(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=20))
    def test_never_empty_for_real_words(self, word):
        assert stem(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_deterministic(self, word):
        assert stem(word) == stem(word)
