"""Relevance feedback: Rocchio expansion at IRS and coupling level."""

import pytest

from repro.core.collection import _get_irs_result
from repro.core.feedback import expand_collection_query, install_feedback_method
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.engine import IRSEngine
from repro.irs.feedback import (
    FeedbackParameters,
    expand_query,
    feedback_iteration,
    rocchio_weights,
)
from repro.irs.queries import parse_irs_query


@pytest.fixture
def collection():
    c = IRSCollection("fb", Analyzer(stemming=False))
    c.add_document("www browser hypertext navigation pages")   # 1 relevant
    c.add_document("www server http protocol pages")           # 2 relevant
    c.add_document("cooking pasta water boiling dinner")       # 3 irrelevant
    c.add_document("nii policy funding infrastructure")        # 4 other topic
    return c


class TestRocchioWeights:
    def test_query_terms_always_weighted(self, collection):
        weights = rocchio_weights(collection, "www", relevant=[])
        assert weights["www"] == pytest.approx(1.0)

    def test_relevant_centroid_adds_terms(self, collection):
        weights = rocchio_weights(collection, "www", relevant=[1, 2])
        assert weights.get("pages", 0) > 0
        assert weights.get("hypertext", 0) > 0

    def test_non_relevant_subtracts(self, collection):
        with_neg = rocchio_weights(collection, "www", relevant=[1], non_relevant=[3])
        without = rocchio_weights(collection, "www", relevant=[1])
        assert with_neg.get("cooking", 0) < without.get("cooking", 0.0) + 1e-12

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            FeedbackParameters(expansion_terms=0)
        with pytest.raises(ValueError):
            FeedbackParameters(alpha=-1)


class TestExpandQuery:
    def test_produces_wsum(self, collection):
        expanded = expand_query(collection, "www", relevant=[1, 2])
        tree = parse_irs_query(expanded)
        assert tree.op == "wsum"
        assert "www" in [t.term for t in tree.children]

    def test_respects_expansion_budget(self, collection):
        params = FeedbackParameters(expansion_terms=3)
        expanded = expand_query(collection, "www", relevant=[1, 2], parameters=params)
        assert len(parse_irs_query(expanded).children) <= 3

    def test_no_feedback_returns_original(self, collection):
        assert expand_query(collection, "www", relevant=[]) != ""

    def test_expanded_query_finds_related_documents(self, collection):
        engine = IRSEngine()
        engine._collections["fb"] = collection
        original = engine.query("fb", "hypertext").values
        expanded, result = feedback_iteration(
            collection, engine, "fb", "hypertext", relevant=[1]
        )
        # Document 2 shares 'www'/'pages' with the relevant document but not
        # 'hypertext': only the expanded query reaches it.
        assert 2 not in original
        assert 2 in result


class TestCouplingLevel:
    def test_expand_collection_query(self, mmf_system, para_collection):
        values = _get_irs_result(para_collection, "telnet")
        relevant = [mmf_system.db.get_object(oid) for oid in values]
        assert relevant
        expanded = expand_collection_query(para_collection, "telnet", relevant)
        assert expanded.startswith("#wsum(")
        # The expanded query is an ordinary IRS query: buffered, mixable.
        result = _get_irs_result(para_collection, expanded)
        assert result

    def test_derivation_only_objects_contribute_nothing(self, mmf_system, para_collection):
        doc = mmf_system.roots[0]  # not represented in the collection
        expanded = expand_collection_query(para_collection, "telnet", [doc])
        # Only the original term survives: no relevant IRS documents existed.
        tree = parse_irs_query(expanded)
        terms = tree.terms() if hasattr(tree, "terms") else []
        assert terms == ["telnet"]

    def test_install_method(self, mmf_system, para_collection):
        install_feedback_method(mmf_system.db)
        values = _get_irs_result(para_collection, "www")
        relevant = [mmf_system.db.get_object(oid) for oid in values]
        expanded = para_collection.send("expandQuery", "www", relevant)
        assert "www" in expanded
