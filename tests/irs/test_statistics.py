"""Collection statistics: Zipf/Heaps diagnostics."""

import pytest

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.inverted_index import InvertedIndex
from repro.irs.statistics import (
    collection_statistics,
    heaps_beta,
    rank_frequency,
    statistics_for_collection,
    zipf_slope,
)


class TestRankFrequency:
    def test_sorted_descending(self):
        index = InvertedIndex()
        index.add_document(1, ["a", "a", "a", "b", "b", "c"])
        pairs = rank_frequency(index)
        assert pairs == [(1, 3), (2, 2), (3, 1)]

    def test_empty_index(self):
        assert rank_frequency(InvertedIndex()) == []
        assert zipf_slope(InvertedIndex()) == 0.0


class TestZipf:
    def test_zipfian_text_has_negative_slope_near_one(self):
        # Construct a rank-r frequency ~ 100/r distribution explicitly.
        index = InvertedIndex()
        doc = []
        for rank in range(1, 30):
            doc.extend([f"term{rank}"] * max(1, int(100 / rank)))
        index.add_document(1, doc)
        slope = zipf_slope(index)
        assert -1.3 < slope < -0.7

    def test_uniform_vocabulary_near_zero(self):
        index = InvertedIndex()
        index.add_document(1, [f"t{i}" for i in range(50)])
        assert abs(zipf_slope(index)) < 0.1


class TestHeaps:
    def test_sublinear_growth(self):
        # Repeating vocabulary: V grows sublinearly with tokens.
        docs = [[f"w{i % 30}" for i in range(start, start + 40)] for start in range(0, 400, 40)]
        beta = heaps_beta(docs)
        assert 0.0 <= beta < 0.8

    def test_all_unique_tokens_beta_near_one(self):
        docs = [[f"unique{start}_{i}" for i in range(40)] for start in range(10)]
        beta = heaps_beta(docs)
        assert beta > 0.9

    def test_degenerate_input(self):
        assert heaps_beta([]) == 0.0
        assert heaps_beta([["only"]]) == 0.0


class TestCorpusRealism:
    def test_synthetic_corpus_is_text_like(self, corpus_system):
        from repro.core.collection import _create_collection, index_objects

        collection_obj = _create_collection(
            corpus_system.db, "stats", "ACCESS p FROM p IN PARA"
        )
        index_objects(collection_obj)
        collection = corpus_system.engine.collection("stats")
        stats = statistics_for_collection(collection)
        assert stats.documents == len(corpus_system.db.instances_of("PARA"))
        assert stats.zipf_slope < -0.3   # skewed, not uniform
        assert 0.1 < stats.heaps_beta < 0.95
        assert 0 < stats.type_token_ratio < 1

    def test_statistics_shape(self):
        collection = IRSCollection("s", Analyzer(stemming=False, stopwords=set()))
        collection.add_document("a a b c")
        collection.add_document("a d e")
        stats = statistics_for_collection(collection)
        assert stats.documents == 2
        assert stats.tokens == 7
        assert stats.vocabulary == 5
        assert stats.average_document_length == pytest.approx(3.5)
