"""Segmented scoring must be exactly equivalent to a monolithic rebuild.

Satellite acceptance for the segmented index subsystem: a collection in an
arbitrary segmented state — live memtable, several sealed segments,
tombstones from deletes and re-indexing — must produce the *same rankings*
as an index rebuilt from scratch over the surviving documents, for the
vector-space, inference-network and boolean models, both before and after
background compaction.

Statistics combination is integer-exact (df/cf are sums of per-segment
counters), so scores agree to float noise only (≤ 1e-9).
"""

from __future__ import annotations

import random

import pytest

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection, IRSDocument
from repro.irs.inverted_index import InvertedIndex
from repro.irs.models import (
    BooleanModel,
    InferenceNetworkModel,
    VectorSpaceModel,
)
from repro.irs.queries import parse_irs_query
from repro.irs.segments import SegmentConfig

TOLERANCE = 1e-9

QUERIES = [
    "www",
    "www nii",
    "#sum(www nii telnet)",
    "#and(www nii)",
    "#and(www #not(nii))",
    "#or(#and(www nii) #or(telnet database))",
    "#wsum(2 www 1 nii 0.5 telnet)",
    "#max(www nii telnet)",
    "#od2(information retrieval)",
    "#uw5(www telnet)",
    "#sum(#od2(www nii) telnet)",
]

MODELS = [
    pytest.param(VectorSpaceModel(), id="vector"),
    pytest.param(InferenceNetworkModel(), id="inquery"),
    pytest.param(BooleanModel(), id="boolean"),
]

VOCABULARY = [
    "www", "nii", "telnet", "database", "information", "retrieval",
] + [f"w{i}" for i in range(60)]


def build_segmented_corpus(seed: int = 20260806, documents: int = 5000):
    """A 5k-doc segmented collection after a messy update history.

    Seal threshold of 700 forces multiple sealed segments plus a live
    memtable; the removes and replacements leave tombstones behind in the
    sealed ones.
    """
    rng = random.Random(seed)
    config = SegmentConfig(seal_document_count=700)
    collection = IRSCollection("seg5k", Analyzer(), segment_config=config)
    for _ in range(documents):
        words = rng.choices(VOCABULARY, k=rng.randint(3, 30))
        collection.add_document(" ".join(words))
    for victim in rng.sample(range(1, documents + 1), 150):
        collection.remove_document(victim)
    survivors = sorted(collection._documents)
    for doc_id in rng.sample(survivors, 100):
        words = rng.choices(VOCABULARY, k=rng.randint(3, 30))
        collection.replace_document(doc_id, " ".join(words))
    return collection


def monolithic_rebuild(collection: IRSCollection) -> IRSCollection:
    """From-scratch monolithic reference over the surviving documents."""
    rebuilt = IRSCollection(collection.name + "-rebuild", collection.analyzer)
    index = InvertedIndex()
    for doc_id in sorted(collection._documents):
        document = collection._documents[doc_id]
        rebuilt._documents[doc_id] = IRSDocument(
            doc_id, document.text, dict(document.metadata)
        )
        index.add_document(doc_id, rebuilt.analyzer.tokens(document.text))
    rebuilt.index = index
    rebuilt._next_doc_id = collection._next_doc_id
    return rebuilt


@pytest.fixture(scope="module")
def corpora():
    segmented = build_segmented_corpus()
    manager = segmented.segments
    assert len(manager.sealed_segments()) >= 5, "corpus must span several segments"
    assert manager.memtable.document_count > 0, "memtable must be live"
    assert manager.tombstone_count() > 0, "sealed tombstones required"
    return segmented, monolithic_rebuild(segmented)


def assert_same_ranking(segmented_result, rebuilt_result, context):
    assert set(segmented_result) == set(rebuilt_result), (
        f"{context}: result sets diverge: "
        f"{sorted(set(segmented_result) ^ set(rebuilt_result))[:10]}"
    )
    for doc_id, value in segmented_result.items():
        assert value == pytest.approx(rebuilt_result[doc_id], abs=TOLERANCE), (
            f"{context}: doc {doc_id}"
        )
    ranking = sorted(segmented_result, key=lambda d: (-segmented_result[d], d))
    reference = sorted(rebuilt_result, key=lambda d: (-rebuilt_result[d], d))
    assert ranking == reference, f"{context}: ranking order diverges"


class TestSegmentedScoringEquivalence:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_monolithic_rebuild(self, corpora, model, query):
        segmented, rebuilt = corpora
        tree = parse_irs_query(query, default_operator=model.default_operator)
        assert_same_ranking(
            model.score(segmented, tree),
            model.score(rebuilt, tree),
            f"{model.name} / {query}",
        )

    def test_statistics_are_integer_exact(self, corpora):
        segmented, rebuilt = corpora
        view, mono = segmented.index, rebuilt.index
        assert view.document_count == mono.document_count
        assert view.token_count == mono.token_count
        for term in mono.terms():
            assert view.document_frequency(term) == mono.document_frequency(term)
            assert view.collection_frequency(term) == mono.collection_frequency(term)


class TestEquivalenceAfterMerge:
    @pytest.mark.parametrize("model", MODELS)
    def test_compaction_preserves_rankings(self, model):
        segmented = build_segmented_corpus(seed=42, documents=1200)
        rebuilt = monolithic_rebuild(segmented)
        trees = [
            parse_irs_query(q, default_operator=model.default_operator)
            for q in QUERIES
        ]
        before = [model.score(segmented, tree) for tree in trees]
        epoch = segmented.index.epoch
        assert segmented.compact() is True
        assert segmented.index.epoch == epoch
        assert len(segmented.segments.sealed_segments()) == 1
        assert segmented.segments.tombstone_count() == 0
        for query, tree, prior in zip(QUERIES, trees, before):
            merged_result = model.score(segmented, tree)
            assert_same_ranking(
                merged_result, model.score(rebuilt, tree),
                f"{model.name} / {query} / post-merge",
            )
            assert_same_ranking(
                merged_result, prior, f"{model.name} / {query} / before-vs-after"
            )
