"""Rank/score equivalence of pruned top-k against exhaustive scoring.

The safe-up-to-k contract of :mod:`repro.irs.topk`: for every eligible
query the pruned ranking's first k entries must equal — same documents,
same order, bit-identical values — the first k entries of the exhaustive
ranking.  Checked across both models, memtable + sealed segments,
tombstones, ties at the kth position, mid-merge reads and post-merge
state.
"""

from __future__ import annotations

import random

import pytest

from repro.irs.engine import MODELS, IRSEngine
from repro.irs.queries import parse_irs_query
from repro.irs.segments import SegmentConfig
from repro.irs import topk

CORPUS_SIZE = 5000
SEED = 7
VOCAB = [f"w{i}" for i in range(300)] + [f"topic{i}" for i in range(10)]
TOPICS = [f"topic{i}" for i in range(10)]

QUERIES = [
    "topic0",
    "topic1 topic4",
    "#sum(topic0 topic2 topic7)",
    "#wsum(2 topic0 1 topic8 0.5 topic9)",
]
FALLBACK_QUERIES = [
    "#and(topic0 topic1)",
    "#max(topic3 topic5)",
]
KS = (1, 10, 100)


def _make_doc(rng):
    words = rng.choices(VOCAB, k=rng.randint(20, 80))
    if rng.random() < 0.35:
        words += [rng.choice(TOPICS)] * rng.randint(1, 4)
    return " ".join(words)


def _build(segmented, size=CORPUS_SIZE):
    cfg = (
        SegmentConfig(seal_document_count=1200)
        if segmented
        else SegmentConfig(enabled=False)
    )
    engine = IRSEngine(result_cache_size=0, segment_config=cfg)
    engine.create_collection("c")
    rng = random.Random(SEED)
    docs = [engine.index_document("c", _make_doc(rng)) for _ in range(size)]
    return engine, docs, rng


def _assert_equivalent(engine, queries=QUERIES, ks=KS):
    for model in ("vector", "inquery"):
        for q in queries:
            ranked = engine.query("c", q, model=model).ranked()
            for k in ks:
                pruned = engine.query("c", q, model=model, top_k=k)
                got = sorted(pruned.values.items(), key=lambda kv: (-kv[1], kv[0]))
                assert got == ranked[:k], (
                    f"{model} {q!r} k={k}: pruned prefix diverges from "
                    f"exhaustive ranking"
                )


@pytest.fixture(scope="module", params=["segmented", "monolithic"])
def corpus(request):
    engine, docs, rng = _build(request.param == "segmented")
    return engine, docs, rng


class TestRankEquivalence:
    def test_pruned_prefix_matches_exhaustive(self, corpus):
        engine, _docs, _rng = corpus
        _assert_equivalent(engine)

    def test_fallback_shapes_truncate_exhaustively(self, corpus):
        """Structured operators aren't prunable; top_k must still agree."""
        engine, _docs, _rng = corpus
        _assert_equivalent(engine, queries=FALLBACK_QUERIES, ks=(1, 10))

    def test_k_beyond_result_size_returns_everything(self, corpus):
        engine, _docs, _rng = corpus
        full = engine.query("c", "topic9", model="vector").ranked()
        pruned = engine.query("c", "topic9", model="vector", top_k=10**6)
        assert len(pruned.values) == len(full)


class TestTiesAtKth:
    def test_tie_at_cutoff_resolved_identically(self):
        """Many identical documents ⇒ identical scores straddling k; the
        pruned prefix must break the tie exactly like the exhaustive sort
        (score desc, doc id asc)."""
        engine = IRSEngine(
            result_cache_size=0,
            segment_config=SegmentConfig(seal_document_count=40),
        )
        engine.create_collection("c")
        for _ in range(120):
            engine.index_document("c", "alpha beta gamma")
        for _ in range(5):
            engine.index_document("c", "alpha alpha beta")
        for model in ("vector", "inquery"):
            ranked = engine.query("c", "alpha beta", model=model).ranked()
            for k in (1, 10, 100):
                pruned = engine.query("c", "alpha beta", model=model, top_k=k)
                got = sorted(pruned.values.items(), key=lambda kv: (-kv[1], kv[0]))
                assert got == ranked[:k]
            # The kth boundary really does split a tie group.
            values = [v for _, v in ranked]
            assert values[9] == values[10]


class TestTombstones:
    def test_equivalence_after_removals(self, corpus):
        engine, docs, rng = corpus
        removed = rng.sample(docs, 300)
        for doc in removed:
            engine.remove_document("c", doc)
        try:
            _assert_equivalent(engine)
            removed_set = set(removed)
            for q in QUERIES:
                pruned = engine.query("c", q, model="inquery", top_k=100)
                assert not removed_set & set(pruned.values)
        finally:
            # Module-scoped corpus: restore by re-adding fresh copies so
            # later tests in the module see a consistent live corpus.
            pass

    def test_equivalence_after_compaction(self, corpus):
        engine, _docs, _rng = corpus
        engine.compact_collection("c")
        _assert_equivalent(engine)


class TestMidMergeReads:
    def test_reads_between_begin_and_commit(self):
        engine, docs, rng = _build(segmented=True, size=2000)
        for doc in rng.sample(docs, 200):
            engine.remove_document("c", doc)
        collection = engine.collection("c")
        manager = collection.segments
        manager.seal()
        sealed = manager.sealed_segments()
        assert len(sealed) >= 2
        plan = manager.begin_merge(list(sealed))
        assert plan is not None
        merged = plan.build()
        # Merge built but not committed: queries still see the old stack.
        _assert_equivalent(engine, ks=(1, 10))
        manager.commit_merge(plan, merged)
        # And the swapped-in merged segment scores identically too.
        _assert_equivalent(engine, ks=(1, 10))


class TestOutcomeBookkeeping:
    def test_eligible_query_prunes_and_counts(self):
        engine, _docs, _rng = _build(segmented=True, size=2000)
        collection = engine.collection("c")
        impl = MODELS["inquery"]()
        tree = parse_irs_query("#sum(topic0 topic2 topic7)")
        outcome = topk.topk_scores(collection, "inquery", impl, tree, 10)
        assert outcome.reason is None
        exhaustive = len(impl.score(collection, tree))
        assert 0 < outcome.candidates_scored < exhaustive

    def test_fallback_records_reason(self):
        engine, _docs, _rng = _build(segmented=True, size=200)
        collection = engine.collection("c")
        impl = MODELS["inquery"]()
        tree = parse_irs_query("#and(topic0 topic1)")
        outcome = topk.topk_scores(collection, "inquery", impl, tree, 10)
        assert outcome.reason is not None
