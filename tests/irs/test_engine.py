"""IRS engine: collections, querying, counters, file exchange."""

import pytest

from repro.errors import DuplicateCollectionError, UnknownCollectionError
from repro.irs.engine import IRSEngine, parse_result_file


@pytest.fixture
def engine():
    e = IRSEngine()
    e.create_collection("paras")
    e.index_document("paras", "the www grows", {"oid": "OID1"})
    e.index_document("paras", "nii policy debate", {"oid": "OID2"})
    e.index_document("paras", "www and nii together", {"oid": "OID3"})
    return e


class TestCollections:
    def test_duplicate_collection_rejected(self, engine):
        with pytest.raises(DuplicateCollectionError):
            engine.create_collection("paras")

    def test_unknown_collection_rejected(self, engine):
        with pytest.raises(UnknownCollectionError):
            engine.query("nope", "www")

    def test_drop(self, engine):
        engine.drop_collection("paras")
        assert not engine.has_collection("paras")
        with pytest.raises(UnknownCollectionError):
            engine.drop_collection("paras")

    def test_collection_names_sorted(self, engine):
        engine.create_collection("alpha")
        assert engine.collection_names() == ["alpha", "paras"]


class TestQuerying:
    def test_query_returns_values(self, engine):
        result = engine.query("paras", "www")
        oids = result.by_metadata(engine.collection("paras"), "oid")
        assert set(oids) == {"OID1", "OID3"}

    def test_ranked_sorted_desc(self, engine):
        ranked = engine.query("paras", "www").ranked()
        values = [v for _d, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_model_selection(self, engine):
        boolean = engine.query("paras", "www", model="boolean")
        assert set(boolean.values.values()) == {1.0}

    def test_unknown_model_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.query("paras", "www", model="quantum")

    def test_unknown_default_model_rejected(self):
        with pytest.raises(ValueError):
            IRSEngine(default_model="quantum")

    def test_by_metadata_takes_max_over_shared_oid(self, engine):
        engine.index_document("paras", "www www www www", {"oid": "OID1"})
        values = engine.query("paras", "www").by_metadata(
            engine.collection("paras"), "oid"
        )
        raw = engine.query("paras", "www").values
        assert values["OID1"] == max(raw[1], raw[4])


class TestCounters:
    def test_counters_track_operations(self, engine):
        engine.counters.reset()
        engine.query("paras", "www")
        engine.query("paras", "nii")
        engine.index_document("paras", "more text", {})
        engine.remove_document("paras", 4)
        assert engine.counters.queries_executed == 2
        assert engine.counters.documents_indexed == 1
        assert engine.counters.documents_removed == 1
        assert engine.counters.per_collection_queries == {"paras": 2}

    def test_replace_counts_as_indexing(self, engine):
        engine.counters.reset()
        engine.replace_document("paras", 1, "new text")
        assert engine.counters.documents_indexed == 1


class TestFileExchange:
    def test_result_file_round_trip(self, engine, tmp_path):
        path = str(tmp_path / "result.txt")
        engine.query_to_file("paras", "www", path)
        values = parse_result_file(path)
        assert set(values) == {"OID1", "OID3"}
        direct = engine.query("paras", "www").by_metadata(
            engine.collection("paras"), "oid"
        )
        for oid, value in values.items():
            assert value == pytest.approx(direct[oid], abs=1e-5)

    def test_empty_result_file(self, engine, tmp_path):
        path = str(tmp_path / "empty.txt")
        engine.query_to_file("paras", "nonexistentterm", path)
        assert parse_result_file(path) == {}

    def test_missing_metadata_falls_back_to_doc_id(self, tmp_path):
        engine = IRSEngine()
        engine.create_collection("c")
        engine.index_document("c", "some www text")
        path = str(tmp_path / "r.txt")
        engine.query_to_file("c", "www", path)
        assert list(parse_result_file(path)) == ["doc:1"]
