"""Segment subsystem units: lifecycle, tombstones, view parity, payloads.

The load-bearing property is *mirror equivalence*: a
:class:`MergedIndexView` over any segment stack must expose exactly the
statistics and postings a monolithic :class:`InvertedIndex` holding the
same live documents does — integer statistics exactly, postings lists
identically.  Scoring equivalence on the big corpus lives in
``test_segmented_equivalence.py``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.collection import IRSCollection
from repro.irs.inverted_index import InvertedIndex
from repro.irs.segments import (
    MergedIndexView,
    SegmentConfig,
    SegmentedStatistics,
    SegmentManager,
)

VOCABULARY = ["www", "nii", "telnet", "database", "retrieval"] + [
    f"w{i}" for i in range(20)
]


def small_config(**overrides) -> SegmentConfig:
    defaults = dict(seal_document_count=4, tier_fanout=3)
    defaults.update(overrides)
    return SegmentConfig(**defaults)


def random_terms(rng: random.Random, low: int = 2, high: int = 12):
    return rng.choices(VOCABULARY, k=rng.randint(low, high))


def build_pair(seed: int, documents: int, config: SegmentConfig):
    """The same documents in a segment stack and a monolithic index."""
    rng = random.Random(seed)
    manager = SegmentManager(f"seg{seed}", config)
    view = MergedIndexView(manager)
    mono = InvertedIndex()
    for doc_id in range(1, documents + 1):
        terms = random_terms(rng)
        view.add_document(doc_id, terms)
        mono.add_document(doc_id, terms)
    return manager, view, mono


def assert_mirror(view: MergedIndexView, mono: InvertedIndex, context: str = ""):
    """The view and the monolithic index must agree on the full read API."""
    assert view.document_count == mono.document_count, context
    assert view.token_count == mono.token_count, context
    assert view.posting_count == mono.posting_count, context
    assert view.term_count == mono.term_count, context
    assert view.document_ids() == mono.document_ids(), context
    assert view.average_document_length == pytest.approx(
        mono.average_document_length
    ), context
    assert sorted(view.terms()) == sorted(mono.terms()), context
    assert view._doc_lengths == mono._doc_lengths, context
    for term in sorted(set(list(mono.terms()) + VOCABULARY)):
        assert view.document_frequency(term) == mono.document_frequency(term), (
            f"{context}: df({term})"
        )
        assert view.collection_frequency(term) == mono.collection_frequency(term), (
            f"{context}: cf({term})"
        )
        got = [(p.doc_id, p.positions) for p in view.postings(term)]
        expected = [(p.doc_id, p.positions) for p in mono.postings(term)]
        assert got == expected, f"{context}: postings({term})"
    for doc_id in mono.document_ids():
        assert view.document_length(doc_id) == mono.document_length(doc_id)
        assert view.document_vector(doc_id) == mono.document_vector(doc_id)
        assert view.has_document(doc_id)


class TestSegmentLifecycle:
    def test_memtable_seals_on_document_threshold(self):
        manager, view, _ = build_pair(1, 10, small_config())
        # 10 docs, seal at 4: two sealed segments + 2 docs in the memtable.
        assert len(manager.sealed_segments()) == 2
        assert manager.memtable.document_count == 2
        assert manager.segment_count == 3
        assert manager.seals == 2

    def test_memtable_seals_on_token_threshold(self):
        config = SegmentConfig(seal_document_count=1000, seal_token_count=10)
        manager = SegmentManager("tok", config)
        view = MergedIndexView(manager)
        view.add_document(1, ["a"] * 12)
        assert len(manager.sealed_segments()) == 1
        assert manager.memtable.document_count == 0

    def test_seal_preserves_epoch_and_bumps_structure(self):
        manager, view, _ = build_pair(2, 3, small_config())
        epoch, structure = manager.epoch, manager.structure
        view.add_document(99, ["www", "nii", "www"])  # 4th doc: triggers seal
        assert manager.structure == structure + 1
        assert manager.epoch == epoch + 1  # the add itself, not the seal

    def test_duplicate_add_raises(self):
        _, view, _ = build_pair(3, 5, small_config())
        with pytest.raises(ValueError):
            view.add_document(2, ["www"])

    def test_remove_unknown_raises_keyerror(self):
        _, view, _ = build_pair(4, 3, small_config())
        with pytest.raises(KeyError):
            view.remove_document(77)

    def test_memtable_removal_is_physical(self):
        manager, view, _ = build_pair(5, 2, small_config())
        view.remove_document(2)
        assert manager.tombstone_count() == 0
        assert not view.has_document(2)

    def test_sealed_removal_is_tombstone(self):
        manager, view, _ = build_pair(6, 9, small_config())
        sealed_doc = next(iter(manager.sealed_segments()[0].forward))
        view.remove_document(sealed_doc)
        assert manager.tombstone_count() == 1
        assert not view.has_document(sealed_doc)
        assert view.document_vector(sealed_doc) == {}
        assert sealed_doc not in [p.doc_id for p in view.postings("www")]


class TestMirrorEquivalence:
    def test_plain_build_mirrors_monolith(self):
        _, view, mono = build_pair(7, 23, small_config())
        assert_mirror(view, mono)

    def test_mirrors_after_tombstones_and_reinserts(self):
        rng = random.Random(8)
        manager, view, mono = build_pair(8, 20, small_config())
        next_id = 21
        for step in range(40):
            live = sorted(view._doc_lengths)
            roll = rng.random()
            if roll < 0.4 and len(live) > 3:
                victim = rng.choice(live)
                view.remove_document(victim)
                mono.remove_document(victim)
            else:
                terms = random_terms(rng)
                view.add_document(next_id, terms)
                mono.add_document(next_id, terms)
                next_id += 1
            if step % 10 == 9:
                assert_mirror(view, mono, f"step {step}")
        assert_mirror(view, mono, "final")

    def test_mirrors_after_compact(self):
        rng = random.Random(9)
        manager, view, mono = build_pair(9, 18, small_config())
        for victim in rng.sample(range(1, 19), 6):
            view.remove_document(victim)
            mono.remove_document(victim)
        epoch = view.epoch
        assert manager.compact() is True
        assert len(manager.sealed_segments()) == 1
        assert manager.sealed_segments()[0].tombstones == set()
        assert view.epoch == epoch, "compaction must be content-preserving"
        assert_mirror(view, mono, "after compact")

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ops=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=30),
    )
    def test_random_op_sequences_mirror(self, seed, ops):
        rng = random.Random(seed)
        manager = SegmentManager("prop", small_config(seal_document_count=3))
        view = MergedIndexView(manager)
        mono = InvertedIndex()
        next_id = 1
        for op in ops:
            live = sorted(view._doc_lengths)
            if op == 0 or not live:
                terms = random_terms(rng, 1, 6)
                view.add_document(next_id, terms)
                mono.add_document(next_id, terms)
                next_id += 1
            elif op == 1:
                victim = rng.choice(live)
                view.remove_document(victim)
                mono.remove_document(victim)
            else:
                manager.compact()
        assert_mirror(view, mono)


class TestEpochSemantics:
    def test_batched_epoch_coalesces_bumps(self):
        manager, view, _ = build_pair(10, 5, small_config())
        before = view.epoch
        with manager.batched_epoch():
            view.add_document(50, ["www"])
            view.add_document(51, ["nii"])
            view.remove_document(50)
            assert view.epoch == before, "bumps deferred inside the batch"
        assert view.epoch == before + 1

    def test_empty_batch_does_not_bump(self):
        manager, view, _ = build_pair(11, 5, small_config())
        before = view.epoch
        with manager.batched_epoch():
            pass
        assert view.epoch == before

    def test_nested_batches_bump_once(self):
        manager, view, _ = build_pair(12, 5, small_config())
        before = view.epoch
        with manager.batched_epoch():
            view.add_document(60, ["www"])
            with manager.batched_epoch():
                view.add_document(61, ["nii"])
        assert view.epoch == before + 1

    def test_monolithic_index_batched_epoch(self):
        index = InvertedIndex()
        index.add_document(1, ["www", "nii"])
        before = index.epoch
        with index.batched_epoch():
            index.add_document(2, ["telnet"])
            index.remove_document(1)
            assert index.epoch == before
        assert index.epoch == before + 1
        with index.batched_epoch():
            pass
        assert index.epoch == before + 1


class TestTargetedRemoval:
    def test_remove_with_terms_equals_full_scan(self):
        full, targeted = InvertedIndex(), InvertedIndex()
        rng = random.Random(13)
        docs = {doc_id: random_terms(rng) for doc_id in range(1, 10)}
        for doc_id, terms in docs.items():
            full.add_document(doc_id, terms)
            targeted.add_document(doc_id, terms)
        for doc_id in (3, 7, 1):
            full.remove_document(doc_id)
            targeted.remove_document(doc_id, terms=docs[doc_id])
        assert full.to_payload() == targeted.to_payload()
        assert full.posting_count == targeted.posting_count
        assert full.token_count == targeted.token_count

    def test_remove_with_terms_rejects_unknown_doc(self):
        index = InvertedIndex()
        index.add_document(1, ["www"])
        with pytest.raises(KeyError):
            index.remove_document(2, terms=["www"])


class TestSegmentedStatistics:
    def test_norms_match_monolithic_sweep(self):
        config = small_config()
        manager, view, mono = build_pair(14, 15, config)
        for victim in (2, 9):
            view.remove_document(victim)
            mono.remove_document(victim)
        segmented = SegmentedStatistics(view, manager)
        from repro.irs.statistics import StatisticsCache

        monolithic = StatisticsCache(mono)
        for doc_id in mono.document_ids():
            assert segmented.document_norm(doc_id) == pytest.approx(
                monolithic.document_norm(doc_id), abs=1e-9
            )
        assert segmented.document_norm(999) == 0.0

    def test_norms_invalidate_on_epoch_change(self):
        manager, view, _ = build_pair(15, 6, small_config())
        stats = SegmentedStatistics(view, manager)
        first = stats.document_norm(1)
        view.add_document(100, ["www", "www", "nii"])
        second = stats.document_norm(1)
        # Same document, but the idf landscape changed with the new doc.
        assert first != second

    def test_collection_stats_cache_is_segmented(self):
        collection = IRSCollection("segcoll", segment_config=small_config())
        collection.add_document("www nii telnet")
        assert isinstance(collection.stats, SegmentedStatistics)
        assert collection.stats.index is collection.index


class TestPayloads:
    def _populated(self, seed=16, documents=11):
        collection = IRSCollection(f"pay{seed}", segment_config=small_config())
        rng = random.Random(seed)
        for _ in range(documents):
            collection.add_document(" ".join(random_terms(rng)))
        collection.remove_document(2)
        collection.remove_document(7)
        return collection

    def test_segmented_round_trip(self):
        collection = self._populated()
        payload = collection.to_payload()
        assert "segments" in payload and "index" not in payload
        restored = IRSCollection.from_payload(payload)
        assert restored.segments is not None
        assert restored.index.to_payload() == collection.index.to_payload()
        assert restored.add_document("next doc") == collection._next_doc_id
        assert len(restored) == len(collection) + 1

    def test_segmented_payload_flattens_into_monolithic(self):
        collection = self._populated(seed=17)
        payload = collection.to_payload()
        restored = IRSCollection.from_payload(
            payload, segment_config=SegmentConfig(enabled=False)
        )
        assert restored.segments is None
        assert isinstance(restored.index, InvertedIndex)
        assert restored.index.to_payload() == collection.index.to_payload()

    def test_legacy_payload_loads_into_segments(self):
        mono = IRSCollection("legacy")
        rng = random.Random(18)
        for _ in range(6):
            mono.add_document(" ".join(random_terms(rng)))
        payload = mono.to_payload()
        assert "index" in payload
        restored = IRSCollection.from_payload(payload, segment_config=SegmentConfig())
        assert restored.segments is not None
        assert len(restored.segments.sealed_segments()) == 1
        assert restored.index.to_payload() == mono.index.to_payload()

    def test_view_payload_drops_tombstoned_documents(self):
        collection = self._populated(seed=19)
        payload = collection.index.to_payload()
        assert "2" not in payload["doc_lengths"]
        for by_doc in payload["postings"].values():
            assert "2" not in by_doc


class TestSegmentInfo:
    def test_info_snapshot(self):
        manager, view, _ = build_pair(20, 9, small_config())
        sealed_doc = next(iter(manager.sealed_segments()[0].forward))
        view.remove_document(sealed_doc)
        info = manager.info()
        assert info["sealed"] == 2
        assert info["documents"] == 8
        assert info["tombstones"] == 1
        assert info["epoch"] == manager.epoch
