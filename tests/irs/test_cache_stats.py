"""Attribution of result-cache and statistics-cache hit/miss counters."""

import pytest

from repro import obs
from repro.irs.engine import IRSEngine


@pytest.fixture()
def engine():
    engine = IRSEngine(result_cache_size=2)
    engine.create_collection("c")
    engine.index_document("c", "the www hypertext web")
    engine.index_document("c", "the nii infrastructure network")
    return engine


class TestResultCacheStats:
    def test_miss_then_hit(self, engine):
        engine.query("c", "www")
        engine.query("c", "www")
        stats = engine.cache_stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.epoch_invalidations == 0
        assert stats.hit_rate == 0.5

    def test_epoch_invalidation_is_not_a_plain_miss(self, engine):
        engine.query("c", "www")
        engine.index_document("c", "more www text bumps the epoch")
        engine.query("c", "www")
        stats = engine.cache_stats
        assert stats.epoch_invalidations == 1
        assert stats.misses == 2  # both executions had to score
        assert stats.hits == 0

    def test_lru_eviction_is_counted(self, engine):
        # Cache holds 2 entries; the third distinct query evicts the oldest.
        engine.query("c", "www")
        engine.query("c", "nii")
        engine.query("c", "network")
        assert engine.cache_stats.evictions == 1
        # The oldest entry ("www") is gone, so re-querying it misses again.
        engine.query("c", "www")
        assert engine.cache_stats.misses == 4
        assert engine.cache_stats.hits == 0

    def test_lru_order_refreshed_on_hit(self, engine):
        engine.query("c", "www")
        engine.query("c", "nii")
        engine.query("c", "www")  # hit -> "www" becomes most recent
        engine.query("c", "network")  # evicts "nii", not "www"
        engine.query("c", "www")
        assert engine.cache_stats.hits == 2
        assert engine.cache_stats.evictions == 1

    def test_drop_collection_counts_dropped_entries(self, engine):
        engine.query("c", "www")
        engine.query("c", "nii")
        engine.drop_collection("c")
        assert engine.cache_stats.dropped == 2

    def test_zero_capacity_disables_caching(self):
        engine = IRSEngine(result_cache_size=0)
        engine.create_collection("c")
        engine.index_document("c", "the www web")
        engine.query("c", "www")
        engine.query("c", "www")
        stats = engine.cache_stats
        assert stats.hits == 0
        assert stats.misses == 2
        assert stats.evictions == 0

    def test_metrics_registry_mirrors_attribution(self, engine):
        with obs.instrumentation() as (_tracer, metrics):
            engine.query("c", "www")
            engine.query("c", "www")
            engine.index_document("c", "epoch bump www")
            engine.query("c", "www")
            counters = metrics.snapshot()["counters"]
            assert counters["irs.result_cache.misses"] == 2
            assert counters["irs.result_cache.hits"] == 1
            assert counters["irs.result_cache.epoch_invalidations"] == 1
            assert counters["irs.index.additions"] == 1
            assert counters["irs.index.epoch_bumps"] >= 1

    def test_legacy_counter_still_tracks_hits(self, engine):
        engine.query("c", "www")
        engine.query("c", "www")
        assert engine.counters.result_cache_hits == 1


class TestStatisticsCacheStats:
    def test_cold_then_warm_accessors(self, engine):
        collection = engine.collection("c")
        collection.stats.reset_cache_info()
        collection.stats.average_document_length
        collection.stats.average_document_length
        info = collection.stats.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["invalidations"] == 0

    def test_index_mutation_invalidates_statistics(self, engine):
        collection = engine.collection("c")
        collection.stats.reset_cache_info()
        collection.stats.average_document_length
        engine.index_document("c", "fresh text changes the statistics")
        collection.stats.average_document_length
        info = collection.stats.cache_info()
        assert info["invalidations"] == 1
        assert info["misses"] == 2

    def test_statistics_cache_info_covers_all_collections(self, engine):
        engine.create_collection("other")
        engine.index_document("other", "something else")
        engine.query("c", "www")
        info = engine.statistics_cache_info()
        assert sorted(info) == ["c", "other"]
        assert info["c"]["misses"] > 0

    def test_reset_cache_stats_zeroes_everything(self, engine):
        engine.query("c", "www")
        engine.query("c", "www")
        engine.reset_cache_stats()
        assert engine.cache_stats.as_dict()["hits"] == 0
        assert engine.cache_stats.misses == 0
        for info in engine.statistics_cache_info().values():
            assert info == {"hits": 0, "misses": 0, "invalidations": 0}
