"""Retrieval models: boolean, vector, probabilistic behaviour."""

import pytest

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.models.boolean import BooleanModel
from repro.irs.models.probabilistic import DEFAULT_BELIEF, InferenceNetworkModel
from repro.irs.models.vector import VectorSpaceModel
from repro.irs.queries import parse_irs_query


@pytest.fixture
def collection():
    c = IRSCollection("test", Analyzer(stemming=False))
    c.add_document("www browser www pages")          # 1: heavy www
    c.add_document("nii policy funding")             # 2: nii only
    c.add_document("www nii infrastructure")         # 3: both
    c.add_document("cooking pasta water boiling")    # 4: neither
    return c


def score(model, collection, text, default="sum"):
    return model.score(collection, parse_irs_query(text, default_operator=default))


class TestBooleanModel:
    def test_term_match(self, collection):
        result = score(BooleanModel(), collection, "www")
        assert set(result) == {1, 3}
        assert all(v == 1.0 for v in result.values())

    def test_and(self, collection):
        assert set(score(BooleanModel(), collection, "#and(www nii)")) == {3}

    def test_or(self, collection):
        assert set(score(BooleanModel(), collection, "#or(www nii)")) == {1, 2, 3}

    def test_not(self, collection):
        assert set(score(BooleanModel(), collection, "#and(www #not(nii))")) == {1}

    def test_bare_terms_default_to_and(self, collection):
        result = score(BooleanModel(), collection, "www nii", default="and")
        assert set(result) == {3}

    def test_unknown_term_matches_nothing(self, collection):
        assert score(BooleanModel(), collection, "zzz") == {}


class TestVectorModel:
    def test_scores_in_unit_interval(self, collection):
        result = score(VectorSpaceModel(), collection, "www nii")
        assert result
        assert all(0.0 <= v <= 1.0 for v in result.values())

    def test_tf_matters(self, collection):
        result = score(VectorSpaceModel(), collection, "www")
        assert result[1] > 0 and result[3] > 0

    def test_both_terms_ranked_first(self, collection):
        result = score(VectorSpaceModel(), collection, "www nii")
        assert max(result, key=result.get) == 3

    def test_not_subtracts(self, collection):
        plain = score(VectorSpaceModel(), collection, "www")
        negated = score(VectorSpaceModel(), collection, "#sum(www #not(nii))")
        # Document 3 (www+nii) should fall relative to document 1.
        assert (negated.get(3, 0) - negated.get(1, 0)) < (plain[3] - plain[1])

    def test_empty_query_after_stopwords(self):
        c = IRSCollection("s", Analyzer())
        c.add_document("content here")
        assert VectorSpaceModel().score(c, parse_irs_query("the")) == {}


class TestInferenceModel:
    def test_values_above_default_belief(self, collection):
        result = score(InferenceNetworkModel(), collection, "www")
        assert set(result) == {1, 3}
        assert all(v > DEFAULT_BELIEF for v in result.values())

    def test_tf_and_length_matter(self, collection):
        result = score(InferenceNetworkModel(), collection, "www")
        assert result[1] > result[3]  # doc 1 has www twice

    def test_and_rewards_coverage(self, collection):
        result = score(InferenceNetworkModel(), collection, "#and(www nii)")
        assert max(result, key=result.get) == 3

    def test_baseline_respects_structure(self):
        model = InferenceNetworkModel()
        and_baseline = model.baseline(parse_irs_query("#and(a b)"))
        assert and_baseline == pytest.approx(DEFAULT_BELIEF**2)
        not_baseline = model.baseline(parse_irs_query("#not(a)"))
        assert not_baseline == pytest.approx(1 - DEFAULT_BELIEF)

    def test_wsum_weights_shift_ranking(self, collection):
        www_heavy = score(InferenceNetworkModel(), collection, "#wsum(5 www 1 nii)")
        nii_heavy = score(InferenceNetworkModel(), collection, "#wsum(1 www 5 nii)")
        assert www_heavy[1] > nii_heavy.get(1, 0)

    def test_max_operator(self, collection):
        result = score(InferenceNetworkModel(), collection, "#max(www nii)")
        assert set(result) == {1, 2, 3}

    def test_invalid_default_belief(self):
        with pytest.raises(ValueError):
            InferenceNetworkModel(default_belief=1.5)

    def test_term_belief_for_absent_doc_is_default(self, collection):
        model = InferenceNetworkModel()
        assert model.term_belief(collection, "www", 4) == DEFAULT_BELIEF

    def test_stopword_query_term_is_default(self, collection):
        model = InferenceNetworkModel()
        assert model.term_belief(collection, "the", 1) == DEFAULT_BELIEF
