"""Worker faults on the scatter-gather path: retry, failover, never wrong.

Real spawn worker pools, real faults: a crashed worker process, a hung
worker, and the deterministic ``failure_injector`` hook.  The contract
under test (DESIGN.md §"Sharded scoring", failover contract): every
failure mode ends in either a successful retry on a rebuilt pool or an
inline re-score of the lost shard — and in all cases the ranking equals
the unsharded reference bit for bit, with the failure recorded on the
``irs.shard.*`` counters and the query span.

Worker pools are slow to start on a small runner; the suite keeps shard
counts low and reuses one corpus.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.irs.engine import IRSEngine
from repro.irs.shards import ShardConfig, ShardExecutor
from repro.irs.shards import worker as shard_worker
from tests.support import wait_until

SHARDS = 3
QUERY = "#sum(www nii telnet)"
#: Used to warm the worker pools before injecting a fault — distinct from
#: QUERY so the faulted query cannot be served from the result cache.
WARM_QUERY = "#sum(database pages)"
TOP_K = 5

WORDS = ["www", "nii", "telnet", "database", "remote", "pages", "policy"]


def corpus_texts(documents: int = 48):
    return [
        " ".join(WORDS[(i + j) % len(WORDS)] for j in range((i % 9) + 1))
        for i in range(documents)
    ]


@pytest.fixture
def reference_values():
    """The unsharded ranking the sharded engines must reproduce exactly."""
    engine = IRSEngine()
    engine.create_collection("ref")
    for text in corpus_texts():
        engine.index_document("ref", text)
    return engine.query("ref", QUERY, top_k=TOP_K).values


def sharded_engine(config=None):
    engine = IRSEngine(shard_count=SHARDS, shard_config=config)
    engine.create_collection("c")
    for text in corpus_texts():
        engine.index_document("c", text)
    engine.attach_shard_executor()
    return engine


def query_spans(tracer):
    return [
        span
        for root in tracer.finished_traces()
        for span in root.iter_spans()
        if span.name == "irs.query"
    ]


def shard_spans(tracer):
    return [
        span
        for root in tracer.finished_traces()
        for span in root.iter_spans()
        if span.name == "irs.shard.query"
    ]


class TestScatterHappyPath:
    def test_exact_and_marked_sharded(self, reference_values):
        engine = sharded_engine()
        try:
            with obs.instrumentation() as (tracer, metrics):
                values = engine.query("c", QUERY, top_k=TOP_K).values
            assert values == reference_values
            (span,) = query_spans(tracer)
            assert span.attributes.get("sharded") is True
            assert span.attributes.get("shards") == SHARDS
            assert "shard_failovers" not in span.attributes
            counters = metrics.snapshot()["counters"]
            assert counters.get("irs.shard.scatters") == 1
            assert not counters.get("irs.shard.failovers")
            statuses = [s.attributes.get("status") for s in shard_spans(tracer)]
            assert statuses == ["ok"] * SHARDS
        finally:
            engine.shutdown_shards()


class TestCrashedWorker:
    def test_killed_worker_is_retried_to_exact_results(self, reference_values):
        engine = sharded_engine()
        try:
            # Warm every pool, then kill shard 1's worker process outright.
            engine.query("c", WARM_QUERY, top_k=TOP_K)
            executor = engine.shard_executor
            doomed = executor.pool("c", 1).submit(shard_worker.crash_worker)
            with pytest.raises(Exception):
                doomed.result(timeout=30)  # pool notices the death here
            with obs.instrumentation() as (tracer, metrics):
                values = engine.query("c", QUERY, top_k=TOP_K).values
            assert values == reference_values
            counters = metrics.snapshot()["counters"]
            assert counters.get("irs.shard.retries", 0) >= 1
            (span,) = query_spans(tracer)
            assert span.attributes.get("sharded") is True
            assert span.attributes.get("shard_retries", 0) >= 1
            # The rebuilt pool answered: recovery, not failover.
            assert "shard_failovers" not in span.attributes
        finally:
            engine.shutdown_shards()


class TestHungWorker:
    def test_hang_times_out_then_recovers_exactly(self, reference_values):
        engine = sharded_engine(ShardConfig(shard_timeout_seconds=0.5))
        try:
            engine.query("c", WARM_QUERY, top_k=TOP_K)
            executor = engine.shard_executor
            executor.pool("c", 0).submit(shard_worker.hang_worker, 60.0)
            with obs.instrumentation() as (tracer, metrics):
                values = engine.query("c", QUERY, top_k=TOP_K).values
            assert values == reference_values
            counters = metrics.snapshot()["counters"]
            assert counters.get("irs.shard.timeouts", 0) >= 1
            assert counters.get("irs.shard.retries", 0) >= 1
            (span,) = query_spans(tracer)
            assert span.attributes.get("shard_retries", 0) >= 1
        finally:
            engine.shutdown_shards()
        # The hung process was terminated with its pool, not left behind.
        wait_until(
            lambda: not executor._pools,
            timeout=10,
            message="discarded pools still registered",
        )


class TestInjectedFailover:
    def test_persistent_fault_falls_back_inline_exactly(self, reference_values):
        # The injector fails shard 2 on *every* attempt: retry cannot help,
        # the gather must re-score that shard inline from the parent.
        def injector(label, attempt):
            if label == "c#2":
                raise RuntimeError("injected persistent fault")

        engine = sharded_engine(ShardConfig(failure_injector=injector))
        try:
            with obs.instrumentation() as (tracer, metrics):
                values = engine.query("c", QUERY, top_k=TOP_K).values
            assert values == reference_values
            counters = metrics.snapshot()["counters"]
            assert counters.get("irs.shard.failovers") == 1
            assert counters.get("irs.shard.retries", 0) >= 1
            (span,) = query_spans(tracer)
            assert span.attributes.get("shard_failovers") == 1
            statuses = {
                s.attributes["shard"]: s.attributes.get("status")
                for s in shard_spans(tracer)
            }
            assert statuses[2] == "failover"
            assert statuses[0] == statuses[1] == "ok"
        finally:
            engine.shutdown_shards()

    def test_total_failure_still_exact(self, reference_values):
        def injector(label, attempt):
            raise RuntimeError("everything is down")

        engine = sharded_engine(ShardConfig(failure_injector=injector))
        try:
            with obs.instrumentation() as (_tracer, metrics):
                values = engine.query("c", QUERY, top_k=TOP_K).values
            assert values == reference_values
            counters = metrics.snapshot()["counters"]
            assert counters.get("irs.shard.failovers") == SHARDS
        finally:
            engine.shutdown_shards()

    def test_transient_fault_recovers_on_retry(self, reference_values):
        attempts = []

        def injector(label, attempt):
            attempts.append((label, attempt))
            if label == "c#0" and attempt == 1:
                raise RuntimeError("transient fault")

        engine = sharded_engine(ShardConfig(failure_injector=injector))
        try:
            with obs.instrumentation() as (tracer, metrics):
                values = engine.query("c", QUERY, top_k=TOP_K).values
            assert values == reference_values
            counters = metrics.snapshot()["counters"]
            assert counters.get("irs.shard.retries") == 1
            assert not counters.get("irs.shard.failovers")
            assert ("c#0", 2) in attempts
        finally:
            engine.shutdown_shards()


class TestExecutorLifecycle:
    def test_closed_executor_declines_scatter_exactly(self, reference_values):
        engine = sharded_engine()
        engine.shutdown_shards()
        # No executor: the engine scores inline through the union view.
        values = engine.query("c", QUERY, top_k=TOP_K).values
        assert values == reference_values

    def test_close_is_idempotent(self):
        executor = ShardExecutor()
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError):
            executor.pool("c", 0)
