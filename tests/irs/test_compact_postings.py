"""Compact block postings: round-trips, cursors, tombstones, payloads."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.inverted_index import InvertedIndex, Posting
from repro.irs.postings import (
    BLOCK_SIZE,
    CURSOR_DONE,
    CompactIndex,
    CompactPostings,
    CompactPostingsBuilder,
    ListCursor,
    MergedCursor,
)


def build(entries):
    """entries: [(doc_id, positions)] ascending -> CompactPostings."""
    builder = CompactPostingsBuilder()
    for doc_id, positions in entries:
        builder.add(doc_id, positions)
    return builder.build()


def sample_entries(n, seed=0, gap_max=50):
    rng = random.Random(seed)
    doc = 0
    entries = []
    for _ in range(n):
        doc += rng.randint(1, gap_max)
        k = rng.randint(1, 6)
        positions = sorted(rng.sample(range(0, 500), k))
        entries.append((doc, positions))
    return entries


entry_lists = st.builds(
    sample_entries,
    st.integers(0, 3 * BLOCK_SIZE + 7),
    seed=st.integers(0, 2**16),
    gap_max=st.integers(1, 10**6),
)


class TestBuilderRoundTrip:
    def test_empty(self):
        postings = build([])
        assert postings.doc_count == 0
        assert postings.block_count == 0
        assert postings.max_tf == 0
        assert postings.to_postings() == []
        cursor = postings.cursor()
        assert cursor.current_doc() == CURSOR_DONE

    def test_small_round_trip(self):
        entries = [(3, [0, 4]), (9, [1]), (200, [5, 6, 7])]
        postings = build(entries)
        assert postings.doc_count == 3
        assert postings.collection_frequency == 6
        assert [(p.doc_id, p.positions) for p in postings.to_postings()] == entries
        assert [
            (d, tf) for d, tf, _ in postings.iter_entries(with_positions=False)
        ] == [(3, 2), (9, 1), (200, 3)]

    @settings(max_examples=30, deadline=None)
    @given(entry_lists)
    def test_round_trip_property(self, entries):
        postings = build(entries)
        assert postings.doc_count == len(entries)
        assert [(p.doc_id, p.positions) for p in postings.to_postings()] == entries
        assert postings.collection_frequency == sum(
            len(positions) for _, positions in entries
        )

    def test_rejects_non_ascending(self):
        builder = CompactPostingsBuilder()
        builder.add(5, [0])
        with pytest.raises(ValueError):
            builder.add(5, [1])
        with pytest.raises(ValueError):
            builder.add(3, [1])

    def test_rejects_empty_positions(self):
        with pytest.raises(ValueError):
            CompactPostingsBuilder().add(1, [])


class TestBlockMetadata:
    @pytest.fixture
    def postings(self):
        # 2.5 blocks, doc ids 2, 4, 6, ..., tf grows with doc id.
        entries = [
            (2 * (i + 1), list(range(1 + i % 7)) or [0])
            for i in range(2 * BLOCK_SIZE + BLOCK_SIZE // 2)
        ]
        return build(entries), entries

    def test_block_shape(self, postings):
        compact, entries = postings
        assert compact.block_count == 3
        assert compact.block_doc_count(0) == BLOCK_SIZE
        assert compact.block_doc_count(2) == BLOCK_SIZE // 2
        assert compact.block_last_doc(0) == entries[BLOCK_SIZE - 1][0]
        assert compact.block_last_doc(2) == entries[-1][0]

    def test_block_max_tf_is_exact(self, postings):
        compact, entries = postings
        for b in range(compact.block_count):
            chunk = entries[b * BLOCK_SIZE : (b + 1) * BLOCK_SIZE]
            assert compact.block_max_tf(b) == max(len(p) for _, p in chunk)
        assert compact.max_tf == max(len(p) for _, p in entries)

    def test_blocks_decode_independently(self, postings):
        compact, entries = postings
        ids, tfs = compact.decode_block(1)  # no block 0 decode needed
        chunk = entries[BLOCK_SIZE : 2 * BLOCK_SIZE]
        assert ids == [d for d, _ in chunk]
        assert tfs == [len(p) for _, p in chunk]
        positions = compact.decode_block_positions(1, tfs)
        assert positions == [p for _, p in chunk]

    def test_point_lookups(self, postings):
        compact, entries = postings
        present = entries[BLOCK_SIZE + 3]
        assert compact.term_frequency(present[0]) == len(present[1])
        assert compact.positions(present[0]) == present[1]
        assert compact.term_frequency(present[0] + 1) == 0
        assert compact.positions(present[0] + 1) is None
        assert compact.term_frequency(10**9) == 0

    def test_compact_is_smaller_than_dict_proxy(self, postings):
        compact, entries = postings
        dict_bytes = sum(8 + 8 * len(p) for _, p in entries)
        assert compact.postings_bytes < dict_bytes / 3


class TestCompactCursor:
    @pytest.fixture
    def entries(self):
        return sample_entries(3 * BLOCK_SIZE + 11, seed=5)

    def test_full_scan_matches_entries(self, entries):
        cursor = build(entries).cursor()
        seen = []
        doc = cursor.current_doc()
        while doc != CURSOR_DONE:
            seen.append((doc, cursor.current_tf()))
            doc = cursor.advance()
        assert seen == [(d, len(p)) for d, p in entries]

    def test_next_geq_skips_blocks_without_decoding(self, entries):
        postings = build(entries)
        cursor = postings.cursor()
        target = entries[2 * BLOCK_SIZE + 1][0]
        assert cursor.next_geq(target) == target
        # Block 0 was decoded to position the cursor; block 1 was hopped
        # over through its skip entry without decoding.
        assert cursor.blocks_skipped == 1
        assert cursor.block == 2

    def test_next_geq_between_docs_lands_on_successor(self, entries):
        cursor = build(entries).cursor()
        doc = entries[10][0]
        assert cursor.next_geq(doc + 1) == entries[11][0]
        assert cursor.next_geq(entries[-1][0] + 1) == CURSOR_DONE

    def test_advance_block_counts_skips(self, entries):
        cursor = build(entries).cursor()
        assert cursor.advance_block()  # block 0 never decoded -> skipped
        assert cursor.blocks_skipped == 1
        cursor.current_doc()  # decodes block 1
        cursor.advance_block()
        assert cursor.blocks_skipped == 1  # decoded blocks don't count
        cursor.mark_block_read()  # consumed out of band (impact cache)
        cursor.advance_block()
        assert cursor.blocks_skipped == 1

    def test_block_arrays_alignment(self, entries):
        cursor = build(entries).cursor()
        cursor.next_geq(entries[BLOCK_SIZE + 7][0])
        ids, tfs, start = cursor.block_arrays()
        assert ids[start] == cursor.current_doc()
        assert tfs[start] == cursor.current_tf()
        assert len(ids) == len(tfs) == BLOCK_SIZE

    def test_live_filtering_hides_tombstoned_docs(self, entries):
        dead = {entries[i][0] for i in range(0, len(entries), 3)}
        live = {d: None for d, _ in entries if d not in dead}
        cursor = build(entries).cursor(live=live)
        seen = []
        doc = cursor.current_doc()
        while doc != CURSOR_DONE:
            seen.append(doc)
            doc = cursor.advance()
        assert seen == sorted(live)
        # next_geq also respects liveness.
        cursor = build(entries).cursor(live=live)
        some_dead = next(iter(sorted(dead)))
        landed = cursor.next_geq(some_dead)
        assert landed in live and landed >= some_dead

    @settings(max_examples=20, deadline=None)
    @given(entry_lists, st.integers(0, 2**16))
    def test_cursor_equivalence_with_list_cursor(self, entries, seed):
        compact = build(entries).cursor()
        listc = ListCursor([Posting(d, p) for d, p in entries])
        rng = random.Random(seed)
        last = 0
        for _ in range(12):
            if rng.random() < 0.5:
                a, b = compact.advance(), listc.advance()
            else:
                last += rng.randint(1, 2 * BLOCK_SIZE)
                a, b = compact.next_geq(last), listc.next_geq(last)
            assert a == b
            if a == CURSOR_DONE:
                break
            assert compact.current_tf() == listc.current_tf()


class TestMergedCursor:
    def test_union_in_doc_order(self):
        a = build([(1, [0]), (5, [0, 1]), (9, [0])]).cursor()
        b = ListCursor([Posting(2, [0]), Posting(7, [0, 1, 2])])
        merged = MergedCursor([a, b])
        seen = []
        doc = merged.current_doc()
        while doc != CURSOR_DONE:
            seen.append((doc, merged.current_tf()))
            doc = merged.advance()
        assert seen == [(1, 1), (2, 1), (5, 2), (7, 3), (9, 1)]

    def test_next_geq(self):
        a = build([(1, [0]), (5, [0]), (9, [0])]).cursor()
        b = ListCursor([Posting(2, [0]), Posting(7, [0])])
        merged = MergedCursor([a, b])
        assert merged.next_geq(6) == 7
        assert merged.next_geq(10) == CURSOR_DONE


class TestCompactIndex:
    @pytest.fixture
    def inverted(self):
        idx = InvertedIndex()
        rng = random.Random(11)
        vocab = ["www", "nii", "telnet", "gopher", "archie"]
        for doc_id in range(1, 40):
            tokens = rng.choices(vocab, k=rng.randint(3, 12))
            idx.add_document(doc_id, tokens)
        return idx

    def test_from_inverted_preserves_statistics(self, inverted):
        compact = CompactIndex.from_inverted(inverted)
        assert compact.document_count == inverted.document_count
        assert compact.token_count == inverted.token_count
        assert compact.posting_count == inverted.posting_count
        assert sorted(compact.terms()) == sorted(inverted.terms())
        for term in inverted.terms():
            assert compact.document_frequency(term) == inverted.document_frequency(term)
            assert compact.collection_frequency(term) == inverted.collection_frequency(
                term
            )
            assert [(p.doc_id, p.positions) for p in compact.postings(term)] == [
                (p.doc_id, p.positions) for p in inverted.postings(term)
            ]
        for doc_id in inverted.document_ids():
            assert compact.document_length(doc_id) == inverted.document_length(doc_id)
            assert compact.document_vector(doc_id) == inverted.document_vector(doc_id)

    def test_payload_cross_load_both_directions(self, inverted):
        compact = CompactIndex.from_inverted(inverted)
        # Compact dump -> dict form.
        back = InvertedIndex.from_payload(compact.to_payload())
        for term in inverted.terms():
            assert [(p.doc_id, p.positions) for p in back.postings(term)] == [
                (p.doc_id, p.positions) for p in inverted.postings(term)
            ]
        # Dict dump -> compact form.
        loaded = CompactIndex.from_payload(inverted.to_payload())
        for term in inverted.terms():
            assert [(p.doc_id, p.positions) for p in loaded.postings(term)] == [
                (p.doc_id, p.positions) for p in inverted.postings(term)
            ]
        assert loaded.document_count == inverted.document_count

    def test_forward_map_matches_vectors(self, inverted):
        compact = CompactIndex.from_inverted(inverted)
        forward = compact.forward_map()
        assert set(forward) == set(inverted.document_ids())
        for doc_id, vector in forward.items():
            assert vector == inverted.document_vector(doc_id)

    def test_postings_bytes_beats_dict_proxy(self, inverted):
        compact = CompactIndex.from_inverted(inverted)
        dict_proxy = 0
        for term in inverted.terms():
            dict_proxy += len(term.encode("utf-8"))
            for p in inverted.postings(term):
                dict_proxy += 8 + 8 * len(p.positions)
        assert compact.postings_bytes() < dict_proxy
