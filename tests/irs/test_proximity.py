"""Proximity operators: #odN / #uwN window matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IRSQuerySyntaxError
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.engine import IRSEngine
from repro.irs.proximity import (
    candidate_documents,
    ordered_window_matches,
    proximity_tf,
    unordered_window_matches,
)
from repro.irs.queries import ProximityNode, TermNode, format_query, parse_irs_query


class TestWindowCounting:
    def test_ordered_adjacent(self):
        # "a b" at positions a:[0], b:[1]
        assert ordered_window_matches([[0], [1]], 1) == 1

    def test_ordered_gap_exceeds_window(self):
        assert ordered_window_matches([[0], [5]], 3) == 0
        assert ordered_window_matches([[0], [5]], 5) == 1

    def test_ordered_wrong_order_never_matches(self):
        assert ordered_window_matches([[5], [0]], 10) == 0

    def test_ordered_counts_combinations(self):
        # a at 0 and 2; b at 1 and 3 -> (0,1) gap 1 and (2,3) gap 1 match;
        # (0,3) has gap 3 > window 2.
        assert ordered_window_matches([[0, 2], [1, 3]], 2) == 2
        assert ordered_window_matches([[0, 2], [1, 3]], 3) == 3

    def test_ordered_three_terms(self):
        assert ordered_window_matches([[0], [1], [2]], 1) == 1
        assert ordered_window_matches([[0], [2], [4]], 1) == 0

    def test_empty_positions(self):
        assert ordered_window_matches([[0], []], 5) == 0
        assert unordered_window_matches([[], [1]], 5) == 0

    def test_unordered_any_order(self):
        assert unordered_window_matches([[1], [0]], 2) == 1
        assert unordered_window_matches([[0], [1]], 2) == 1

    def test_unordered_span_bound(self):
        assert unordered_window_matches([[0], [4]], 4) == 0
        assert unordered_window_matches([[0], [4]], 5) == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=6, unique=True),
        st.lists(st.integers(0, 30), min_size=1, max_size=6, unique=True),
        st.integers(1, 10),
    )
    def test_ordered_subset_of_unordered_window(self, a_positions, b_positions, window):
        ordered = ordered_window_matches([sorted(a_positions), sorted(b_positions)], window)
        # every ordered match (gap <= w) lies in an unordered window of w+1
        unordered = unordered_window_matches(
            [sorted(a_positions), sorted(b_positions)], window + 1
        )
        if ordered > 0:
            assert unordered > 0


@pytest.fixture
def collection():
    c = IRSCollection("prox", Analyzer(stemming=False, stopwords=set()))
    c.add_document("information retrieval systems store documents")     # 1: phrase
    c.add_document("retrieval of information is the core task")         # 2: reversed, distant
    c.add_document("information about retrieval quality and ranking")   # 3: gap 1
    c.add_document("cooking dinner tonight")                            # 4: neither
    return c


class TestProximityTf:
    def test_phrase_matches_adjacent_only(self, collection):
        assert proximity_tf(collection, 1, ["information", "retrieval"], 1, True) == 1
        assert proximity_tf(collection, 2, ["information", "retrieval"], 1, True) == 0
        assert proximity_tf(collection, 3, ["information", "retrieval"], 1, True) == 0

    def test_wider_ordered_window(self, collection):
        assert proximity_tf(collection, 3, ["information", "retrieval"], 2, True) == 1

    def test_unordered_window_catches_reversed(self, collection):
        assert proximity_tf(collection, 2, ["information", "retrieval"], 3, False) == 1

    def test_missing_term_no_match(self, collection):
        assert proximity_tf(collection, 4, ["information", "retrieval"], 9, True) == 0

    def test_candidates_require_all_terms(self, collection):
        assert candidate_documents(collection, ["information", "retrieval"]) == [1, 2, 3]


class TestParsing:
    def test_od_syntax(self):
        node = parse_irs_query("#od1(information retrieval)")
        assert isinstance(node, ProximityNode)
        assert node.ordered and node.window == 1
        assert node.terms() == ["information", "retrieval"]

    def test_uw_syntax(self):
        node = parse_irs_query("#uw5(a b c)")
        assert not node.ordered and node.window == 5
        assert len(node.term_nodes) == 3

    def test_nested_in_operators(self):
        tree = parse_irs_query("#and(#od1(a b) c)")
        assert isinstance(tree.children[0], ProximityNode)

    def test_format_round_trip(self):
        for text in ("#od1(a b)", "#uw7(x y z)", "#and(#od2(a b) c)"):
            assert parse_irs_query(format_query(parse_irs_query(text))) == parse_irs_query(text)

    def test_non_term_operand_rejected(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#od1(#and(a b) c)")

    def test_single_term_rejected(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#od1(a)")

    def test_zero_window_rejected(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#od0(a b)")


class TestRetrieval:
    @pytest.fixture
    def engine(self, collection):
        e = IRSEngine()
        e._collections["prox"] = collection
        return e

    def test_inquery_model_ranks_phrase_first(self, engine):
        result = engine.query("prox", "#od1(information retrieval)")
        assert set(result.values) == {1}

    def test_uw_retrieves_all_cooccurrences(self, engine):
        result = engine.query("prox", "#uw6(information retrieval)")
        assert set(result.values) >= {1, 3}

    def test_boolean_model_proximity(self, engine):
        result = engine.query("prox", "#od1(information retrieval)", model="boolean")
        assert set(result.values) == {1}

    def test_vector_model_degrades_to_bag(self, engine):
        result = engine.query("prox", "#od1(information retrieval)", model="vector")
        assert set(result.values) == {1, 2, 3}

    def test_phrase_beats_loose_cooccurrence_in_belief(self, engine):
        phrase = engine.query("prox", "#od1(information retrieval)").values
        loose = engine.query("prox", "#uw9(information retrieval)").values
        assert phrase[1] >= loose[3]

    def test_proximity_in_coupled_queries(self, mmf_system, para_collection):
        from repro.core.collection import _get_irs_result

        values = _get_irs_result(para_collection, "#od2(remote login)")
        classes = {mmf_system.db.get_object(oid).class_name for oid in values}
        assert classes <= {"PARA"}
        assert values  # "protocol for remote login" matches
