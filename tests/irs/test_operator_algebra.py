"""Belief operator algebra: INQUERY semantics + hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.irs.models import operators as ops

_belief = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_beliefs = st.lists(_belief, min_size=1, max_size=6)


class TestPointValues:
    def test_and_is_product(self):
        assert ops.op_and([0.5, 0.5]) == pytest.approx(0.25)

    def test_or_complement_product(self):
        assert ops.op_or([0.5, 0.5]) == pytest.approx(0.75)

    def test_not_complement(self):
        assert ops.op_not(0.3) == pytest.approx(0.7)

    def test_sum_is_mean(self):
        assert ops.op_sum([0.2, 0.4, 0.6]) == pytest.approx(0.4)

    def test_sum_of_empty_is_zero(self):
        assert ops.op_sum([]) == 0.0

    def test_max(self):
        assert ops.op_max([0.2, 0.9, 0.4]) == pytest.approx(0.9)

    def test_max_of_empty_is_zero(self):
        assert ops.op_max([]) == 0.0

    def test_wsum_weighted_mean(self):
        assert ops.op_wsum([2, 1], [0.9, 0.3]) == pytest.approx((1.8 + 0.3) / 3)

    def test_wsum_zero_weights(self):
        assert ops.op_wsum([0, 0], [0.9, 0.3]) == 0.0

    def test_wsum_length_mismatch(self):
        with pytest.raises(ValueError):
            ops.op_wsum([1], [0.5, 0.5])


class TestAlgebraicProperties:
    @given(_beliefs)
    def test_all_in_unit_interval(self, beliefs):
        for combine in (ops.op_and, ops.op_or, ops.op_sum, ops.op_max):
            assert 0.0 <= combine(beliefs) <= 1.0

    @given(_belief)
    def test_not_is_involution(self, belief):
        assert ops.op_not(ops.op_not(belief)) == pytest.approx(belief)

    @given(_beliefs)
    def test_and_below_min_or_above_max(self, beliefs):
        assert ops.op_and(beliefs) <= min(beliefs) + 1e-12
        assert ops.op_or(beliefs) >= max(beliefs) - 1e-12

    @given(_beliefs)
    def test_sum_between_min_and_max(self, beliefs):
        assert min(beliefs) - 1e-12 <= ops.op_sum(beliefs) <= max(beliefs) + 1e-12

    @given(_belief)
    def test_singletons_are_identity(self, belief):
        for combine in (ops.op_and, ops.op_or, ops.op_sum, ops.op_max):
            assert combine([belief]) == pytest.approx(belief)

    @given(_beliefs)
    def test_de_morgan(self, beliefs):
        # not(and(b)) == or(not(b_i)) under the product algebra
        left = ops.op_not(ops.op_and(beliefs))
        right = ops.op_or([ops.op_not(b) for b in beliefs])
        assert left == pytest.approx(right)

    @given(_beliefs, _belief)
    def test_and_monotone_in_each_argument(self, beliefs, extra):
        base = ops.op_and(beliefs)
        assert ops.op_and(beliefs + [extra]) <= base + 1e-12

    @given(_beliefs)
    def test_wsum_with_equal_weights_is_sum(self, beliefs):
        weights = [1.0] * len(beliefs)
        assert ops.op_wsum(weights, beliefs) == pytest.approx(ops.op_sum(beliefs))
