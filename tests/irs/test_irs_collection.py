"""IRS collections: document management, metadata, persistence payloads."""

import pytest

from repro.errors import DocumentMissingError
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection


@pytest.fixture
def collection():
    c = IRSCollection("paras", Analyzer(stemming=False))
    c.add_document("www browser here", {"oid": "OID1"})
    c.add_document("nii policy there", {"oid": "OID2"})
    return c


class TestDocuments:
    def test_add_assigns_increasing_ids(self, collection):
        doc_id = collection.add_document("more text")
        assert doc_id == 3
        assert len(collection) == 3

    def test_document_lookup(self, collection):
        doc = collection.document(1)
        assert doc.metadata["oid"] == "OID1"
        assert "www" in doc.text

    def test_missing_document_raises(self, collection):
        with pytest.raises(DocumentMissingError):
            collection.document(99)

    def test_remove(self, collection):
        collection.remove_document(1)
        assert 1 not in collection
        assert collection.index.document_frequency("www") == 0

    def test_remove_missing_raises(self, collection):
        with pytest.raises(DocumentMissingError):
            collection.remove_document(99)

    def test_replace_reindexes(self, collection):
        collection.replace_document(1, "telnet protocol")
        assert collection.index.document_frequency("www") == 0
        assert collection.index.document_frequency("telnet") == 1
        assert collection.document(1).metadata["oid"] == "OID1"  # kept

    def test_ids_not_reused_after_removal(self, collection):
        collection.remove_document(2)
        assert collection.add_document("x") == 3


class TestMetadata:
    def test_find_by_metadata(self, collection):
        assert collection.find_by_metadata("oid", "OID2") == [2]
        assert collection.find_by_metadata("oid", "nope") == []

    def test_metadata_copied_on_add(self, collection):
        metadata = {"oid": "OID9"}
        collection.add_document("t", metadata)
        metadata["oid"] = "changed"
        assert collection.document(3).metadata["oid"] == "OID9"


class TestSizes:
    def test_text_bytes(self, collection):
        assert collection.text_bytes() == len("www browser here") + len("nii policy there")

    def test_indexed_bytes_positive(self, collection):
        assert collection.indexed_bytes() > 0

    def test_indexed_bytes_grows_with_documents(self, collection):
        before = collection.indexed_bytes()
        collection.add_document("completely new words appear")
        assert collection.indexed_bytes() > before


class TestPayload:
    def test_round_trip(self, collection):
        payload = collection.to_payload()
        restored = IRSCollection.from_payload(payload, Analyzer(stemming=False))
        assert len(restored) == len(collection)
        assert restored.document(1).text == collection.document(1).text
        assert restored.index.document_frequency("www") == 1
        # new additions continue the id sequence
        assert restored.add_document("next") == 3
