"""Statistics cache: epoch invalidation under interleaved updates/queries.

The fast scoring path reads ``df``, ``avg_dl``, document norms, and
document-id sets through :class:`repro.irs.statistics.StatisticsCache`.
These tests interleave add/remove/replace with cached reads and assert the
cache never serves a value the index does not currently agree with.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.inverted_index import InvertedIndex
from repro.irs.statistics import StatisticsCache

VOCAB = ["www", "nii", "web", "policy", "browser", "telnet"]


def fresh_expected_norm(index, doc_id):
    n_docs = index.document_count
    total = 0.0
    for term, tf in index.document_vector(doc_id).items():
        idf = math.log(1.0 + n_docs / index.document_frequency(term))
        w = (1.0 + math.log(tf)) * idf
        total += w * w
    return math.sqrt(total)


class TestEpoch:
    def test_epoch_bumps_on_mutation(self):
        index = InvertedIndex()
        e0 = index.epoch
        index.add_document(1, ["www"])
        e1 = index.epoch
        assert e1 > e0
        index.remove_document(1)
        assert index.epoch > e1

    def test_running_counters_match_recomputation(self):
        index = InvertedIndex()
        index.add_document(1, ["www", "www", "nii"])
        index.add_document(2, ["nii", "web"])
        assert index.token_count == 5
        assert index.posting_count == 4
        assert index.collection_frequency("www") == 2
        index.remove_document(1)
        assert index.token_count == 2
        assert index.posting_count == 2
        assert index.collection_frequency("www") == 0
        assert index.collection_frequency("nii") == 1

    def test_from_payload_rebuilds_counters(self):
        index = InvertedIndex()
        index.add_document(1, ["www", "www", "nii"])
        index.add_document(2, ["policy"])
        restored = InvertedIndex.from_payload(index.to_payload())
        assert restored.token_count == index.token_count
        assert restored.posting_count == index.posting_count
        assert restored.collection_frequency("www") == 2

    def test_sorted_postings_stay_fresh_after_out_of_order_adds(self):
        index = InvertedIndex()
        index.add_document(5, ["www"])
        assert [p.doc_id for p in index.postings("www")] == [5]
        index.add_document(2, ["www"])  # earlier doc id after the cache filled
        assert [p.doc_id for p in index.postings("www")] == [2, 5]


class TestCacheInvalidation:
    def test_avg_dl_tracks_updates(self):
        collection = IRSCollection("c", Analyzer(stemming=False, stopwords=set()))
        cache = collection.stats
        collection.add_document("www nii")
        assert cache.average_document_length == pytest.approx(2.0)
        collection.add_document("www nii web policy")
        assert cache.average_document_length == pytest.approx(3.0)

    def test_df_and_doc_sets_track_removal(self):
        collection = IRSCollection("c", Analyzer(stemming=False, stopwords=set()))
        d1 = collection.add_document("www nii")
        collection.add_document("www web")
        assert collection.stats.document_frequency("www") == 2
        assert collection.stats.doc_id_set("www") == {d1, d1 + 1}
        collection.remove_document(d1)
        assert collection.stats.document_frequency("www") == 1
        assert collection.stats.doc_id_set("www") == {d1 + 1}
        assert collection.stats.doc_id_set("nii") == frozenset()

    def test_idf_recomputed_after_growth(self):
        collection = IRSCollection("c", Analyzer(stemming=False, stopwords=set()))
        collection.add_document("www")
        stale = collection.stats.idf("www")
        for _ in range(9):
            collection.add_document("filler words only")
        fresh = collection.stats.idf("www")
        assert fresh != stale
        assert fresh == pytest.approx(math.log(1.0 + 10 / 1))

    def test_norms_recomputed_after_replace(self):
        collection = IRSCollection("c", Analyzer(stemming=False, stopwords=set()))
        doc = collection.add_document("www www nii")
        before = collection.stats.document_norm(doc)
        collection.replace_document(doc, "policy")
        after = collection.stats.document_norm(doc)
        assert after != before
        assert after == pytest.approx(fresh_expected_norm(collection.index, doc))

    def test_stats_cache_survives_index_swap(self):
        collection = IRSCollection("c", Analyzer(stemming=False, stopwords=set()))
        collection.add_document("www")
        assert collection.stats.document_frequency("www") == 1
        restored = IRSCollection.from_payload(
            collection.to_payload(), Analyzer(stemming=False, stopwords=set())
        )
        # The restored collection has a different index object; the stats
        # property must rebind instead of reading through the stale cache.
        assert restored.stats.document_frequency("www") == 1
        assert restored.stats.index is restored.index


@st.composite
def _operations(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "replace", "query"]),
                st.lists(st.sampled_from(VOCAB), min_size=1, max_size=8),
            ),
            min_size=1,
            max_size=25,
        )
    )


class TestInterleavedProperty:
    @settings(max_examples=40, deadline=None)
    @given(_operations())
    def test_cache_never_stale(self, operations):
        collection = IRSCollection("p", Analyzer(stemming=False, stopwords=set()))
        cache = collection.stats
        live = []  # doc ids currently in the collection
        for op, terms in operations:
            if op == "add" or (op in ("remove", "replace") and not live):
                live.append(collection.add_document(" ".join(terms)))
            elif op == "remove":
                collection.remove_document(live.pop(0))
            elif op == "replace":
                collection.replace_document(live[0], " ".join(terms))
            index = collection.index
            # Every cached statistic must agree with a from-scratch read.
            if index.document_count:
                expected_avg = index.token_count / index.document_count
                assert cache.average_document_length == pytest.approx(expected_avg)
            for term in VOCAB:
                assert cache.document_frequency(term) == index.document_frequency(term)
                assert cache.doc_id_set(term) == {
                    p.doc_id for p in index.postings(term)
                }
                if index.document_frequency(term):
                    assert cache.idf(term) == pytest.approx(
                        math.log(1.0 + index.document_count / index.document_frequency(term))
                    )
            for doc_id in live:
                assert cache.document_norm(doc_id) == pytest.approx(
                    fresh_expected_norm(index, doc_id)
                )

    @settings(max_examples=25, deadline=None)
    @given(_operations())
    def test_standalone_cache_matches_fresh_cache(self, operations):
        """A long-lived cache equals a cache built after all the updates."""
        index = InvertedIndex()
        cache = StatisticsCache(index)
        next_id = 1
        live = []
        for op, terms in operations:
            if op in ("add", "replace", "query") or not live:
                index.add_document(next_id, terms)
                live.append(next_id)
                next_id += 1
            else:
                index.remove_document(live.pop(0))
            cache.average_document_length  # touch: force memo fill
            cache.doc_id_set(terms[0])
        fresh = StatisticsCache(index)
        assert cache.average_document_length == fresh.average_document_length
        for term in VOCAB:
            assert cache.idf(term) == fresh.idf(term)
            assert cache.inquery_idf(term) == fresh.inquery_idf(term)
            assert cache.doc_id_set(term) == fresh.doc_id_set(term)
        for doc_id in live:
            assert cache.document_norm(doc_id) == fresh.document_norm(doc_id)
