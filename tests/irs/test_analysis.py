"""Analysis pipeline: tokenization, stopwords, stemming."""

from repro.irs.analysis import DEFAULT_STOPWORDS, Analyzer


class TestTokenization:
    def test_lowercases(self):
        assert Analyzer(stemming=False).tokens("WWW Browser") == ["www", "browser"]

    def test_punctuation_splits(self):
        tokens = Analyzer(stemming=False).tokens("client-server, really!")
        assert tokens == ["client", "server", "really"]

    def test_numbers_kept(self):
        assert "1994" in Analyzer(stemming=False).tokens("in 1994 we")

    def test_empty_text(self):
        assert Analyzer().tokens("") == []
        assert Analyzer().tokens("   \n\t ") == []


class TestStopwords:
    def test_default_stopwords_removed(self):
        tokens = Analyzer(stemming=False).tokens("the web is a system")
        assert "the" not in tokens
        assert "is" not in tokens
        assert "web" in tokens

    def test_custom_stopword_set(self):
        analyzer = Analyzer(stopwords={"web"}, stemming=False)
        assert analyzer.tokens("the web") == ["the"]

    def test_empty_stopword_set_keeps_all(self):
        analyzer = Analyzer(stopwords=set(), stemming=False)
        assert analyzer.tokens("the web") == ["the", "web"]

    def test_default_list_is_frozen(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)


class TestStemming:
    def test_stemming_applied(self):
        assert Analyzer().tokens("retrieving documents") == ["retriev", "document"]

    def test_stemming_disabled(self):
        assert Analyzer(stemming=False).tokens("retrieving") == ["retrieving"]

    def test_query_and_index_agree(self):
        analyzer = Analyzer()
        assert analyzer.term("Retrieval") == analyzer.tokens("retrieval systems")[0]


class TestTerm:
    def test_single_term(self):
        assert Analyzer(stemming=False).term("WWW") == "www"

    def test_stopped_term_is_none(self):
        assert Analyzer().term("the") is None

    def test_min_length_filter(self):
        analyzer = Analyzer(stemming=False, min_length=3, stopwords=set())
        assert analyzer.tokens("go web now") == ["web", "now"]

    def test_config_serializable(self):
        config = Analyzer().config()
        assert config["stemming"] is True
        assert config["stopword_count"] > 0
