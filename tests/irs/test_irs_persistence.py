"""IRS persistence: engines round-trip through the filesystem."""

import os

from repro.irs.engine import IRSEngine
from repro.irs.persistence import load_engine, save_engine


def build_engine():
    engine = IRSEngine()
    engine.create_collection("paras")
    engine.index_document("paras", "the www grows daily", {"oid": "OID1"})
    engine.index_document("paras", "nii debates continue", {"oid": "OID2"})
    engine.create_collection("chapters")
    engine.index_document("chapters", "full chapter about www and nii", {"oid": "OID3"})
    return engine


class TestSaveLoad:
    def test_collections_restored(self, tmp_path):
        engine = build_engine()
        save_engine(engine, str(tmp_path))
        restored = load_engine(str(tmp_path))
        assert restored.collection_names() == ["chapters", "paras"]
        assert len(restored.collection("paras")) == 2

    def test_query_results_identical(self, tmp_path):
        engine = build_engine()
        save_engine(engine, str(tmp_path))
        restored = load_engine(str(tmp_path))
        assert restored.query("paras", "www").values == engine.query("paras", "www").values

    def test_metadata_restored(self, tmp_path):
        engine = build_engine()
        save_engine(engine, str(tmp_path))
        restored = load_engine(str(tmp_path))
        assert restored.collection("paras").document(1).metadata["oid"] == "OID1"

    def test_load_missing_directory_yields_empty_engine(self, tmp_path):
        restored = load_engine(str(tmp_path / "nothing"))
        assert restored.collection_names() == []

    def test_save_is_atomic_per_file(self, tmp_path):
        engine = build_engine()
        save_engine(engine, str(tmp_path))
        files = os.listdir(str(tmp_path))
        assert "collections.json" in files
        assert not [f for f in files if f.endswith(".tmp")]

    def test_resave_overwrites(self, tmp_path):
        engine = build_engine()
        save_engine(engine, str(tmp_path))
        engine.index_document("paras", "third document", {"oid": "OID9"})
        save_engine(engine, str(tmp_path))
        restored = load_engine(str(tmp_path))
        assert len(restored.collection("paras")) == 3

    def test_odd_collection_names_safe(self, tmp_path):
        engine = IRSEngine()
        engine.create_collection("my coll/2!")
        engine.index_document("my coll/2!", "text www", {})
        save_engine(engine, str(tmp_path))
        restored = load_engine(str(tmp_path))
        assert restored.has_collection("my coll/2!")
