"""Hierarchical scoring: one leaf index answers every level exactly."""

import pytest

from repro.core.collection import _get_irs_result
from repro.core.granularity import document_level, element_type, leaf_level
from repro.core.hierarchical import (
    derive_hierarchical_exact,
    hierarchical_result,
    invalidate_scorer,
    scorer_for,
)


@pytest.fixture
def setup(corpus_system):
    leaf = leaf_level().build(corpus_system.db)
    return corpus_system, leaf


class TestAggregation:
    def test_subtree_tf_sums_leaves(self, setup):
        system, leaf = setup
        scorer = scorer_for(leaf)
        doc = system.db.instances_of("MMFDOC")[0]
        leaf_tf = sum(
            scorer.subtree_tf("www", para)
            for para in doc.send("getDescendants")
            if para.send("isLeaf")
        )
        assert scorer.subtree_tf("www", doc) == leaf_tf

    def test_subtree_length_sums_leaves(self, setup):
        system, leaf = setup
        scorer = scorer_for(leaf)
        doc = system.db.instances_of("MMFDOC")[0]
        total = sum(
            scorer.subtree_length(element)
            for element in doc.send("getDescendants")
            if element.send("isLeaf")
        )
        assert scorer.subtree_length(doc) == total

    def test_stopped_term_zero(self, setup):
        _system, leaf = setup
        scorer = scorer_for(leaf)
        doc = _system.db.instances_of("MMFDOC")[0]
        assert scorer.subtree_tf("the", doc) == 0


class TestExactness:
    @pytest.mark.parametrize("query", ["www", "#and(www nii)", "#or(telnet database)"])
    def test_matches_direct_document_index(self, setup, query):
        system, leaf = setup
        direct = document_level().build(system.db, collection_name=f"direct_{hash(query) % 1000}")
        expected = _get_irs_result(direct, query)
        got = hierarchical_result(leaf, query, "MMFDOC")
        assert set(got) == set(expected)
        for oid, value in expected.items():
            assert got[oid] == pytest.approx(value, abs=1e-12)

    def test_matches_direct_paragraph_index(self, setup):
        system, leaf = setup
        direct = element_type("PARA").build(system.db, collection_name="direct_para")
        expected = _get_irs_result(direct, "www")
        got = hierarchical_result(leaf, "www", "PARA")
        for oid, value in expected.items():
            assert got[oid] == pytest.approx(value, abs=1e-12)

    def test_storage_is_leaf_only(self, setup):
        system, leaf = setup
        from repro.core.granularity import all_elements

        full = all_elements().build(system.db, collection_name="full_cmp")
        leaf_bytes = scorer_for(leaf).storage_bytes()
        full_bytes = system.engine.collection(full.get("irs_name")).indexed_bytes()
        assert leaf_bytes < full_bytes / 1.5


class TestDerivationScheme:
    def test_scheme_registered(self):
        from repro.core.derivation import known_schemes

        assert "hierarchical_exact" in known_schemes()

    def test_find_irs_value_uses_exact_derivation(self, setup):
        system, leaf = setup
        leaf.set("derivation", "hierarchical_exact")
        doc = system.db.instances_of("MMFDOC")[0]
        derived = leaf.send("findIRSValue", "www", doc)
        direct = document_level().build(system.db, collection_name="direct_fiv")
        expected = _get_irs_result(direct, "www").get(doc.oid, 0.0)
        if expected:
            assert derived == pytest.approx(expected, abs=1e-12)

    def test_derive_on_leaf_is_its_own_value(self, setup):
        system, leaf = setup
        para = system.db.instances_of("PARA")[0]
        value = derive_hierarchical_exact(leaf, "www", para)
        assert 0.0 <= value <= 1.0


class TestCaching:
    def test_scorer_cached_per_collection(self, setup):
        _system, leaf = setup
        assert scorer_for(leaf) is scorer_for(leaf)

    def test_invalidate_drops_cache(self, setup):
        _system, leaf = setup
        first = scorer_for(leaf)
        invalidate_scorer(leaf)
        assert scorer_for(leaf) is not first

    def test_level_stats_cached(self, setup):
        system, leaf = setup
        scorer = scorer_for(leaf)
        scorer._stats_for_level("MMFDOC", "www")
        assert ("MMFDOC", "www") in scorer._level_stats
        # A second call answers from the cache (same object identity check
        # is not possible on tuples; verify no recomputation by count).
        n_docs, df = scorer._stats_for_level("MMFDOC", "www")
        assert n_docs == len(system.db.instances_of("MMFDOC"))
        assert 0 <= df <= n_docs


class TestStalenessInvalidation:
    def test_update_propagation_invalidates_scorer(self, setup):
        system, leaf = setup
        scorer = scorer_for(leaf)
        # Add a paragraph containing a new word and propagate through the
        # collection's update methods.
        root = system.roots[0]
        para = system.loader.insert_element(root, "PARA", "zeppelin sightings increase")
        leaf.send("insertObject", para)
        leaf.send("propagateUpdates")
        fresh = scorer_for(leaf)
        assert fresh is not scorer  # cache dropped
        doc = para.send("getContaining", "MMFDOC")
        assert fresh.subtree_tf("zeppelin", doc) > 0

    def test_reindex_invalidates_scorer(self, setup):
        system, leaf = setup
        scorer = scorer_for(leaf)
        from repro.core.collection import index_objects

        index_objects(leaf)
        assert scorer_for(leaf) is not scorer
