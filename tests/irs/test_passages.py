"""Passage retrieval ([SAB93]) and the passage derivation scheme."""

import pytest

from repro.core import DocumentSystem
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.passages import Passage, PassageScorer
from repro.workloads.figure4 import load_figure4, rank_documents


@pytest.fixture
def scorer():
    collection = IRSCollection("bg", Analyzer(stemming=False))
    collection.add_document("www hypertext pages grow")
    collection.add_document("nii policy funding national")
    collection.add_document("general report text material")
    return PassageScorer(collection, window=6, stride=3)


class TestWindows:
    def test_window_geometry(self, scorer):
        text = " ".join(f"word{i}" for i in range(12))
        passages = scorer.passages(text, "word0")
        # tokens: 12, window 6, stride 3 -> starts 0,3,6 (end hits len at 6+6)
        assert [(p.start, p.end) for p in passages] == [(0, 6), (3, 9), (6, 12)]

    def test_short_text_single_window(self, scorer):
        passages = scorer.passages("www pages", "www")
        assert len(passages) == 1
        assert passages[0].end == 2

    def test_empty_text_no_passages(self, scorer):
        assert scorer.passages("", "www") == []
        assert scorer.best_passage("", "www") is None
        assert scorer.best_score("", "www") == 0.0

    def test_invalid_geometry(self):
        collection = IRSCollection("x")
        with pytest.raises(ValueError):
            PassageScorer(collection, window=0)
        with pytest.raises(ValueError):
            PassageScorer(collection, stride=0)

    def test_passage_len(self):
        assert len(Passage(3, 9, 0.5)) == 6


class TestScoring:
    def test_best_passage_finds_local_cooccurrence(self, scorer):
        # both terms close together in the middle of a long text
        filler = " ".join(["filler"] * 10)
        text = f"{filler} www nii together here {filler}"
        best = scorer.best_passage(text, "#and(www nii)")
        assert best is not None
        assert best.start >= 6  # the window containing the middle

    def test_spread_terms_score_lower_than_close_terms(self, scorer):
        close = "www nii " + " ".join(["pad"] * 20)
        spread = "www " + " ".join(["pad"] * 20) + " nii"
        assert scorer.best_score(close, "#and(www nii)") > scorer.best_score(
            spread, "#and(www nii)"
        )

    def test_scores_bounded(self, scorer):
        score = scorer.best_score("www www www nii nii nii", "#and(www nii)")
        assert 0.0 < score <= 1.0

    def test_unknown_term_treated_as_discriminative(self, scorer):
        score = scorer.best_score("zeppelin flies high", "zeppelin")
        assert score > 0.4

    def test_operator_queries(self, scorer):
        text = "www hypertext but no other topic"
        assert scorer.best_score(text, "#or(www nii)") > scorer.best_score(
            text, "#and(www nii)"
        )


class TestPassageDerivation:
    @pytest.fixture(scope="class")
    def figure4(self):
        system = DocumentSystem()
        setup = load_figure4(system)
        return setup

    def test_scheme_registered(self):
        from repro.core.derivation import known_schemes

        assert "passage" in known_schemes()

    def test_full_intuitive_order_on_figure4(self, figure4):
        """Passage retrieval yields M2 > M3 > M4 > M1 — the paper's Section 6
        intuition that the passage paradigm suits the derivation problem."""
        ranking = rank_documents(
            figure4["roots"], figure4["collection"], "#and(WWW NII)", "passage"
        )
        assert [name for name, _v in ranking] == ["M2", "M3", "M4", "M1"]

    def test_values_strictly_ordered(self, figure4):
        ranking = dict(
            rank_documents(
                figure4["roots"], figure4["collection"], "#and(WWW NII)", "passage"
            )
        )
        assert ranking["M2"] > ranking["M3"] > ranking["M4"] > ranking["M1"]
