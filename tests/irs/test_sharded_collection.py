"""Unit coverage for the sharded collection: routing, the union view,
payload cross-loading, engine/system wiring, and the health section.

The *equivalence* guarantees live in ``tests/property/test_shard_equivalence``
and the worker-fault behavior in ``tests/irs/test_shard_faults``; this file
pins the structural contracts those suites build on.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import DocumentSystem
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.engine import IRSEngine
from repro.irs.persistence import load_engine, save_engine
from repro.irs.segments import SegmentConfig
from repro.irs.shards import (
    ShardedCollection,
    routing_key,
    shard_of,
)

TEXTS = [
    "www nii telnet",
    "telnet remote login",
    "nii policy pages",
    "www pages database",
    "database information retrieval",
    "telnet www nii remote",
    "information pages",
    "retrieval www",
]


def populated(shard_count=3, segment_config=None):
    collection = ShardedCollection(
        "c", Analyzer(), segment_config=segment_config, shard_count=shard_count
    )
    for i, text in enumerate(TEXTS):
        collection.add_document(text, {"oid": f"1.{i}"})
    return collection


class TestRouting:
    def test_shard_of_is_deterministic_and_in_range(self):
        for key in ("1.17", "doc:42", "anything"):
            first = shard_of(key, 7)
            assert 0 <= first < 7
            assert shard_of(key, 7) == first

    def test_single_shard_takes_everything(self):
        assert shard_of("whatever", 1) == 0
        assert shard_of("other", 0) == 0

    def test_routing_key_prefers_oid(self):
        assert routing_key({"oid": "1.5"}, 9) == "1.5"
        assert routing_key({}, 9) == "doc:9"
        assert routing_key({"other": "x"}, 9) == "doc:9"

    def test_documents_land_on_their_routed_shard(self):
        collection = populated()
        for doc_id in sorted(collection._documents):
            document = collection._documents[doc_id]
            expected = shard_of(
                routing_key(document.metadata, doc_id), collection.shard_count
            )
            assert collection.shard_index_of(doc_id) == expected
            assert doc_id in collection.shards[expected]._documents

    def test_replace_keeps_the_document_on_its_shard(self):
        collection = populated()
        doc_id = 3
        before = collection.shard_index_of(doc_id)
        collection.replace_document(doc_id, "totally new text")
        assert collection.shard_index_of(doc_id) == before
        assert collection._documents[doc_id].text == "totally new text"

    def test_remove_clears_the_shard_assignment(self):
        collection = populated()
        collection.remove_document(2)
        assert 2 not in collection._documents
        assert collection.shard_index_of(2) is None
        assert collection.shard_for(2) is None

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardedCollection("bad", shard_count=0)


class TestUnionView:
    def test_statistics_are_sums_over_shards(self):
        collection = populated()
        reference = IRSCollection("ref", collection.analyzer)
        for i, text in enumerate(TEXTS):
            reference.add_document(text, {"oid": f"1.{i}"})
        view, mono = collection.index, reference.index
        assert view.document_count == mono.document_count
        assert view.token_count == mono.token_count
        assert sorted(view.terms()) == sorted(mono.terms())
        for term in mono.terms():
            assert view.document_frequency(term) == mono.document_frequency(term)
            assert view.collection_frequency(term) == mono.collection_frequency(term)

    def test_postings_are_merged_in_doc_id_order(self):
        collection = populated()
        for term in collection.index.terms():
            doc_ids = [p.doc_id for p in collection.index.postings(term)]
            assert doc_ids == sorted(doc_ids)

    def test_per_document_reads_route_to_the_owning_shard(self):
        collection = populated()
        for doc_id in sorted(collection._documents):
            assert collection.index.has_document(doc_id)
            shard = collection.shard_for(doc_id)
            assert collection.index.document_length(
                doc_id
            ) == shard.index.document_length(doc_id)

    def test_view_rejects_direct_writes(self):
        collection = populated()
        with pytest.raises(TypeError):
            collection.index.add_document(99, ["x"])
        with pytest.raises(TypeError):
            collection.index.remove_document(1)

    def test_epoch_strictly_increases_on_any_shard_write(self):
        collection = populated()
        before = collection.index.epoch
        collection.add_document("fresh words")
        assert collection.index.epoch > before

    def test_skew_stays_reasonable_under_hash_routing(self):
        collection = ShardedCollection("skew", Analyzer(), shard_count=4)
        for i in range(400):
            collection.add_document(f"doc {i}", {"oid": f"1.{i}"})
        counts = collection.shard_document_counts()
        assert sum(counts) == 400
        mean = sum(counts) / len(counts)
        assert max(counts) / mean < 1.5


class TestPayloadCrossLoading:
    def test_sharded_round_trip_is_identical(self):
        collection = populated()
        clone = ShardedCollection.from_payload(
            collection.to_payload(), Analyzer()
        )
        assert clone.shard_count == collection.shard_count
        assert clone.index.to_payload() == collection.index.to_payload()
        assert {
            d: clone.shard_index_of(d) for d in sorted(clone._documents)
        } == {
            d: collection.shard_index_of(d)
            for d in sorted(collection._documents)
        }

    def test_sharded_dump_flattens_into_plain_collection(self):
        collection = populated()
        flat = IRSCollection.from_payload(collection.to_payload(), Analyzer())
        assert len(flat) == len(collection)
        assert flat.index.document_count == collection.index.document_count
        for term in collection.index.terms():
            assert flat.index.document_frequency(
                term
            ) == collection.index.document_frequency(term)

    def test_plain_dump_repartitions_into_shards(self):
        plain = IRSCollection("c", Analyzer())
        for i, text in enumerate(TEXTS):
            plain.add_document(text, {"oid": f"1.{i}"})
        sharded = ShardedCollection.from_payload(
            plain.to_payload(), Analyzer(), shard_count=3
        )
        assert sharded.shard_count == 3
        assert len(sharded) == len(plain)
        for term in plain.index.terms():
            assert sharded.index.document_frequency(
                term
            ) == plain.index.document_frequency(term)

    def test_shard_count_change_repartitions(self):
        collection = populated(shard_count=3)
        resharded = ShardedCollection.from_payload(
            collection.to_payload(), Analyzer(), shard_count=5
        )
        assert resharded.shard_count == 5
        assert resharded.index.document_count == collection.index.document_count
        # Every document sits on the shard its routing key selects.
        for doc_id in sorted(resharded._documents):
            document = resharded._documents[doc_id]
            assert resharded.shard_index_of(doc_id) == shard_of(
                routing_key(document.metadata, doc_id), 5
            )

    def test_segmented_shards_round_trip(self):
        collection = populated(
            segment_config=SegmentConfig(seal_document_count=2)
        )
        clone = ShardedCollection.from_payload(
            collection.to_payload(),
            Analyzer(),
            segment_config=SegmentConfig(seal_document_count=2),
        )
        assert clone.index.to_payload() == collection.index.to_payload()


class TestPersistence:
    def _sharded_engine(self):
        engine = IRSEngine(shard_count=3)
        engine.create_collection("c")
        for text in TEXTS:
            engine.index_document("c", text)
        return engine

    def test_directory_layout_and_round_trip(self, tmp_path):
        engine = self._sharded_engine()
        save_engine(engine, str(tmp_path))
        shard_dir = tmp_path / "collection_c"
        assert (shard_dir / "meta.json").exists()
        assert (shard_dir / "shard_0002.json").exists()
        meta = json.loads((shard_dir / "meta.json").read_text())
        assert meta["shard_count"] == 3 and "shards" not in meta
        reloaded = load_engine(str(tmp_path), shard_count=3)
        original = engine.collection("c")
        clone = reloaded.collection("c")
        assert clone.shard_count == 3
        assert clone.index.to_payload() == original.index.to_payload()

    def test_sharded_store_loads_into_unsharded_engine(self, tmp_path):
        engine = self._sharded_engine()
        reference = engine.query("c", "www nii", top_k=4).values
        save_engine(engine, str(tmp_path))
        flat_engine = load_engine(str(tmp_path))  # shard_count=0
        flat = flat_engine.collection("c")
        assert not getattr(flat, "shards", None)
        assert flat_engine.query("c", "www nii", top_k=4).values == reference

    def test_unsharded_store_loads_into_sharded_engine(self, tmp_path):
        engine = IRSEngine()
        engine.create_collection("c")
        for text in TEXTS:
            engine.index_document("c", text)
        reference = engine.query("c", "www nii", top_k=4).values
        save_engine(engine, str(tmp_path))
        sharded_engine = load_engine(str(tmp_path), shard_count=4)
        assert sharded_engine.collection("c").shard_count == 4
        assert sharded_engine.query("c", "www nii", top_k=4).values == reference

    def test_layout_switch_removes_the_stale_representation(self, tmp_path):
        engine = self._sharded_engine()
        save_engine(engine, str(tmp_path))
        assert (tmp_path / "collection_c").is_dir()
        flat_engine = load_engine(str(tmp_path))
        save_engine(flat_engine, str(tmp_path))
        assert (tmp_path / "collection_c.json").exists()
        assert not (tmp_path / "collection_c").exists()
        save_engine(self._sharded_engine(), str(tmp_path))
        assert (tmp_path / "collection_c").is_dir()
        assert not os.path.exists(tmp_path / "collection_c.json")


class TestEngineWiring:
    def test_per_collection_shard_override(self):
        engine = IRSEngine(shard_count=2)
        defaulted = engine.create_collection("defaulted")
        overridden = engine.create_collection("overridden", shards=5)
        unsharded = engine.create_collection("unsharded", shards=0)
        assert defaulted.shard_count == 2
        assert overridden.shard_count == 5
        assert not getattr(unsharded, "shards", None)

    def test_shard_info_reports_layout_and_skew(self):
        engine = IRSEngine(shard_count=2)
        engine.create_collection("c")
        for text in TEXTS:
            engine.index_document("c", text)
        info = engine.shard_info()
        assert info["c"]["shards"] == 2
        assert sum(info["c"]["documents"]) == len(TEXTS)
        assert info["c"]["skew"] >= 1.0

    def test_segment_info_lists_each_shard_manager(self):
        engine = IRSEngine(
            shard_count=2, segment_config=SegmentConfig(seal_document_count=2)
        )
        engine.create_collection("c")
        for text in TEXTS:
            engine.index_document("c", text)
        names = set(engine.segment_info())
        assert {"c#0", "c#1"} <= names


class TestSystemWiring:
    def test_open_session_with_shards_attaches_the_executor(self):
        system = DocumentSystem(shards=2)
        try:
            assert system.engine.shard_executor is None
            session = system.open_session(shards=2)
            assert session is not None
            assert system.engine.shard_executor is not None
        finally:
            system.close()
        assert system.engine.shard_executor is None

    def test_health_includes_the_shards_section(self):
        system = DocumentSystem(shards=2)
        try:
            system.db.define_class(
                "Node", superclass="IRSObject", attributes={"content": "STRING"}
            )
            system.db.schema.get_class("Node").add_method(
                "getText", lambda obj, mode=0: obj.get("content") or ""
            )
            for text in TEXTS:
                system.db.create_object("Node", content=text)
            collection = system.create_collection("c", "ACCESS n FROM n IN Node")
            system.index_collection(collection)
            report = system.health()
            shards = report["shards"]
            assert shards["collections"]["c"]["shards"] == 2
            assert sum(shards["collections"]["c"]["documents"]) == len(TEXTS)
            assert shards["failovers"] == 0
            assert shards["executor_attached"] is False
            # Informational only: an empty idle system stays "ok".
            assert report["status"] == "ok"
        finally:
            system.close()

    def test_sharded_system_persists_and_reloads(self, tmp_path):
        directory = str(tmp_path / "store")
        system = DocumentSystem(directory=directory, shards=2)
        system.db.define_class(
            "Node", superclass="IRSObject", attributes={"content": "STRING"}
        )
        system.db.schema.get_class("Node").add_method(
            "getText", lambda obj, mode=0: obj.get("content") or ""
        )
        for text in TEXTS:
            system.db.create_object("Node", content=text)
        collection = system.create_collection("c", "ACCESS n FROM n IN Node")
        system.index_collection(collection)
        reference = system.engine.query("c", "www nii").values
        system.close()

        reopened = DocumentSystem(directory=directory, shards=2)
        try:
            assert reopened.engine.collection("c").shard_count == 2
            assert reopened.engine.query("c", "www nii").values == reference
        finally:
            reopened.close()
