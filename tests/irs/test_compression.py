"""Variable-byte postings compression ([SAZ94]'s mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.compression import (
    compressed_size,
    decode_index,
    decode_postings,
    encode_index,
    encode_postings,
    gaps,
    raw_size,
    ungaps,
    vbyte_decode,
    vbyte_decode_stream,
    vbyte_encode,
    vbyte_encode_sequence,
)
from repro.irs.inverted_index import InvertedIndex


class TestVByte:
    @pytest.mark.parametrize("number,expected_len", [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3)])
    def test_encoding_lengths(self, number, expected_len):
        assert len(vbyte_encode(number)) == expected_len

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vbyte_encode(-1)

    def test_truncated_stream_rejected(self):
        data = vbyte_encode(300)[:-1]  # strip the stop byte
        with pytest.raises(ValueError):
            vbyte_decode(data + b"\x00")

    @given(st.lists(st.integers(0, 10**9), max_size=50))
    def test_sequence_round_trip(self, numbers):
        assert vbyte_decode(vbyte_encode_sequence(numbers)) == numbers


class TestGaps:
    def test_gaps_and_ungaps(self):
        values = [3, 7, 8, 20]
        assert gaps(values) == [3, 4, 1, 12]
        assert ungaps(gaps(values)) == values

    @given(st.lists(st.integers(0, 10**6), max_size=40, unique=True))
    def test_round_trip_property(self, values):
        ordered = sorted(values)
        assert ungaps(gaps(ordered)) == ordered


class TestPostings:
    def test_round_trip(self):
        postings = {1: [0, 5, 9], 4: [2], 9: [1, 3]}
        assert decode_postings(encode_postings(postings)) == postings

    def test_empty_postings(self):
        assert decode_postings(encode_postings({})) == {}

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(1, 500),
            st.lists(st.integers(0, 300), min_size=1, max_size=10, unique=True),
            max_size=10,
        )
    )
    def test_round_trip_property(self, raw):
        postings = {doc: sorted(positions) for doc, positions in raw.items()}
        assert decode_postings(encode_postings(postings)) == postings


class TestWholeIndex:
    @pytest.fixture
    def index(self):
        idx = InvertedIndex()
        idx.add_document(1, ["www", "browser", "www", "pages"])
        idx.add_document(2, ["nii", "policy", "www"])
        idx.add_document(3, ["pages", "pages", "pages"])
        return idx

    def test_index_round_trip(self, index):
        encoded = encode_index(index)
        doc_lengths = {d: index.document_length(d) for d in index.document_ids()}
        decoded = decode_index(encoded, doc_lengths)
        assert decoded.document_count == index.document_count
        for term in index.terms():
            assert [
                (p.doc_id, p.positions) for p in decoded.postings(term)
            ] == [(p.doc_id, p.positions) for p in index.postings(term)]

    def test_compression_shrinks_redundant_index(self, index):
        assert compressed_size(index) < raw_size(index)

    def test_multi_level_redundancy_compresses_well(self, corpus_system):
        """The [SAZ94] scenario: the all-elements index compresses far
        better, relative to the document-level baseline, than raw."""
        from repro.core.granularity import all_elements, document_level

        doc_coll = document_level().build(corpus_system.db)
        all_coll = all_elements().build(corpus_system.db)
        doc_irs = corpus_system.engine.collection(doc_coll.get("irs_name")).index
        all_irs = corpus_system.engine.collection(all_coll.get("irs_name")).index

        raw_overhead = raw_size(all_irs) / raw_size(doc_irs)
        compressed_overhead = compressed_size(all_irs) / compressed_size(doc_irs)
        # Compression does not remove logical redundancy across levels but
        # the repeated small gaps of the multi-level index pack tighter.
        assert compressed_size(all_irs) < raw_size(all_irs) / 3
        assert compressed_overhead <= raw_overhead * 1.1


class TestStopBitConvention:
    """Pin down the wire format: big-endian 7-bit groups, MSB on the FINAL
    byte (the classic stop-bit scheme), not LEB128/protobuf varints."""

    def test_single_byte_has_stop_bit(self):
        assert vbyte_encode(0) == b"\x80"
        assert vbyte_encode(127) == b"\xff"

    def test_multi_byte_is_big_endian_with_final_stop(self):
        # 300 = 0b10_0101100 -> groups [0b10, 0b0101100], stop on the last.
        assert vbyte_encode(300) == bytes([0x02, 0x80 | 0x2C])
        # Non-final bytes never carry the MSB.
        for n in (128, 16384, 2**40, 2**60):
            encoded = vbyte_encode(n)
            assert all(b & 0x80 == 0 for b in encoded[:-1])
            assert encoded[-1] & 0x80

    def test_not_leb128(self):
        # LEB128 would encode 300 as b"\xac\x02"; our scheme must not.
        assert vbyte_encode(300) != b"\xac\x02"

    @given(st.integers(0, 2**64))
    def test_round_trip_any_width(self, n):
        assert vbyte_decode(vbyte_encode(n)) == [n]

    @given(st.lists(st.integers(0, 2**61), max_size=30))
    def test_huge_gap_sequences_round_trip(self, numbers):
        assert vbyte_decode(vbyte_encode_sequence(numbers)) == numbers

    @given(st.lists(st.integers(0, 2**61), max_size=30), st.integers(128, 2**61))
    def test_truncation_always_detected(self, numbers, last):
        # The final integer is multi-byte, so dropping its stop byte leaves
        # a pending partial integer.  (Dropping the stop byte of a
        # single-byte integer instead yields the valid shorter stream.)
        data = vbyte_encode_sequence(numbers + [last])
        with pytest.raises(ValueError):
            vbyte_decode(data[:-1])

    def test_all_zero_continuation_truncation_detected(self):
        # b"\x00" is a pending continuation byte with value 0 — the old
        # decoder silently dropped it.
        with pytest.raises(ValueError):
            vbyte_decode(b"\x00")
        with pytest.raises(ValueError):
            vbyte_decode(vbyte_encode(5) + b"\x00\x00")


class TestStreamDecode:
    @given(
        st.lists(st.integers(0, 2**61), max_size=40),
        st.lists(st.integers(0, 2**61), max_size=40),
    )
    def test_random_access_matches_full_decode(self, first, second):
        data = vbyte_encode_sequence(first) + vbyte_encode_sequence(second)
        values, offset = vbyte_decode_stream(data, 0, len(first))
        assert values == first
        rest, end = vbyte_decode_stream(data, offset, len(second))
        assert rest == second
        assert end == len(data)

    def test_count_zero_reads_nothing(self):
        assert vbyte_decode_stream(b"\xff\xff", 0, 0) == ([], 0)

    def test_truncated_stream_raises(self):
        data = vbyte_encode_sequence([1, 300])
        with pytest.raises(ValueError):
            vbyte_decode_stream(data, 0, 3)
        with pytest.raises(ValueError):
            vbyte_decode_stream(data[:-1], 1, 1)


class TestEmptyPositions:
    def test_doc_with_empty_position_list_round_trips(self):
        postings = {4: [], 7: [0, 2], 9: []}
        assert decode_postings(encode_postings(postings)) == postings

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 2**40),
            st.lists(st.integers(0, 2**40), max_size=6, unique=True),
            max_size=8,
        )
    )
    def test_round_trip_with_empty_and_huge(self, raw):
        postings = {doc: sorted(positions) for doc, positions in raw.items()}
        assert decode_postings(encode_postings(postings)) == postings
