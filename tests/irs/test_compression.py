"""Variable-byte postings compression ([SAZ94]'s mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.compression import (
    compressed_size,
    decode_index,
    decode_postings,
    encode_index,
    encode_postings,
    gaps,
    raw_size,
    ungaps,
    vbyte_decode,
    vbyte_encode,
    vbyte_encode_sequence,
)
from repro.irs.inverted_index import InvertedIndex


class TestVByte:
    @pytest.mark.parametrize("number,expected_len", [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3)])
    def test_encoding_lengths(self, number, expected_len):
        assert len(vbyte_encode(number)) == expected_len

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vbyte_encode(-1)

    def test_truncated_stream_rejected(self):
        data = vbyte_encode(300)[:-1]  # strip the stop byte
        with pytest.raises(ValueError):
            vbyte_decode(data + b"\x00")

    @given(st.lists(st.integers(0, 10**9), max_size=50))
    def test_sequence_round_trip(self, numbers):
        assert vbyte_decode(vbyte_encode_sequence(numbers)) == numbers


class TestGaps:
    def test_gaps_and_ungaps(self):
        values = [3, 7, 8, 20]
        assert gaps(values) == [3, 4, 1, 12]
        assert ungaps(gaps(values)) == values

    @given(st.lists(st.integers(0, 10**6), max_size=40, unique=True))
    def test_round_trip_property(self, values):
        ordered = sorted(values)
        assert ungaps(gaps(ordered)) == ordered


class TestPostings:
    def test_round_trip(self):
        postings = {1: [0, 5, 9], 4: [2], 9: [1, 3]}
        assert decode_postings(encode_postings(postings)) == postings

    def test_empty_postings(self):
        assert decode_postings(encode_postings({})) == {}

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(1, 500),
            st.lists(st.integers(0, 300), min_size=1, max_size=10, unique=True),
            max_size=10,
        )
    )
    def test_round_trip_property(self, raw):
        postings = {doc: sorted(positions) for doc, positions in raw.items()}
        assert decode_postings(encode_postings(postings)) == postings


class TestWholeIndex:
    @pytest.fixture
    def index(self):
        idx = InvertedIndex()
        idx.add_document(1, ["www", "browser", "www", "pages"])
        idx.add_document(2, ["nii", "policy", "www"])
        idx.add_document(3, ["pages", "pages", "pages"])
        return idx

    def test_index_round_trip(self, index):
        encoded = encode_index(index)
        doc_lengths = {d: index.document_length(d) for d in index.document_ids()}
        decoded = decode_index(encoded, doc_lengths)
        assert decoded.document_count == index.document_count
        for term in index.terms():
            assert [
                (p.doc_id, p.positions) for p in decoded.postings(term)
            ] == [(p.doc_id, p.positions) for p in index.postings(term)]

    def test_compression_shrinks_redundant_index(self, index):
        assert compressed_size(index) < raw_size(index)

    def test_multi_level_redundancy_compresses_well(self, corpus_system):
        """The [SAZ94] scenario: the all-elements index compresses far
        better, relative to the document-level baseline, than raw."""
        from repro.core.granularity import all_elements, document_level

        doc_coll = document_level().build(corpus_system.db)
        all_coll = all_elements().build(corpus_system.db)
        doc_irs = corpus_system.engine.collection(doc_coll.get("irs_name")).index
        all_irs = corpus_system.engine.collection(all_coll.get("irs_name")).index

        raw_overhead = raw_size(all_irs) / raw_size(doc_irs)
        compressed_overhead = compressed_size(all_irs) / compressed_size(doc_irs)
        # Compression does not remove logical redundancy across levels but
        # the repeated small gaps of the multi-level index pack tighter.
        assert compressed_size(all_irs) < raw_size(all_irs) / 3
        assert compressed_overhead <= raw_overhead * 1.1
