"""IRS query language: parsing, operators, formatting."""

import pytest

from repro.errors import IRSQuerySyntaxError, UnknownOperatorError
from repro.irs.queries import (
    OperatorNode,
    TermNode,
    format_query,
    parse_irs_query,
    subqueries,
)


class TestParsing:
    def test_bare_term(self):
        assert parse_irs_query("WWW") == TermNode("WWW")

    def test_bare_terms_combine_with_default(self):
        tree = parse_irs_query("www nii", default_operator="sum")
        assert isinstance(tree, OperatorNode)
        assert tree.op == "sum"
        assert tree.children == (TermNode("www"), TermNode("nii"))

    def test_boolean_default_operator(self):
        tree = parse_irs_query("www nii", default_operator="and")
        assert tree.op == "and"

    def test_and_operator(self):
        tree = parse_irs_query("#and(www nii)")
        assert tree.op == "and"
        assert len(tree.children) == 2

    def test_nested_operators(self):
        tree = parse_irs_query("#or(#and(www nii) telnet)")
        assert tree.op == "or"
        inner = tree.children[0]
        assert isinstance(inner, OperatorNode) and inner.op == "and"

    def test_commas_tolerated(self):
        tree = parse_irs_query("#and(www, nii)")
        assert len(tree.children) == 2

    def test_case_insensitive_operator(self):
        assert parse_irs_query("#AND(www nii)").op == "and"

    def test_wsum_pairs(self):
        tree = parse_irs_query("#wsum(2 www 1 nii)")
        assert tree.weights == (2.0, 1.0)
        assert tree.children == (TermNode("www"), TermNode("nii"))

    def test_not_single_operand(self):
        tree = parse_irs_query("#not(telnet)")
        assert tree.op == "not"


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("   ")

    def test_unknown_operator(self):
        with pytest.raises(UnknownOperatorError):
            parse_irs_query("#phrase(www nii)")

    def test_unterminated(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#and(www")

    def test_empty_operator(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#and()")

    def test_not_with_two_operands(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#not(a b)")

    def test_wsum_missing_operand(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#wsum(2)")

    def test_wsum_non_numeric_weight(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query("#wsum(www nii)")

    def test_stray_paren(self):
        with pytest.raises(IRSQuerySyntaxError):
            parse_irs_query(") www")


class TestHelpers:
    def test_terms_collects_recursively(self):
        tree = parse_irs_query("#or(#and(www nii) telnet)")
        assert tree.terms() == ["www", "nii", "telnet"]

    def test_subqueries_of_operator(self):
        tree = parse_irs_query("#and(www nii)")
        subs = subqueries(tree)
        assert subs == [TermNode("www"), TermNode("nii")]

    def test_subqueries_of_term(self):
        assert subqueries(TermNode("www")) == [TermNode("www")]

    def test_format_round_trip(self):
        for text in ("www", "#and(www nii)", "#or(#and(a b) c)", "#wsum(2 a 1 b)", "#not(x)"):
            tree = parse_irs_query(text)
            assert parse_irs_query(format_query(tree)) == tree
