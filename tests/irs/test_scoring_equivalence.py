"""Fast-path vs naive-path score equivalence.

The term-at-a-time scoring engine (precompiled queries + statistics cache)
must be a pure optimization: on any corpus and any query of the operator
algebra, per-document values match the preserved naive doc-at-a-time
implementations of :mod:`repro.irs.models.reference` within 1e-9, with
identical result sets.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.models import (
    BooleanModel,
    InferenceNetworkModel,
    VectorSpaceModel,
)
from repro.irs.models.reference import (
    NaiveInferenceNetworkModel,
    NaiveVectorSpaceModel,
)
from repro.irs.queries import parse_irs_query

TOLERANCE = 1e-9

#: Every operator of the algebra, plus proximity nodes, plus stopped terms.
OPERATOR_QUERIES = [
    "www",
    "www nii",
    "#sum(www nii telnet)",
    "#and(www nii)",
    "#and(www #not(nii))",
    "#or(www #and(nii telnet))",
    "#or(#and(www nii) #or(telnet database))",
    "#not(www)",
    "#wsum(2 www 1 nii 0.5 telnet)",
    "#wsum(1 #and(www nii) 3 telnet)",
    "#max(www nii telnet)",
    "#max(#and(www nii) #or(telnet database))",
    "#od1(information retrieval)",
    "#od3(www nii)",
    "#uw5(www telnet)",
    "#sum(#od2(www nii) telnet)",
    "#and(#uw4(www database) #not(telnet))",
    "the",          # analyzes away entirely
    "#sum(the www)",  # stopped term inside an operator
    "#wsum(2 the 1 www)",
]


def random_collection(seed: int, documents: int = 50) -> IRSCollection:
    rng = random.Random(seed)
    vocabulary = [
        "www", "nii", "telnet", "database", "information", "retrieval",
    ] + [f"w{i}" for i in range(40)]
    collection = IRSCollection(f"rand{seed}", Analyzer())
    for _ in range(documents):
        words = rng.choices(vocabulary, k=rng.randint(3, 35))
        collection.add_document(" ".join(words))
    return collection


def assert_equivalent(fast_result, naive_result, context):
    assert set(fast_result) == set(naive_result), (
        f"{context}: result sets diverge: "
        f"{sorted(set(fast_result) ^ set(naive_result))}"
    )
    for doc_id, value in fast_result.items():
        assert value == pytest.approx(naive_result[doc_id], abs=TOLERANCE), (
            f"{context}: doc {doc_id}"
        )


MODEL_PAIRS = [
    pytest.param(VectorSpaceModel(), NaiveVectorSpaceModel(), id="vector"),
    pytest.param(InferenceNetworkModel(), NaiveInferenceNetworkModel(), id="inquery"),
]


class TestOperatorAlgebraEquivalence:
    @pytest.mark.parametrize("fast,naive", MODEL_PAIRS)
    @pytest.mark.parametrize("query", OPERATOR_QUERIES)
    def test_equivalent_on_randomized_corpus(self, fast, naive, query):
        collection = random_collection(seed=20260806)
        tree = parse_irs_query(query, default_operator=fast.default_operator)
        assert_equivalent(
            fast.score(collection, tree),
            naive.score(collection, tree),
            f"{fast.name} / {query}",
        )

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_equivalent_across_corpora(self, seed):
        collection = random_collection(seed=seed, documents=30)
        for query in OPERATOR_QUERIES:
            for fast, naive in [
                (VectorSpaceModel(), NaiveVectorSpaceModel()),
                (InferenceNetworkModel(), NaiveInferenceNetworkModel()),
            ]:
                tree = parse_irs_query(query, default_operator=fast.default_operator)
                assert_equivalent(
                    fast.score(collection, tree),
                    naive.score(collection, tree),
                    f"seed {seed} / {fast.name} / {query}",
                )

    def test_boolean_compiled_path_matches_semantics(self):
        collection = random_collection(seed=9, documents=30)
        model = BooleanModel()
        universe = set(collection.index.document_ids())
        www = set(collection.stats.doc_id_set(collection.analyzer.term("www")))
        nii = set(collection.stats.doc_id_set(collection.analyzer.term("nii")))
        cases = {
            "#and(www nii)": www & nii,
            "#or(www nii)": www | nii,
            "#and(www #not(nii))": www - nii,
            "#not(www)": universe - www,
        }
        for query, expected in cases.items():
            tree = parse_irs_query(query, default_operator="and")
            assert set(model.score(collection, tree)) == expected, query


class TestEquivalenceUnderUpdates:
    def test_interleaved_updates_keep_paths_equivalent(self):
        rng = random.Random(13)
        collection = random_collection(seed=13, documents=20)
        fast_i, naive_i = InferenceNetworkModel(), NaiveInferenceNetworkModel()
        fast_v, naive_v = VectorSpaceModel(), NaiveVectorSpaceModel()
        vocabulary = ["www", "nii", "telnet", "database"] + [f"w{i}" for i in range(40)]
        for step in range(25):
            roll = rng.random()
            doc_ids = sorted(collection.index.document_ids())
            if roll < 0.3 and len(doc_ids) > 5:
                collection.remove_document(rng.choice(doc_ids))
            elif roll < 0.5 and doc_ids:
                collection.replace_document(
                    rng.choice(doc_ids),
                    " ".join(rng.choices(vocabulary, k=rng.randint(3, 25))),
                )
            else:
                collection.add_document(
                    " ".join(rng.choices(vocabulary, k=rng.randint(3, 25)))
                )
            query = rng.choice(OPERATOR_QUERIES)
            tree = parse_irs_query(query, default_operator="sum")
            assert_equivalent(
                fast_i.score(collection, tree),
                naive_i.score(collection, tree),
                f"step {step} inquery / {query}",
            )
            assert_equivalent(
                fast_v.score(collection, tree),
                naive_v.score(collection, tree),
                f"step {step} vector / {query}",
            )


@st.composite
def _random_query(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(
            st.sampled_from(
                ["www", "nii", "telnet", "database", "w1", "w2", "w3", "the"]
            )
        )
    op = draw(st.sampled_from(["and", "or", "not", "sum", "wsum", "max", "od2", "uw4"]))
    if op == "not":
        return f"#not({draw(_random_query(depth + 1))})"
    if op in ("od2", "uw4"):
        terms = draw(
            st.lists(
                st.sampled_from(["www", "nii", "telnet", "w1", "w2"]),
                min_size=2,
                max_size=3,
            )
        )
        return f"#{op}({' '.join(terms)})"
    children = draw(
        st.lists(st.deferred(lambda: _random_query(depth + 1)), min_size=1, max_size=3)
    )
    if op == "wsum":
        weights = draw(
            st.lists(
                st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
                min_size=len(children),
                max_size=len(children),
            )
        )
        inner = " ".join(f"{w:g} {c}" for w, c in zip(weights, children))
        return f"#wsum({inner})"
    return f"#{op}({' '.join(children)})"


class TestRandomizedQueryProperty:
    @settings(max_examples=60, deadline=None)
    @given(query=_random_query(), seed=st.integers(min_value=0, max_value=5))
    def test_random_query_trees_equivalent(self, query, seed):
        collection = random_collection(seed=seed, documents=25)
        for fast, naive in [
            (InferenceNetworkModel(), NaiveInferenceNetworkModel()),
            (VectorSpaceModel(), NaiveVectorSpaceModel()),
        ]:
            tree = parse_irs_query(query, default_operator=fast.default_operator)
            assert_equivalent(
                fast.score(collection, tree),
                naive.score(collection, tree),
                f"{fast.name} / {query}",
            )
