"""Merge policy, merge protocol, and the background scheduler."""

from __future__ import annotations

import random
import threading

import pytest

from repro.irs.engine import IRSEngine
from repro.irs.segments import (
    MergedIndexView,
    MergeScheduler,
    SegmentConfig,
    SegmentManager,
    select_candidates,
)
from repro.sync import ReadWriteLock

WORDS = ["www", "nii", "telnet", "database", "retrieval"] + [
    f"w{i}" for i in range(15)
]


def manager_with_segments(sizes, config=None, seed=0):
    """A manager holding one sealed segment per entry in ``sizes``."""
    config = config or SegmentConfig(tier_fanout=3)
    manager = SegmentManager("merge-test", config)
    view = MergedIndexView(manager)
    rng = random.Random(seed)
    doc_id = 1
    for size in sizes:
        for _ in range(size):
            view.add_document(doc_id, rng.choices(WORDS, k=rng.randint(2, 8)))
            doc_id += 1
        manager.seal()
    return manager, view


class TestSelectCandidates:
    def test_empty_manager_has_no_candidates(self):
        manager, _ = manager_with_segments([])
        assert select_candidates(manager) == []

    def test_partial_tier_is_left_alone(self):
        manager, _ = manager_with_segments([4, 4])
        assert select_candidates(manager) == []

    def test_full_tier_is_selected(self):
        manager, _ = manager_with_segments([4, 4, 4])
        candidates = select_candidates(manager)
        assert candidates == manager.sealed_segments()

    def test_smallest_full_tier_wins(self):
        # Tier 1 (live 3..8 docs at fanout 3) is full; the big segment is not.
        manager, _ = manager_with_segments([40, 4, 4, 4])
        candidates = select_candidates(manager)
        assert len(candidates) == 3
        assert all(s.live_document_count == 4 for s in candidates)

    def test_merge_width_is_capped(self):
        config = SegmentConfig(tier_fanout=2, max_merge_segments=2)
        manager, _ = manager_with_segments([4, 4, 4], config=config)
        assert len(select_candidates(manager)) == 2

    def test_tombstone_heavy_segment_selected_alone(self):
        manager, view = manager_with_segments([8, 8])
        victim_segment = manager.sealed_segments()[0]
        for doc_id in sorted(victim_segment.forward)[:2]:  # ratio hits 0.25
            view.remove_document(doc_id)
        candidates = select_candidates(manager)
        assert candidates == [victim_segment]

    def test_light_tombstones_do_not_trigger(self):
        manager, view = manager_with_segments([10, 10])
        view.remove_document(sorted(manager.sealed_segments()[0].forward)[0])
        assert select_candidates(manager) == []


class TestMergeProtocol:
    def test_only_one_merge_at_a_time(self):
        manager, _ = manager_with_segments([4, 4, 4])
        plan = manager.begin_merge(manager.sealed_segments())
        assert plan is not None
        assert manager.begin_merge(manager.sealed_segments()) is None
        manager.abort_merge(plan)
        assert manager.begin_merge(manager.sealed_segments()) is not None

    def test_commit_replays_post_snapshot_tombstones(self):
        manager, view = manager_with_segments([4, 4, 4])
        before = set(view.document_ids())
        plan = manager.begin_merge(manager.sealed_segments())
        # A foreground delete lands *after* the snapshot, mid-build.
        victim = sorted(manager.sealed_segments()[0].forward)[0]
        view.remove_document(victim)
        merged = plan.build()
        assert merged.is_live(victim), "built from the pre-delete snapshot"
        manager.commit_merge(plan, merged)
        assert len(manager.sealed_segments()) == 1
        assert set(view.document_ids()) == before - {victim}
        assert not view.has_document(victim)

    def test_commit_purges_snapshot_tombstones(self):
        manager, view = manager_with_segments([4, 4, 4])
        victim = sorted(manager.sealed_segments()[1].forward)[0]
        view.remove_document(victim)
        assert manager.tombstone_count() == 1
        plan = manager.begin_merge(manager.sealed_segments())
        manager.commit_merge(plan, plan.build())
        assert manager.tombstone_count() == 0
        assert manager.tombstones_purged == 1
        assert not view.has_document(victim)

    def test_merge_preserves_epoch_and_bumps_structure(self):
        manager, view = manager_with_segments([4, 4, 4])
        epoch, structure = manager.epoch, manager.structure
        plan = manager.begin_merge(manager.sealed_segments())
        manager.commit_merge(plan, plan.build())
        assert manager.epoch == epoch
        assert manager.structure == structure + 1

    def test_abort_leaves_segments_untouched(self):
        manager, view = manager_with_segments([4, 4, 4])
        before = view.to_payload()
        plan = manager.begin_merge(manager.sealed_segments())
        manager.abort_merge(plan)
        assert view.to_payload() == before
        assert len(manager.sealed_segments()) == 3


class TestEngineCompaction:
    def _engine(self, documents=10):
        engine = IRSEngine(
            segment_config=SegmentConfig(seal_document_count=3, tier_fanout=2)
        )
        engine.create_collection("docs")
        rng = random.Random(7)
        for _ in range(documents):
            engine.index_document("docs", " ".join(rng.choices(WORDS, k=6)))
        return engine

    def test_compact_collection_folds_everything(self):
        engine = self._engine()
        collection = engine.collection("docs")
        assert len(collection.segments.sealed_segments()) >= 3
        assert engine.compact_collection("docs") is True
        assert len(collection.segments.sealed_segments()) == 1
        assert engine.compact_collection("docs") is False  # already clean

    def test_compaction_keeps_statistics_cache_warm(self):
        engine = self._engine()
        collection = engine.collection("docs")
        stats = collection.stats
        norm = stats.document_norm(1)
        assert stats._doc_norms, "norm memo populated"
        engine.compact_collection("docs")
        assert stats._doc_norms, "content-preserving merge must not invalidate"
        assert stats.document_norm(1) == norm

    def test_query_results_survive_compaction(self):
        engine = self._engine(documents=14)
        before = {
            model: engine.query("docs", "www telnet", model=model).values
            for model in ("vector", "inquery", "boolean")
        }
        engine.compact_collection("docs")
        for model, expected in before.items():
            after = engine.query("docs", "www telnet", model=model).values
            assert set(after) == set(expected)
            for doc_id, value in after.items():
                assert value == pytest.approx(expected[doc_id], abs=1e-9)


class TestMergeScheduler:
    def _engine(self):
        engine = IRSEngine(
            segment_config=SegmentConfig(
                seal_document_count=3, tier_fanout=2, merge_interval_seconds=0.01
            )
        )
        engine.create_collection("docs")
        rng = random.Random(11)
        for _ in range(13):
            engine.index_document("docs", " ".join(rng.choices(WORDS, k=6)))
        return engine

    def test_run_once_merges_within_budget(self):
        engine = self._engine()
        collection = engine.collection("docs")
        before_segments = len(collection.segments.sealed_segments())
        before_docs = set(collection.index.document_ids())
        scheduler = MergeScheduler(engine, interval=0.01)
        merges = scheduler.run_once()
        assert merges >= 1
        assert len(collection.segments.sealed_segments()) < before_segments
        assert set(collection.index.document_ids()) == before_docs

    def test_run_once_skips_monolithic_collections(self):
        engine = IRSEngine(segment_config=SegmentConfig(enabled=False))
        engine.create_collection("mono")
        engine.index_document("mono", "www nii")
        assert MergeScheduler(engine, interval=0.01).run_once() == 0

    def test_engine_owns_one_scheduler(self):
        engine = self._engine()
        scheduler = engine.start_merge_scheduler(interval=0.01)
        try:
            assert scheduler.running
            assert engine.start_merge_scheduler() is scheduler
        finally:
            engine.stop_merge_scheduler()
        assert not scheduler.running

    def test_background_thread_converges(self):
        engine = self._engine()
        collection = engine.collection("docs")
        scheduler = engine.start_merge_scheduler(interval=0.005)
        try:
            done = threading.Event()

            def probe():
                import time

                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if not select_candidates(collection.segments):
                        done.set()
                        return
                    time.sleep(0.01)

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert done.is_set(), "scheduler never drained the merge candidates"
        finally:
            engine.stop_merge_scheduler()


class TestCooperativeWriteAcquire:
    def test_nowait_fails_under_reader(self):
        lock = ReadWriteLock()
        with lock.reading():
            assert lock.acquire_write_nowait() is False
        assert lock.acquire_write_nowait() is True
        lock.release_write()

    def test_try_writing_context(self):
        lock = ReadWriteLock()
        with lock.try_writing() as acquired:
            assert acquired is True
        with lock.reading():
            with lock.try_writing() as acquired:
                assert acquired is False

    def test_nowait_is_reentrant_for_the_writer(self):
        lock = ReadWriteLock()
        assert lock.acquire_write_nowait() is True
        assert lock.acquire_write_nowait() is True
        lock.release_write()
        lock.release_write()
        # fully released: a reader can get in again
        with lock.reading():
            pass
