"""Storage section of the health report: thresholds and verdict coupling."""

from repro.obs.health import (
    STORAGE_DEAD_BYTES,
    STORAGE_DEAD_RATIO,
    build_health,
)


def storage_stats(dead_ratio=0.0, dead_bytes=0, **extra):
    stats = {
        "path": "/x/irs.store",
        "size_bytes": 4096 + dead_bytes,
        "live_bytes": 4096,
        "dead_bytes": dead_bytes,
        "dead_ratio": dead_ratio,
        "checkpoints": 3,
        "dirty": {"documents": 0, "approx_bytes": 0},
    }
    stats.update(extra)
    return stats


class TestStorageSection:
    def test_absent_storage_reports_disabled(self):
        report = build_health()
        assert report["storage"] == {"enabled": False}
        assert report["status"] == "ok"

    def test_healthy_store_does_not_need_pack(self):
        report = build_health(storage=storage_stats(dead_ratio=0.1, dead_bytes=100))
        storage = report["storage"]
        assert storage["enabled"] is True
        assert storage["needs_pack"] is False
        assert report["status"] == "ok"

    def test_high_ratio_alone_is_not_enough(self):
        # A tiny store can be 90% dead without being worth a rewrite.
        report = build_health(
            storage=storage_stats(dead_ratio=0.9, dead_bytes=STORAGE_DEAD_BYTES - 1)
        )
        assert report["storage"]["needs_pack"] is False
        assert report["status"] == "ok"

    def test_many_dead_bytes_alone_is_not_enough(self):
        # A huge, mostly-live store wastes little relative to its size.
        report = build_health(
            storage=storage_stats(
                dead_ratio=STORAGE_DEAD_RATIO / 2, dead_bytes=STORAGE_DEAD_BYTES * 4
            )
        )
        assert report["storage"]["needs_pack"] is False
        assert report["status"] == "ok"

    def test_both_thresholds_flip_needs_pack_and_degrade(self):
        report = build_health(
            storage=storage_stats(
                dead_ratio=STORAGE_DEAD_RATIO, dead_bytes=STORAGE_DEAD_BYTES
            )
        )
        assert report["storage"]["needs_pack"] is True
        assert report["status"] == "degraded"

    def test_stats_pass_through_unchanged(self):
        stats = storage_stats(dead_ratio=0.25, dead_bytes=512)
        report = build_health(storage=stats)
        storage = report["storage"]
        assert storage["path"] == "/x/irs.store"
        assert storage["checkpoints"] == 3
        assert storage["dead_bytes"] == 512
        assert storage["dirty"] == {"documents": 0, "approx_bytes": 0}
