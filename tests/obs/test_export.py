"""Prometheus exposition and the JSONL metrics snapshotter."""

from __future__ import annotations

import json
import os

from tests.support import wait_until

from repro.obs.export import (
    MetricsSnapshotter,
    _prom_name,
    prometheus_text,
    write_metrics_snapshot,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("irs.query.executed").inc(3)
    registry.gauge("service.queue.depth").set(2.0)
    hist = registry.histogram("service.batch.window_size", buckets=(1.0, 2.0, 4.0))
    hist.observe(1.0)
    hist.observe(3.0)
    roll = registry.rolling("service.request.total_seconds")
    roll.observe(0.01)
    roll.observe(0.02)
    return registry


class TestPrometheusText:
    def test_counters_gauges_and_types(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE repro_irs_query_executed_total counter" in text
        assert "repro_irs_query_executed_total 3" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 2.0" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(populated_registry())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_service_batch_window_size_bucket")
        ]
        # Bounds 1, 2, 4, +Inf with observations 1.0 and 3.0: cumulative
        # counts must be 1, 1, 2, 2 — never decreasing.
        assert lines == [
            'repro_service_batch_window_size_bucket{le="1"} 1',
            'repro_service_batch_window_size_bucket{le="2"} 1',
            'repro_service_batch_window_size_bucket{le="4"} 2',
            'repro_service_batch_window_size_bucket{le="+Inf"} 2',
        ]
        assert "repro_service_batch_window_size_count 2" in text

    def test_rolling_rendered_as_summary_quantiles(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE repro_service_request_total_seconds summary" in text
        assert 'repro_service_request_total_seconds{quantile="0.5"}' in text
        assert 'repro_service_request_total_seconds{quantile="0.999"}' in text
        assert "repro_service_request_total_seconds_count 2" in text

    def test_name_sanitization(self):
        assert _prom_name("irs.query.seconds.inquery", "repro") == (
            "repro_irs_query_seconds_inquery"
        )
        assert _prom_name("9weird-name!", "") == "_9weird_name_"

    def test_defaults_to_global_registry(self):
        # Must not raise against whatever the global registry holds.
        assert prometheus_text().endswith("\n")


class TestSnapshotJsonl:
    def test_write_metrics_snapshot_appends_valid_lines(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        registry = populated_registry()
        write_metrics_snapshot(path, registry, extra={"phase": "warm"})
        write_metrics_snapshot(path, registry)
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["phase"] == "warm"
        assert first["metrics"]["counters"]["irs.query.executed"] == 3
        assert "rolling" in first["metrics"]

    def test_snapshotter_writes_periodically_and_on_stop(self, tmp_path):
        path = str(tmp_path / "periodic.jsonl")
        registry = populated_registry()

        def periodic_lines() -> int:
            if not os.path.exists(path):
                return 0
            return len(open(path, encoding="utf-8").read().splitlines())

        with MetricsSnapshotter(path, interval_seconds=0.05, registry=registry):
            # Wait for at least one *periodic* line (not a fixed sleep — a
            # loaded runner may need far more than one interval).
            wait_until(
                lambda: periodic_lines() >= 1,
                timeout=10,
                message="snapshotter produced no periodic snapshot",
            )
        lines = open(path, encoding="utf-8").read().splitlines()
        # The periodic line(s) plus the final stop() snapshot.
        assert len(lines) >= 2
        for line in lines:
            json.loads(line)

    def test_snapshotter_start_is_idempotent(self, tmp_path):
        snapshotter = MetricsSnapshotter(str(tmp_path / "x.jsonl"), 5.0)
        snapshotter.start()
        thread = snapshotter._thread
        snapshotter.start()
        assert snapshotter._thread is thread
        snapshotter.stop(final_snapshot=False)
        assert snapshotter._thread is None
