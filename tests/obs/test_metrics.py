"""Metrics registry: counters, gauges, histogram bucket semantics."""

import json
import threading

from repro.obs import MetricsRegistry, NoopMetricsRegistry, RollingHistogram
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram


class TestCounterAndGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["c"] == 5

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert registry.snapshot()["gauges"]["g"] == 3.0

    def test_gauge_max_of_tracks_high_watermark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("peak")
        gauge.max_of(3.0)
        gauge.max_of(1.0)  # lower: must not regress
        gauge.max_of(7.0)
        assert gauge.value == 7.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")
        assert registry.rolling("r") is registry.rolling("r")


class TestThreadSafety:
    """The pooled executor hammers shared instruments from many workers.

    A bare ``+=`` on an instance attribute is three bytecodes; without the
    per-instrument lock these stress runs lose updates (flakily, which is
    worse).  8 threads x 5000 increments makes a lost update near-certain
    on an unlocked implementation.
    """

    THREADS = 8
    ROUNDS = 5000

    def _pound(self, fn):
        workers = [
            threading.Thread(target=lambda: [fn() for _ in range(self.ROUNDS)])
            for _ in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    def test_concurrent_counter_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress")
        self._pound(counter.inc)
        assert counter.value == self.THREADS * self.ROUNDS

    def test_concurrent_gauge_adds_lose_nothing(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("stress")
        self._pound(lambda: gauge.add(1.0))
        assert gauge.value == float(self.THREADS * self.ROUNDS)

    def test_concurrent_histogram_observes_lose_nothing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("stress")
        self._pound(lambda: hist.observe(0.001))
        assert hist.count == self.THREADS * self.ROUNDS
        assert sum(hist.bucket_counts) == self.THREADS * self.ROUNDS


class TestRollingInRegistry:
    def test_rolling_snapshot_section(self):
        registry = MetricsRegistry()
        roll = registry.rolling("service.request.total_seconds")
        assert isinstance(roll, RollingHistogram)
        roll.observe(0.02)
        snapshot = registry.snapshot()
        entry = snapshot["rolling"]["service.request.total_seconds"]
        assert entry["count"] == 1
        assert {"p50", "p95", "p99", "p999"} <= set(entry)

    def test_reset_clears_rolling_in_place(self):
        registry = MetricsRegistry()
        roll = registry.rolling("r")
        roll.observe(0.5)
        registry.reset()
        assert roll.snapshot()["count"] == 0
        assert registry.rolling("r") is roll


class TestHistogram:
    def test_bucket_upper_bounds_are_inclusive(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        hist.observe(0.01)   # exactly the first bound -> first bucket
        hist.observe(0.05)
        hist.observe(1.0)    # exactly the last bound -> last finite bucket
        hist.observe(2.0)    # above everything -> +Inf
        snapshot = hist.snapshot()
        assert snapshot["buckets"] == {
            "<=0.01": 1,
            "<=0.1": 1,
            "<=1": 1,
            "+Inf": 1,
        }
        assert snapshot["count"] == 4
        assert snapshot["min"] == 0.01
        assert snapshot["max"] == 2.0
        assert snapshot["mean"] == (0.01 + 0.05 + 1.0 + 2.0) / 4

    def test_unsorted_bounds_are_sorted(self):
        hist = Histogram(buckets=(1.0, 0.01, 0.1))
        assert hist.bounds == (0.01, 0.1, 1.0)

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean"] == 0.0
        assert snapshot["min"] is None
        assert len(snapshot["buckets"]) == len(DEFAULT_LATENCY_BUCKETS) + 1


class TestRegistrySnapshotAndReset:
    def test_snapshot_is_plain_json_encodable_dict(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        registry.histogram("h").observe(0.002)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms", "rolling"}
        json.dumps(snapshot)  # must not raise

    def test_reset_zeroes_in_place_keeping_references(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        hist = registry.histogram("h")
        counter.inc(3)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0
        assert hist.count == 0
        counter.inc()  # the pre-reset reference still feeds the registry
        assert registry.snapshot()["counters"]["a"] == 1


class TestNoopRegistry:
    def test_noop_is_inert_and_snapshot_empty(self):
        registry = NoopMetricsRegistry()
        registry.counter("c").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "rolling": {},
        }
