"""Metrics registry: counters, gauges, histogram bucket semantics."""

import json

from repro.obs import MetricsRegistry, NoopMetricsRegistry
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram


class TestCounterAndGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["c"] == 5

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert registry.snapshot()["gauges"]["g"] == 3.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")


class TestHistogram:
    def test_bucket_upper_bounds_are_inclusive(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        hist.observe(0.01)   # exactly the first bound -> first bucket
        hist.observe(0.05)
        hist.observe(1.0)    # exactly the last bound -> last finite bucket
        hist.observe(2.0)    # above everything -> +Inf
        snapshot = hist.snapshot()
        assert snapshot["buckets"] == {
            "<=0.01": 1,
            "<=0.1": 1,
            "<=1": 1,
            "+Inf": 1,
        }
        assert snapshot["count"] == 4
        assert snapshot["min"] == 0.01
        assert snapshot["max"] == 2.0
        assert snapshot["mean"] == (0.01 + 0.05 + 1.0 + 2.0) / 4

    def test_unsorted_bounds_are_sorted(self):
        hist = Histogram(buckets=(1.0, 0.01, 0.1))
        assert hist.bounds == (0.01, 0.1, 1.0)

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean"] == 0.0
        assert snapshot["min"] is None
        assert len(snapshot["buckets"]) == len(DEFAULT_LATENCY_BUCKETS) + 1


class TestRegistrySnapshotAndReset:
    def test_snapshot_is_plain_json_encodable_dict(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.0)
        registry.histogram("h").observe(0.002)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        json.dumps(snapshot)  # must not raise

    def test_reset_zeroes_in_place_keeping_references(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        hist = registry.histogram("h")
        counter.inc(3)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0
        assert hist.count == 0
        counter.inc()  # the pre-reset reference still feeds the registry
        assert registry.snapshot()["counters"]["a"] == 1


class TestNoopRegistry:
    def test_noop_is_inert_and_snapshot_empty(self):
        registry = NoopMetricsRegistry()
        registry.counter("c").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
