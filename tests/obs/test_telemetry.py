"""CostProfile arithmetic, the collection context, and the trace sampler."""

from __future__ import annotations

import json
import math
import threading

from repro.obs.telemetry import (
    COST_FIELDS,
    CostProfile,
    RequestTelemetry,
    TraceSampler,
    active_profile,
    collecting,
)


class TestCostProfile:
    def test_starts_zeroed_and_merges_scaled(self):
        total = CostProfile()
        assert all(getattr(total, field) == 0.0 for field in COST_FIELDS)
        part = CostProfile(queries=1.0, blocks_decoded=6.0, scoring_seconds=0.5)
        total.merge(part, scale=0.5)
        assert total.queries == 0.5
        assert total.blocks_decoded == 3.0
        assert total.scoring_seconds == 0.25

    def test_fractional_split_conserves(self):
        """Splitting a cost N ways and re-summing rebuilds it exactly."""
        cost = CostProfile(queries=1.0, candidates_scored=7.0, blocks_skipped=3.0)
        riders = 3
        rebuilt = CostProfile()
        for _ in range(riders):
            rebuilt.merge(cost, 1.0 / riders)
        for field in COST_FIELDS:
            assert math.isclose(
                getattr(rebuilt, field), getattr(cost, field), abs_tol=1e-12
            )

    def test_as_dict_json_encodable(self):
        json.dumps(CostProfile(queries=2.0).as_dict())


class TestCollecting:
    def test_idle_thread_has_no_profile(self):
        assert active_profile() is None

    def test_collecting_installs_and_restores(self):
        outer = CostProfile()
        inner = CostProfile()
        with collecting(outer):
            assert active_profile() is outer
            with collecting(inner):
                assert active_profile() is inner
            assert active_profile() is outer
        assert active_profile() is None

    def test_none_profile_is_a_noop(self):
        with collecting(None) as profile:
            assert profile is None
            assert active_profile() is None

    def test_profiles_are_thread_local(self):
        seen = {}

        def worker():
            seen["worker"] = active_profile()

        with collecting(CostProfile()):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["worker"] is None


class TestTraceSampler:
    def test_errors_always_keep(self):
        sampler = TraceSampler(head_every=0, slow_seconds=999.0)
        assert sampler.keep(0.0, error=True)

    def test_slow_requests_always_keep(self):
        sampler = TraceSampler(head_every=0, slow_seconds=0.1)
        assert sampler.keep(0.2)
        assert not sampler.keep(0.05)

    def test_head_sampling_keeps_first_of_every_n(self):
        sampler = TraceSampler(head_every=4, slow_seconds=999.0)
        decisions = [sampler.keep(0.0) for _ in range(8)]
        assert decisions == [True, False, False, False, True, False, False, False]

    def test_head_every_zero_drops_all_fast_traffic(self):
        sampler = TraceSampler(head_every=0, slow_seconds=999.0)
        assert not any(sampler.keep(0.0) for _ in range(10))

    def test_none_slow_threshold_tracks_slow_log(self):
        from repro import obs

        sampler = TraceSampler(head_every=0, slow_seconds=None)
        previous = obs.slow_log().threshold
        try:
            obs.configure(slow_query_seconds=0.5)
            assert sampler.keep(0.6)
            assert not sampler.keep(0.4)
        finally:
            obs.configure(slow_query_seconds=previous)


class TestRequestTelemetry:
    def test_as_dict_round_trips_to_json(self):
        telemetry = RequestTelemetry(
            collection="coll", query="WWW", model="inquery", top_k=5, mode="batched"
        )
        telemetry.group_totals = {"queries": 2.0}
        record = telemetry.as_dict()
        json.dumps(record)
        assert record["collection"] == "coll"
        assert record["cost"]["queries"] == 0.0
        assert "trace" not in record  # none retained

    def test_request_ids_are_unique(self):
        first = RequestTelemetry()
        second = RequestTelemetry()
        assert first.request_id != second.request_id
