"""Isolation of the module-level observability configuration.

``obs.configure`` mutates process-wide state.  These tests pin down the
snapshot/restore contract the autouse conftest fixture relies on, and —
the regression that motivated it — that two differently-configured
"tests" run back-to-back without the first leaking into the second.
"""

from __future__ import annotations

from repro import obs
from repro.obs import runtime
from repro.obs.telemetry import sampler, sampling_config


class TestSnapshotRestore:
    def test_round_trip_restores_every_knob(self):
        snapshot = obs.config_snapshot()
        original_log = runtime.slow_log()
        original_threshold = original_log.threshold
        original_sampling = sampling_config()

        obs.configure(
            slow_query_seconds=9.75,
            slow_log_capacity=3,
            trace_head_every=999,
            slow_trace_seconds=123.0,
        )
        assert runtime.slow_log() is not original_log  # capacity replaced it
        assert sampler().head_every == 999

        obs.config_restore(snapshot)
        assert runtime.slow_log() is original_log
        assert runtime.slow_log().threshold == original_threshold
        assert sampling_config() == original_sampling

    def test_restore_handles_none_slow_seconds(self):
        # configure_sampling(None) means "keep" — restore must not; a
        # snapshot taken while slow_seconds was None must bring None back.
        snapshot = obs.config_snapshot()
        before = sampling_config()["slow_seconds"]
        obs.configure(slow_trace_seconds=55.5)
        assert sampling_config()["slow_seconds"] == 55.5
        obs.config_restore(snapshot)
        assert sampling_config()["slow_seconds"] == before


class TestBackToBackConfigs:
    """Two configs in sequence: the autouse fixture unwinds each one."""

    def test_first_config(self):
        assert runtime.slow_log().threshold != 7.25, (
            "a previous test leaked its slow-log threshold"
        )
        obs.configure(slow_query_seconds=7.25, trace_head_every=111)
        assert runtime.slow_log().threshold == 7.25

    def test_second_config_starts_clean(self):
        assert runtime.slow_log().threshold != 7.25, (
            "test_first_config leaked through the autouse fixture"
        )
        assert sampler().head_every != 111
        obs.configure(slow_query_seconds=3.5, trace_head_every=222)
        assert runtime.slow_log().threshold == 3.5

    def test_third_sees_neither(self):
        assert runtime.slow_log().threshold not in (7.25, 3.5)
        assert sampler().head_every not in (111, 222)
