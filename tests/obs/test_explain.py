"""``explain()`` on the paper's worked mixed queries, plus the slow log."""

import pytest

from repro import obs
from repro.core import DocumentSystem
from repro.core.collection import _create_collection, index_objects
from repro.obs.slowlog import SlowQueryLog
from repro.sgml.mmf import build_document, mmf_dtd

QUERY_ONE = (
    "ACCESS p, p -> length() FROM p IN PARA "
    "WHERE p -> getIRSValue (collPara, 'WWW') > 0.45;"
)

QUERY_TWO = (
    "ACCESS d -> getAttributeValue ('TITLE') "
    "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
    "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
    "p1 -> getNext() == p2 AND "
    "p1 -> getContaining ('MMFDOC') == d AND "
    "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
    "p2 -> getIRSValue (collPara, 'NII') > 0.4;"
)


@pytest.fixture(scope="module")
def journal():
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    documents = [
        build_document(
            "Hit",
            [
                "the www hypertext web and browsers are growing",
                "the nii infrastructure funding policy debate continues",
                "completely unrelated filler paragraph text here",
            ],
            year="1994",
        ),
        build_document(
            "WrongOrder",
            [
                "the nii infrastructure network expands",
                "the www web keeps growing quickly",
            ],
            year="1994",
        ),
        build_document(
            "Together",
            ["the www and the nii converge in one paragraph"],
            year="1994",
        ),
    ]
    for document in documents:
        system.add_document(document, dtd=dtd)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


class TestExplainOnPaperQueries:
    def test_query_one_rows_match_plain_execution(self, journal):
        system, collection = journal
        bindings = {"collPara": collection}
        result = system.explain(QUERY_ONE, bindings)
        assert result.rows == system.query(QUERY_ONE, bindings)

    def test_query_one_stage_tree_covers_all_layers(self, journal):
        system, collection = journal
        # Empty the persistent result buffer so the IRS engine is consulted
        # and the irs.query stage shows up in the trace.
        collection.set("buffer", {})
        result = system.explain(QUERY_ONE, {"collPara": collection})
        stages = result.stage_names()
        assert "oodb.query" in stages
        assert "oodb.query.candidates" in stages
        assert "oodb.query.join" in stages
        assert "coupling.findIRSValue" in stages
        assert "coupling.getIRSResult" in stages
        assert "irs.query" in stages

    def test_query_two_stage_tree_and_rows(self, journal):
        system, collection = journal
        result = system.explain(QUERY_TWO, {"collPara": collection})
        assert result.rows == [("Hit",)]
        stages = result.stage_names()
        assert {"oodb.query", "coupling.findIRSValue", "irs.query"} <= stages

    def test_render_includes_plan_counters_and_tree(self, journal):
        system, collection = journal
        result = system.explain(QUERY_ONE, {"collPara": collection})
        text = result.render()
        assert "p IN PARA" in text
        assert "tuples_examined=" in text
        assert "oodb.query" in text
        assert "ms" in text

    def test_explain_works_while_instrumentation_disabled(self, journal):
        system, collection = journal
        collection.set("buffer", {})
        obs.disable()
        try:
            result = system.explain(QUERY_ONE, {"collPara": collection})
            assert result.root is not None
            assert "irs.query" in result.stage_names()
        finally:
            obs.enable()

    def test_explain_does_not_pollute_global_tracer(self, journal):
        system, collection = journal
        with obs.instrumentation() as (tracer, _metrics):
            system.explain(QUERY_ONE, {"collPara": collection})
            assert tracer.finished_traces() == []


class TestSlowQueryLog:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold=0.1, capacity=4)
        assert not log.record("vql", "fast query", 0.05)
        assert log.record("vql", "slow query", 0.2, rows=3)
        assert len(log) == 1
        (entry,) = log.entries()
        assert entry.kind == "vql"
        assert entry.seconds == 0.2
        assert entry.info == {"rows": 3}

    def test_capacity_is_bounded(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        for i in range(5):
            log.record("irs", f"q{i}", 1.0)
        assert [e.text for e in log.entries()] == ["q3", "q4"]

    def test_zero_threshold_logs_real_queries(self, journal):
        system, collection = journal
        obs.configure(slow_query_seconds=0.0)
        try:
            obs.slow_log().clear()
            system.query(QUERY_ONE, {"collPara": collection})
            kinds = {e.kind for e in obs.slow_log().entries()}
            assert "vql" in kinds
        finally:
            obs.configure(slow_query_seconds=0.25)
            obs.slow_log().clear()
