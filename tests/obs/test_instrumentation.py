"""Cross-layer instrumentation: WAL, recovery, transactions, locks."""

import threading

import pytest

from repro import obs
from repro.errors import DeadlockError
from repro.oodb.database import Database
from repro.oodb.locks import LockManager, LockMode


@pytest.fixture()
def instruments():
    with obs.instrumentation() as (tracer, metrics):
        yield tracer, metrics


class TestTransactionMetrics:
    def test_begin_commit_abort_counters(self, instruments):
        _tracer, metrics = instruments
        db = Database()
        db.define_class("P", attributes={"x": "INT"})
        txn = db.begin()
        db.create_object("P", x=1)
        txn.commit()
        txn = db.begin()
        db.create_object("P", x=2)
        txn.rollback()
        counters = metrics.snapshot()["counters"]
        assert counters["oodb.txn.begins"] == 2
        assert counters["oodb.txn.commits"] == 1
        assert counters["oodb.txn.aborts"] == 1
        assert counters["oodb.wal.appends"] > 0


class TestWalAndRecoveryMetrics:
    def test_recovery_metrics_after_simulated_crash(self, tmp_path):
        directory = str(tmp_path / "db")
        db = Database(directory=directory)
        db.define_class("DOC", attributes={"title": "STRING"})
        txn = db.begin()
        db.create_object("DOC", title="committed-1")
        db.create_object("DOC", title="committed-2")
        txn.commit()
        txn = db.begin()
        db.create_object("DOC", title="never-committed")
        # Crash: no commit, no checkpoint, just drop the handle.
        db._wal.close()

        with obs.instrumentation() as (_tracer, metrics):
            recovered = Database(directory=directory)
            assert recovered.object_count() == 2
            snapshot = metrics.snapshot()
            assert snapshot["counters"]["oodb.recovery.runs"] == 1
            # 1 SCHEMA (define_class DDL) + 2 CREATEs + 2 title WRITEs
            # from the committed transactions.
            assert snapshot["counters"]["oodb.recovery.records_replayed"] == 5
            assert snapshot["gauges"]["oodb.recovery.last_records"] == 5
            assert snapshot["gauges"]["oodb.recovery.last_seconds"] > 0.0

    def test_recovery_emits_span(self, tmp_path):
        directory = str(tmp_path / "db")
        db = Database(directory=directory)
        db.define_class("DOC", attributes={"title": "STRING"})
        db.create_object("DOC", title="autocommitted")
        db._wal.close()
        with obs.instrumentation() as (tracer, _metrics):
            Database(directory=directory)
            names = [root.name for root in tracer.finished_traces()]
            assert "oodb.recovery" in names
            root = next(r for r in tracer.finished_traces() if r.name == "oodb.recovery")
            assert root.attributes["records_replayed"] > 0

    def test_fsync_and_checkpoint_metrics(self, tmp_path, instruments):
        _tracer, metrics = instruments
        db = Database(directory=str(tmp_path / "db"))
        db.define_class("P", attributes={"x": "INT"})
        db.create_object("P", x=1)  # autocommit -> COMMIT record -> fsync
        db.checkpoint()
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["oodb.wal.fsyncs"] >= 2
        assert snapshot["counters"]["oodb.checkpoints"] == 1
        assert snapshot["histograms"]["oodb.wal.fsync_seconds"]["count"] >= 2
        assert snapshot["histograms"]["oodb.checkpoint.seconds"]["count"] == 1


class TestLockMetrics:
    def test_lock_wait_is_counted_and_timed(self, instruments):
        _tracer, metrics = instruments
        manager = LockManager(timeout=5.0)
        manager.acquire(1, "obj", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def contender():
            manager.acquire(2, "obj", LockMode.SHARED)
            acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        # Give the contender time to start waiting, then release.
        while metrics.snapshot()["counters"].get("oodb.lock.waits", 0) == 0:
            if acquired.is_set():  # pragma: no cover - lost the race, still fine
                break
        manager.release_all(1)
        thread.join(timeout=5.0)
        assert acquired.is_set()
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["oodb.lock.waits"] == 1
        assert snapshot["histograms"]["oodb.lock.wait_seconds"]["count"] == 1

    def test_deadlock_is_counted(self, instruments):
        _tracer, metrics = instruments
        manager = LockManager(timeout=5.0)
        manager.acquire(1, "a", LockMode.EXCLUSIVE)
        manager.acquire(2, "b", LockMode.EXCLUSIVE)
        failures = []

        def txn1():
            try:
                manager.acquire(1, "b", LockMode.EXCLUSIVE)
            except DeadlockError:
                failures.append(1)
                manager.release_all(1)

        thread = threading.Thread(target=txn1)
        thread.start()
        try:
            manager.acquire(2, "a", LockMode.EXCLUSIVE)
        except DeadlockError:
            failures.append(2)
            manager.release_all(2)
        thread.join(timeout=5.0)
        assert failures  # at least one side was chosen as victim
        assert metrics.snapshot()["counters"]["oodb.lock.deadlocks"] >= 1


class TestQueryMetrics:
    def test_query_span_and_histogram(self, instruments):
        tracer, metrics = instruments
        db = Database()
        db.define_class("P", attributes={"x": "INT"})
        for i in range(4):
            db.create_object("P", x=i)
        rows = db.query("ACCESS p FROM p IN P WHERE p.x >= 2;")
        assert len(rows) == 2
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["oodb.query.executed"] == 1
        assert snapshot["histograms"]["oodb.query.seconds"]["count"] == 1
        root = tracer.last_trace()
        assert root.name == "oodb.query"
        assert root.attributes["rows"] == 2
        child_names = {c.name for c in root.children}
        assert {"oodb.query.candidates", "oodb.query.join"} <= child_names

    def test_disabled_instrumentation_records_nothing(self):
        obs.disable()
        try:
            db = Database()
            db.define_class("P", attributes={"x": "INT"})
            db.create_object("P", x=1)
            db.query("ACCESS p FROM p IN P;")
            assert obs.metrics().snapshot() == {
                "counters": {},
                "gauges": {},
                "histograms": {},
                "rolling": {},
            }
            assert obs.tracer().last_trace() is None
        finally:
            obs.enable()
