"""RollingHistogram: bucketing, percentiles, window expiry, thread safety."""

from __future__ import annotations

import json
import threading

from repro.obs.histogram import NOOP_ROLLING, NoopRollingHistogram, RollingHistogram


class FakeClock:
    """A controllable monotonic clock for window-expiry tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBucketsAndPercentiles:
    def test_empty_snapshot_is_zeroed(self):
        hist = RollingHistogram()
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["p999"] == 0.0
        assert snap["min"] is None and snap["max"] is None

    def test_percentiles_are_monotone_and_clamped(self):
        hist = RollingHistogram()
        for value in [0.001] * 90 + [0.05] * 9 + [1.0]:
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["p999"]
        # Log-bucket estimates stay within the bucket's relative error and
        # inside the window's observed range.
        assert snap["min"] == 0.001 and snap["max"] == 1.0
        assert 0.0009 <= snap["p50"] <= 0.0012
        assert snap["p999"] == 1.0  # clamped to the observed max

    def test_out_of_range_values_clamp_to_edge_buckets(self):
        hist = RollingHistogram(lo=1e-3, hi=1.0)
        hist.observe(1e-9)  # below lo
        hist.observe(50.0)  # above hi
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == 1e-9 and snap["max"] == 50.0

    def test_fraction_above_threshold(self):
        hist = RollingHistogram()
        for value in [0.001] * 50 + [0.1] * 50:
            hist.observe(value)
        assert hist.fraction_above(0.01) == 0.5
        assert hist.fraction_above(1e-9) == 1.0
        assert hist.fraction_above(100.0) == 0.0

    def test_snapshot_is_json_encodable(self):
        hist = RollingHistogram()
        hist.observe(0.01)
        json.dumps(hist.snapshot())


class TestWindowExpiry:
    def test_old_slices_age_out(self):
        clock = FakeClock()
        hist = RollingHistogram(window_seconds=60.0, slices=12, clock=clock)
        for _ in range(10):
            hist.observe(0.005)
        assert hist.snapshot()["count"] == 10
        clock.advance(30.0)  # still inside the window
        hist.observe(0.005)
        assert hist.snapshot()["count"] == 11
        clock.advance(61.0)  # everything from before is now out of window
        assert hist.snapshot()["count"] == 0
        hist.observe(0.002)
        assert hist.snapshot()["count"] == 1

    def test_slice_reuse_does_not_resurrect_old_counts(self):
        clock = FakeClock()
        hist = RollingHistogram(window_seconds=12.0, slices=3, clock=clock)
        hist.observe(0.001)
        # Land exactly on the slice that will be recycled.
        clock.advance(12.0)
        hist.observe(0.1)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 0.1

    def test_reset_clears_everything(self):
        hist = RollingHistogram()
        hist.observe(0.5)
        hist.reset()
        assert hist.snapshot()["count"] == 0


class TestConcurrency:
    def test_concurrent_observes_lose_nothing(self):
        hist = RollingHistogram()
        per_thread, threads = 2000, 8

        def pound():
            for _ in range(per_thread):
                hist.observe(0.001)

        workers = [threading.Thread(target=pound) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert hist.snapshot()["count"] == per_thread * threads


class TestNoop:
    def test_noop_swallows_and_reports_empty(self):
        assert isinstance(NOOP_ROLLING, NoopRollingHistogram)
        NOOP_ROLLING.observe(1.0)
        snap = NOOP_ROLLING.snapshot()
        assert snap["count"] == 0 and snap["p50"] == 0.0
        assert NOOP_ROLLING.percentile(0.99) == 0.0
        assert NOOP_ROLLING.fraction_above(0.0) == 0.0
