"""Span nesting, ring buffering, and JSONL round-trips."""

import json
import threading

import pytest

from repro.obs import (
    JsonlSpanExporter,
    NoopTracer,
    Tracer,
    load_spans,
    render_span_tree,
    trim,
)


class TestSpanNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child.a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child.b"):
                pass
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert root.span_count() == 4

    def test_attributes_from_kwargs_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("op", collection="collPara") as span:
            span.set_attribute("rows", 7)
        assert span.attributes == {"collection": "collPara", "rows": 7}

    def test_durations_are_measured_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        root = tracer.last_trace()
        assert root.duration > 0.0
        assert root.children[0].duration <= root.duration

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("a"):
            assert tracer.current_span().name == "a"
            with tracer.span("b"):
                assert tracer.current_span().name == "b"
            assert tracer.current_span().name == "a"
        assert tracer.current_span() is None

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("will-fail"):
                raise ValueError("boom")
        root = tracer.last_trace()
        assert root.name == "will-fail"
        assert "boom" in root.attributes["error"]

    def test_trace_and_parent_ids_link_spans(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert child.trace_id == root.trace_id == root.span_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_threads_get_independent_stacks(self):
        tracer = Tracer(ring_size=8)
        seen = []

        def work(name):
            with tracer.span(name):
                seen.append(tracer.current_span().name)

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        with tracer.span("main-root"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Worker spans never attached under this thread's root.
            assert tracer.current_span().name == "main-root"
        roots = {s.name for s in tracer.finished_traces()}
        assert roots == {"main-root", "t0", "t1", "t2", "t3"}
        assert all(not s.children for s in tracer.finished_traces() if s.name != "main-root")


class TestRingAndCaps:
    def test_ring_keeps_only_last_n_roots(self):
        tracer = Tracer(ring_size=3)
        for i in range(5):
            with tracer.span(f"r{i}"):
                pass
        assert [s.name for s in tracer.finished_traces()] == ["r2", "r3", "r4"]
        assert tracer.last_trace().name == "r4"
        tracer.clear()
        assert tracer.finished_traces() == []

    def test_span_cap_drops_descendants_and_annotates_root(self):
        # The cap counts the whole trace, root included: 1 root + 2 children.
        tracer = Tracer(max_spans_per_trace=3)
        with tracer.span("root"):
            for i in range(10):
                with tracer.span(f"c{i}"):
                    pass
        root = tracer.last_trace()
        assert len(root.children) == 2
        assert root.attributes["dropped_spans"] == 8


class TestNoopTracer:
    def test_noop_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("anything", x=1) as span:
            span.set_attribute("y", 2)
        assert tracer.last_trace() is None
        assert tracer.finished_traces() == []
        assert tracer.current_span() is None


class TestJsonlRoundTrip:
    def test_export_and_load_rebuilds_tree(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(exporter=JsonlSpanExporter(path))
        with tracer.span("root", query="q1") as original:
            with tracer.span("child.a", n=1):
                pass
            with tracer.span("child.b"):
                with tracer.span("leaf"):
                    pass
        roots = load_spans(path)
        assert len(roots) == 1
        loaded = roots[0]
        assert loaded.name == "root"
        assert loaded.attributes == {"query": "q1"}
        assert [c.name for c in loaded.children] == ["child.a", "child.b"]
        assert loaded.children[1].children[0].name == "leaf"
        assert loaded.duration == pytest.approx(original.duration)
        assert loaded.span_count() == original.span_count()

    def test_multiple_roots_accumulate(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSpanExporter(path) as exporter:
            tracer = Tracer(exporter=exporter)
            for i in range(3):
                with tracer.span(f"r{i}"):
                    pass
        assert [r.name for r in load_spans(path)] == ["r0", "r1", "r2"]

    def test_non_json_attribute_values_are_stringified(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(exporter=JsonlSpanExporter(path))
        with tracer.span("root", obj=object()):
            pass
        (root,) = load_spans(path)
        assert isinstance(root.attributes["obj"], str)


class TestConcurrentExport:
    """Concurrent sessions share one Tracer and one JSONL exporter.

    Every worker finishing a root span triggers an export; without the
    exporter's write lock lines interleave (torn JSON) and without the
    tracer's ring lock roots get dropped.
    """

    THREADS = 8
    ROOTS_PER_THREAD = 25

    def test_no_torn_lines_and_no_dropped_roots(self, tmp_path):
        path = str(tmp_path / "concurrent.jsonl")
        total = self.THREADS * self.ROOTS_PER_THREAD
        tracer = Tracer(exporter=JsonlSpanExporter(path), ring_size=total)

        def session(worker_id):
            for i in range(self.ROOTS_PER_THREAD):
                with tracer.span("service.request", worker=worker_id, seq=i):
                    with tracer.span("irs.query", model="inquery"):
                        pass

        workers = [
            threading.Thread(target=session, args=(w,)) for w in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        # Every line must parse on its own — a torn write breaks json here.
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == total * 2  # each root carries one child span

        roots = load_spans(path)
        assert len(roots) == total
        seen = {(r.attributes["worker"], r.attributes["seq"]) for r in roots}
        assert len(seen) == total  # no root dropped, none duplicated
        assert all(
            [c.name for c in root.children] == ["irs.query"] for root in roots
        )

    def test_ring_stays_bounded_under_concurrency(self, tmp_path):
        tracer = Tracer(
            exporter=JsonlSpanExporter(str(tmp_path / "ring.jsonl")), ring_size=16
        )

        def session():
            for _ in range(50):
                with tracer.span("service.request"):
                    pass

        workers = [threading.Thread(target=session) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(tracer.finished_traces()) == 16


class TestRendering:
    def _tree(self, child_count):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(child_count):
                with tracer.span("leaf"):
                    pass
        return tracer.last_trace()

    def test_tree_renderer_shows_connectors_and_ms(self):
        text = render_span_tree(self._tree(2))
        assert text.splitlines()[0].startswith("root")
        assert "├─ leaf" in text
        assert "└─ leaf" in text
        assert "ms" in text

    def test_many_same_name_siblings_collapse(self):
        text = render_span_tree(self._tree(10), max_siblings=3)
        assert text.count("leaf") == 2  # one representative + one summary
        assert "×9 more leaf" in text

    def test_trim_caps_long_values(self):
        assert trim("x" * 500, limit=100).startswith("x" * 99)
        assert len(trim("x" * 500, limit=100)) == 100
        assert trim("short") == "short"
