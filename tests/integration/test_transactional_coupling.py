"""Database features apply to the coupling "for free" (Section 3).

The paper's decisive argument for the DBMS-as-control architecture: the
coupling is ordinary database schema, so transactions, recovery and
persistence cover COLLECTION state — buffers, pending operations, document
maps — without any extra machinery.  These tests pin that down.
"""

import pytest

from repro.core.collection import _create_collection, _get_irs_result, index_objects


@pytest.fixture
def setup(mmf_system, para_collection):
    para_collection.set("update_policy", "deferred")
    return mmf_system, para_collection


class TestTransactionalCouplingState:
    def test_rollback_undoes_pending_operations(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        txn = system.db.begin()
        collection.send("modifyObject", para)
        assert collection.get("pending_ops")
        txn.rollback()
        # The operation log is a database attribute: rolled back with the txn.
        assert collection.get("pending_ops") == []

    def test_commit_keeps_pending_operations(self, setup):
        system, collection = setup
        para = system.db.instances_of("PARA")[0]
        with system.db.begin():
            collection.send("modifyObject", para)
        assert collection.get("pending_ops") == [["modify", str(para.oid)]]

    def test_rollback_undoes_buffer_population(self, setup):
        system, collection = setup
        txn = system.db.begin()
        _get_irs_result(collection, "telnet")
        assert collection.get("buffer")
        txn.rollback()
        assert not collection.get("buffer")

    def test_rollback_undoes_collection_creation(self, setup):
        system, _collection = setup
        txn = system.db.begin()
        fresh = _create_collection(system.db, "rollback_me", "ACCESS p FROM p IN PARA")
        txn.rollback()
        assert not system.db.object_exists(fresh.oid)
        # Note: the external IRS collection is not transactional (it lives
        # outside the DBMS) — exactly the loose-coupling boundary the paper
        # discusses; the application re-creates or drops it.
        assert system.engine.has_collection("rollback_me")

    def test_editorial_transaction_rolls_back_document_and_notification(self, setup):
        system, collection = setup
        count_before = len(system.db.instances_of("PARA"))
        txn = system.db.begin()
        para = system.loader.insert_element(system.roots[0], "PARA", "draft text")
        collection.send("insertObject", para)
        txn.rollback()
        assert len(system.db.instances_of("PARA")) == count_before
        assert collection.get("pending_ops") == []
        # A later query sees no trace of the draft.
        values = _get_irs_result(collection, "draft")
        assert values == {}

    def test_derivation_settings_transactional(self, setup):
        system, collection = setup
        txn = system.db.begin()
        collection.set("derivation", "average")
        txn.rollback()
        assert collection.get("derivation") == "maximum"
