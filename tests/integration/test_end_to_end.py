"""Whole-stack integration: documents in, coupled retrieval out."""

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.sgml.mmf import build_document, mmf_dtd
from repro.workloads.corpus import CorpusGenerator, load_corpus


class TestOverlappingCollections:
    """Figure 2: overlapping collections over one document base."""

    @pytest.fixture
    def two_collections(self, corpus_system):
        paras = _create_collection(
            corpus_system.db, "paras", "ACCESS p FROM p IN PARA"
        )
        index_objects(paras)
        docs = _create_collection(
            corpus_system.db, "docs", "ACCESS d FROM d IN MMFDOC",
            text_mode=0,
        )
        index_objects(docs)
        return corpus_system, paras, docs

    def test_object_in_two_collections_with_different_text(self, two_collections):
        system, paras, docs = two_collections
        para = system.db.instances_of("PARA")[0]
        doc = para.send("getContaining", "MMFDOC")
        assert paras.send("containsObject", para)
        assert docs.send("containsObject", doc)

    def test_same_query_different_context(self, two_collections):
        system, paras, docs = two_collections
        para_result = _get_irs_result(paras, "www")
        doc_result = _get_irs_result(docs, "www")
        # Values are keyed by different object populations.
        para_classes = {system.db.get_object(oid).class_name for oid in para_result}
        doc_classes = {system.db.get_object(oid).class_name for oid in doc_result}
        assert para_classes <= {"PARA"}
        assert doc_classes <= {"MMFDOC"}

    def test_collections_are_independent(self, two_collections):
        system, paras, docs = two_collections
        _get_irs_result(paras, "www")
        assert paras.get("buffer")
        assert not docs.get("buffer")


class TestRetrievalModelExchangeability:
    """Section 3: boolean, vector and probabilistic IRSs behind one coupling."""

    @pytest.mark.parametrize("model", ["boolean", "vector", "inquery"])
    def test_coupling_works_with_every_model(self, corpus_system, model):
        collection = _create_collection(
            corpus_system.db, f"coll_{model}", "ACCESS p FROM p IN PARA",
            model=model,
        )
        index_objects(collection)
        values = _get_irs_result(collection, "www")
        assert values
        assert all(0 < v <= 1 for v in values.values())

    def test_mixed_query_independent_of_model(self, corpus_system):
        results = {}
        for model in ("boolean", "inquery"):
            collection = _create_collection(
                corpus_system.db, f"c_{model}", "ACCESS p FROM p IN PARA",
                model=model,
            )
            index_objects(collection)
            rows = corpus_system.db.query(
                "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(c, 'www') > 0.0",
                {"c": collection},
            )
            results[model] = {str(r[0].oid) for r in rows}
        # boolean retrieves exactly the www paragraphs; inquery at > 0 too.
        assert results["boolean"] == results["inquery"]


class TestDurability:
    def test_full_stack_survives_restart(self, tmp_path):
        path = str(tmp_path)
        generator = CorpusGenerator(seed=3)
        with DocumentSystem(directory=path) as system:
            load_corpus(system, generator.corpus(documents=4))
            collection = _create_collection(
                system.db, "collPara", "ACCESS p FROM p IN PARA"
            )
            index_objects(collection)
            before = _get_irs_result(collection, "www")
            collection_oid = collection.oid

        with DocumentSystem(directory=path) as reopened:
            revived = reopened.db.get_object(collection_oid)
            # Coupling state survived in the database ...
            assert revived.get("spec_query") == "ACCESS p FROM p IN PARA"
            buffered = revived.get("buffer")
            assert any("www" in key for key in buffered)
            assert revived.send("memberCount") == len(
                reopened.db.instances_of("PARA")
            )
            # ... and the IRS inverted index itself was reloaded from disk:
            # a *new* query (not buffered) answers identically.
            revived.set("buffer", {})
            assert _get_irs_result(revived, "www") == before

    def test_irs_engine_persistence_round_trip(self, tmp_path, corpus_system):
        from repro.irs.persistence import load_engine, save_engine

        collection = _create_collection(
            corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
        )
        index_objects(collection)
        before = corpus_system.engine.query("collPara", "www").values
        save_engine(corpus_system.engine, str(tmp_path))
        restored = load_engine(str(tmp_path))
        assert restored.query("collPara", "www").values == before


class TestDocumentLifecycle:
    def test_add_query_delete_cycle(self, system):
        dtd = mmf_dtd()
        system.register_dtd(dtd)
        collection = _create_collection(
            system.db, "collPara", "ACCESS p FROM p IN PARA",
            update_policy="deferred",
        )
        root = system.add_document(
            build_document("Cycle", ["gopher protocol text here"]), dtd=dtd
        )
        index_objects(collection)
        assert _get_irs_result(collection, "gopher")

        # Delete the document; notify; the next query must not see it.
        for para in root.send("getDescendants", "PARA"):
            collection.send("deleteObject", para)
        system.delete_document(root)
        values = _get_irs_result(collection, "gopher")
        assert values == {}
