"""The two mixed queries of Section 4.4, end to end and verbatim."""

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, index_objects
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture(scope="module")
def journal():
    """An MMF journal with known ground truth for the paper's queries."""
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    documents = [
        # 1994 document with a WWW paragraph immediately followed by NII.
        build_document(
            "Hit",
            [
                "the www hypertext web and browsers are growing",
                "the nii infrastructure funding policy debate continues",
                "completely unrelated filler paragraph text here",
            ],
            year="1994",
        ),
        # 1994 document with the right paragraphs but in the wrong order.
        build_document(
            "WrongOrder",
            [
                "the nii infrastructure network expands",
                "the www web keeps growing quickly",
            ],
            year="1994",
        ),
        # 1993 document with the right consecutive paragraphs (wrong year).
        build_document(
            "WrongYear",
            [
                "the www web hypertext pages multiply",
                "the nii policy for information infrastructure",
            ],
            year="1993",
        ),
        # 1994 document with the topics in the same paragraph (not consecutive ones).
        build_document(
            "Together",
            ["the www and the nii converge in one paragraph"],
            year="1994",
        ),
    ]
    for document in documents:
        system.add_document(document, dtd=dtd)
    collection = _create_collection(
        system.db, "collPara", "ACCESS p FROM p IN PARA"
    )
    index_objects(collection)
    return system, collection


QUERY_ONE = (
    "ACCESS p, p -> length() FROM p IN PARA "
    "WHERE p -> getIRSValue (collPara, 'WWW') > 0.45;"
)

QUERY_TWO = (
    "ACCESS d -> getAttributeValue ('TITLE') "
    "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
    "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
    "p1 -> getNext() == p2 AND "
    "p1 -> getContaining ('MMFDOC') == d AND "
    "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
    "p2 -> getIRSValue (collPara, 'NII') > 0.4;"
)


class TestQueryOne:
    def test_returns_www_paragraphs_with_lengths(self, journal):
        system, collection = journal
        rows = system.query(QUERY_ONE, {"collPara": collection})
        assert rows
        for obj, length in rows:
            assert obj.class_name == "PARA"
            assert length == len(obj.send("getTextContent"))
            assert "www" in obj.send("getTextContent").lower()

    def test_threshold_filters(self, journal):
        system, collection = journal
        low = system.query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.41",
            {"collPara": collection},
        )
        high = system.query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'WWW') > 0.99",
            {"collPara": collection},
        )
        assert len(high) < len(low)
        assert high == []


class TestQueryTwo:
    def test_exactly_the_hit_document(self, journal):
        system, collection = journal
        rows = system.query(QUERY_TWO, {"collPara": collection})
        assert rows == [("Hit",)]

    def test_year_predicate_matters(self, journal):
        system, collection = journal
        rows = system.query(
            QUERY_TWO.replace("'1994'", "'1993'"), {"collPara": collection}
        )
        assert rows == [("WrongYear",)]

    def test_adjacency_predicate_matters(self, journal):
        # Without getNext, WrongOrder would also qualify.
        system, collection = journal
        relaxed = (
            "ACCESS d -> getAttributeValue ('TITLE') "
            "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
            "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
            "p1 -> getContaining ('MMFDOC') == d AND "
            "p2 -> getContaining ('MMFDOC') == d AND "
            "NOT p1 == p2 AND "
            "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
            "p2 -> getIRSValue (collPara, 'NII') > 0.4;"
        )
        titles = {row[0] for row in system.query(relaxed, {"collPara": collection})}
        assert "WrongOrder" in titles
        assert "Hit" in titles
