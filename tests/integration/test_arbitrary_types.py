"""Arbitrary document types (Section 4.1) and ranked mixed queries.

"An important feature of our database application is the possibility to
manage documents of arbitrary types, i.e., not to be restricted to a rigid
set of SGML DTDs."
"""

import pytest

from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.sgml.dtd import parse_dtd
from repro.sgml.mmf import build_document, mmf_dtd

LETTER_DTD = """
<!ELEMENT LETTER   - - (SENDER, RECIPIENT, BODY)>
<!ELEMENT SENDER   - - (#PCDATA)>
<!ELEMENT RECIPIENT - - (#PCDATA)>
<!ELEMENT BODY     - - (GREETING?, PARA+)>
<!ELEMENT GREETING - - (#PCDATA)>
<!ELEMENT PARA     - - (#PCDATA)>
<!ATTLIST LETTER   DATE CDATA #IMPLIED>
"""

LETTER = """
<LETTER DATE="1994-06-01">
<SENDER>aberer</SENDER>
<RECIPIENT>croft</RECIPIENT>
<BODY>
<GREETING>Dear colleague</GREETING>
<PARA>our www coupling prototype now answers mixed queries</PARA>
<PARA>the inquery operators behave exactly as documented</PARA>
</BODY>
</LETTER>
"""


@pytest.fixture
def multi(system):
    mmf = mmf_dtd()
    letters = parse_dtd(LETTER_DTD, name="letters")
    system.register_dtd(mmf)
    system.register_dtd(letters)
    system.add_document(
        build_document("Journal piece", ["the www keeps growing and growing"]),
        dtd=mmf,
    )
    system.add_document(LETTER, dtd=letters)
    return system


class TestCoexistingTypes:
    def test_shared_element_classes_are_shared(self, multi):
        # PARA exists in both DTDs; one class serves both document types.
        paras = multi.db.instances_of("PARA")
        roots = {p.send("getRoot").class_name for p in paras}
        assert roots == {"MMFDOC", "LETTER"}

    def test_type_specific_classes_coexist(self, multi):
        assert multi.db.schema.has_class("SENDER")
        assert multi.db.schema.has_class("DOCTITLE")
        assert multi.db.schema.is_subclass("SENDER", "IRSObject")

    def test_collection_spans_document_types(self, multi):
        collection = _create_collection(multi.db, "all_paras", "ACCESS p FROM p IN PARA")
        index_objects(collection)
        assert collection.send("memberCount") == 3

    def test_mixed_query_across_types(self, multi):
        collection = _create_collection(multi.db, "c", "ACCESS p FROM p IN PARA")
        index_objects(collection)
        rows = multi.query(
            "ACCESS p -> getRoot() FROM p IN PARA "
            "WHERE p -> getIRSValue(c, 'www') > 0.45",
            {"c": collection},
        )
        root_classes = {row[0].class_name for row in rows}
        assert root_classes == {"MMFDOC", "LETTER"}

    def test_structure_queries_per_type(self, multi):
        rows = multi.query(
            "ACCESS l -> getAttributeValue('DATE') FROM l IN LETTER"
        )
        assert rows == [("1994-06-01",)]

    def test_element_extent_covers_everything(self, multi):
        all_elements = multi.db.instances_of("Element")
        assert len(all_elements) == multi.db.object_count()


class TestRankedMixedQueries:
    """Vague information needs: ranked results via ORDER BY getIRSValue."""

    @pytest.fixture
    def ranked_setup(self, corpus_system):
        collection = _create_collection(
            corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
        )
        index_objects(collection)
        return corpus_system, collection

    def test_order_by_relevance_descending(self, ranked_setup):
        system, collection = ranked_setup
        rows = system.db.query(
            "ACCESS p, p -> getIRSValue(c, 'www') FROM p IN PARA "
            "WHERE p -> getIRSValue(c, 'www') > 0.4 "
            "ORDER BY p -> getIRSValue(c, 'www') DESC",
            {"c": collection},
        )
        values = [value for _obj, value in rows]
        assert values == sorted(values, reverse=True)
        assert values

    def test_top_k(self, ranked_setup):
        system, collection = ranked_setup
        matched = _get_irs_result(collection, "www")
        rows = system.db.query(
            "ACCESS p FROM p IN PARA "
            "WHERE p -> getIRSValue(c, 'www') > 0.0 "
            "ORDER BY p -> getIRSValue(c, 'www') DESC LIMIT 3",
            {"c": collection},
        )
        assert len(rows) == min(3, len(matched))

    def test_ranking_matches_irs_ranking(self, ranked_setup):
        system, collection = ranked_setup
        rows = system.db.query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(c, 'nii') > 0.0 "
            "ORDER BY p -> getIRSValue(c, 'nii') DESC",
            {"c": collection},
        )
        values = _get_irs_result(collection, "nii")
        expected = sorted(values, key=lambda o: -values[o])
        assert [row[0].oid for row in rows] == expected
