"""The full MultiMedia Forum scenario (Section 1), end to end.

"The reader of such a journal may either access a document by means of a
particular issue's table of content, by following hypertext links, or by
database queries ... the editorial team may add or modify documents or
document components at any time ... it would also be advantageous to allow
for formulating information needs with a certain degree of vagueness."

One test class per access path, all over a single shared journal issue,
finishing with the editorial workflow and HTML publishing.
"""

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.hypermedia import create_link, wire_sgml_links
from repro.hypermedia.links import IMPLIES, neighbours_out
from repro.sgml.export import HTMLExporter
from repro.sgml.mmf import build_document, mmf_dtd


@pytest.fixture(scope="class")
def journal():
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    articles = [
        build_document(
            "The Web Explosion",
            [
                "the www grew beyond all projections this year",
                "hypertext browsers multiplied across platforms",
            ],
            abstract="how the www took over",
            year="1994",
            author="volz",
        ),
        build_document(
            "Funding the NII",
            [
                "the nii program finances backbone infrastructure",
                "regional networks connect through federal funding",
            ],
            year="1994",
            author="aberer",
            doc_type="report",
        ),
        build_document(
            "Telnet Retrospective",
            ["telnet served a decade of remote terminal sessions"],
            year="1993",
            author="boehm",
        ),
    ]
    roots = [system.add_document(a, dtd=dtd) for a in articles]
    collection = _create_collection(
        system.db, "collPara", "ACCESS p FROM p IN PARA", update_policy="deferred"
    )
    index_objects(collection)
    # Hypertext: the web article's last paragraph implies the NII article's first.
    web_paras = roots[0].send("getDescendants", "PARA")
    nii_paras = roots[1].send("getDescendants", "PARA")
    create_link(system.db, web_paras[-1], nii_paras[0], IMPLIES)
    return system, roots, collection


class TestReaderAccessPaths:
    def test_table_of_contents(self, journal):
        system, roots, _collection = journal
        toc = system.query(
            "ACCESS d -> getAttributeValue('TITLE'), d -> getAttributeValue('AUTHOR') "
            "FROM d IN MMFDOC ORDER BY d -> getAttributeValue('TITLE')"
        )
        assert [title for title, _author in toc] == [
            "Funding the NII", "Telnet Retrospective", "The Web Explosion",
        ]

    def test_hypertext_navigation(self, journal):
        system, roots, _collection = journal
        source = roots[0].send("getDescendants", "PARA")[-1]
        targets = neighbours_out(source, IMPLIES)
        assert len(targets) == 1
        assert targets[0].send("getContaining", "MMFDOC") == roots[1]

    def test_attribute_query(self, journal):
        system, _roots, _collection = journal
        reports = system.query(
            "ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC "
            "WHERE d -> getAttributeValue('TYPE') = 'report'"
        )
        assert reports == [("Funding the NII",)]

    def test_vague_information_need_is_ranked(self, journal):
        system, _roots, collection = journal
        ranked = system.query(
            "ACCESS p, p -> getIRSValue(c, '#or(www hypertext)') FROM p IN PARA "
            "WHERE p -> getIRSValue(c, '#or(www hypertext)') > 0.4 "
            "ORDER BY p -> getIRSValue(c, '#or(www hypertext)') DESC",
            {"c": collection},
        )
        assert ranked
        values = [v for _p, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_mixed_query_combining_all_three(self, journal):
        system, _roots, collection = journal
        rows = system.query(
            "ACCESS d -> getAttributeValue('TITLE') "
            "FROM d IN MMFDOC, p IN PARA "
            "WHERE d -> getAttributeValue('YEAR') = '1994' AND "
            "p -> getContaining('MMFDOC') == d AND "
            "p -> getIRSValue(c, 'www') > 0.4",
            {"c": collection},
        )
        assert {title for (title,) in rows} == {"The Web Explosion"}


class TestEditorialWorkflow:
    def test_add_modify_delete_cycle(self, journal):
        system, roots, collection = journal
        editorial = roots[2]
        # Add a component ...
        new_para = system.loader.insert_element(
            editorial, "PARA", "an addendum about gopher services"
        )
        collection.send("insertObject", new_para)
        assert _get_irs_result(collection, "gopher")  # forced propagation
        # ... modify it ...
        system.loader.update_content(new_para, "an addendum about archie instead")
        collection.send("modifyObject", new_para)
        values = _get_irs_result(collection, "archie")
        assert new_para.oid in values
        assert _get_irs_result(collection, "gopher") == {}
        # ... and retract it.
        collection.send("deleteObject", new_para)
        system.loader.remove_element(new_para)
        assert _get_irs_result(collection, "archie") == {}

    def test_declarative_link_wiring(self, journal):
        system, roots, _collection = journal
        follow_up = system.add_document(
            "<MMFDOC TITLE='Follow Up' YEAR='1995'>"
            "<LOGBOOK>l</LOGBOOK><DOCTITLE>Follow Up</DOCTITLE>"
            "<PARA ID='fu1'>building on earlier coverage of the www</PARA>"
            "</MMFDOC>",
            dtd=mmf_dtd(),
        )
        links = wire_sgml_links(system.db, follow_up)
        assert links == []  # no LINKEND attributes here; wiring is a no-op

    def test_publishing_with_highlights(self, journal):
        system, roots, collection = journal
        values = _get_irs_result(collection, "www")
        page = HTMLExporter(highlight_values=values).render_page(roots[0])
        assert "<mark>the www grew beyond all projections" in page
        assert "<h1>The Web Explosion</h1>" in page

    def test_admin_view_of_the_issue(self, journal):
        from repro.core.admin import system_report

        system, _roots, _collection = journal
        report = system_report(system.db)
        assert report["collections"] == 1
        assert report["objects_by_class"]["MMFDOC"] >= 3
