"""Doc-example correctness: run the doctests embedded in docstrings."""

import doctest

import pytest

import repro.irs.porter
import repro.oodb.oid

MODULES = [repro.oodb.oid, repro.irs.porter]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the docstrings really contain examples
