"""Cross-cutting property tests: coupling coherence, SGML round trips,
segmentation, parser robustness."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DocumentSystem
from repro.core.collection import (
    _create_collection,
    _get_irs_result,
    index_objects,
    segment_text,
)
from repro.errors import QuerySyntaxError, ReproError
from repro.oodb.query.parser import parse_query
from repro.sgml.document import Element
from repro.sgml.parser import parse_document, serialize

# ---------------------------------------------------------------------------
# Buffer coherence: a buffered result always equals a freshly computed one.
# ---------------------------------------------------------------------------

_WORDS = ["www", "nii", "telnet", "pages", "network", "policy", "remote"]
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.lists(st.sampled_from(_WORDS), min_size=1, max_size=5)),
        st.tuples(st.just("modify"), st.integers(0, 10)),
        st.tuples(st.just("delete"), st.integers(0, 10)),
        st.tuples(st.just("propagate"), st.just(0)),
        st.tuples(st.just("query"), st.sampled_from(_WORDS)),
    ),
    max_size=12,
)


class TestBufferCoherence:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(_ops)
    def test_buffered_result_matches_fresh_engine_query(self, operations):
        system = DocumentSystem()
        system.db.define_class("Node", superclass="IRSObject", attributes={"content": "STRING"})
        system.db.schema.get_class("Node").add_method(
            "getText", lambda obj, mode=0: obj.get("content") or ""
        )
        collection = _create_collection(
            system.db, "c", "ACCESS n FROM n IN Node", update_policy="deferred"
        )
        index_objects(collection)
        live = []
        for op, arg in operations:
            if op == "insert":
                node = system.db.create_object("Node", content=" ".join(arg))
                live.append(node)
                collection.send("insertObject", node)
            elif op == "modify" and live:
                node = live[arg % len(live)]
                node.set("content", (node.get("content") or "") + " extra")
                collection.send("modifyObject", node)
            elif op == "delete" and live:
                node = live.pop(arg % len(live))
                collection.send("deleteObject", node)
                system.db.delete_object(node)
            elif op == "propagate":
                collection.send("propagateUpdates")
            elif op == "query":
                buffered = _get_irs_result(collection, arg)
                # A second call must hit the buffer and agree exactly.
                again = _get_irs_result(collection, arg)
                assert buffered == again
                # And agree with the engine's fresh computation.
                irs = system.engine.collection("c")
                fresh = system.engine.query("c", arg).by_metadata(irs, "oid")
                assert {str(oid): v for oid, v in buffered.items()} == fresh

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(_WORDS), min_size=1, max_size=6, unique=True))
    def test_doc_map_matches_irs_documents(self, words):
        system = DocumentSystem()
        system.db.define_class("Node", superclass="IRSObject", attributes={"content": "STRING"})
        system.db.schema.get_class("Node").add_method(
            "getText", lambda obj, mode=0: obj.get("content") or ""
        )
        for word in words:
            system.db.create_object("Node", content=word)
        collection = _create_collection(system.db, "c", "ACCESS n FROM n IN Node")
        index_objects(collection)
        doc_map = collection.get("doc_map")
        irs = system.engine.collection("c")
        mapped_ids = sorted(d for ids in doc_map.values() for d in ids)
        assert mapped_ids == [d.doc_id for d in irs.documents()]


# ---------------------------------------------------------------------------
# SGML round trip on random trees
# ---------------------------------------------------------------------------

_tag = st.sampled_from(["DOC", "SEC", "PARA", "NOTE", "ITEM"])
_text = st.text(
    alphabet="abcdefghij klmnop&<>", min_size=1, max_size=30
).filter(lambda s: s.strip())


@st.composite
def _tree(draw, depth=0):
    element = Element(draw(_tag))
    n_children = draw(st.integers(0, 3 if depth < 2 else 0))
    if n_children == 0:
        element.append_text(draw(_text))
    else:
        for _ in range(n_children):
            element.append(draw(_tree(depth + 1)))
    return element


class TestSGMLRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(_tree())
    def test_serialize_parse_preserves_structure(self, tree):
        reparsed = parse_document(serialize(tree))
        assert [e.tag for e in reparsed.iter()] == [e.tag for e in tree.iter()]

    @settings(max_examples=40, deadline=None)
    @given(_tree())
    def test_serialize_parse_preserves_text_words(self, tree):
        reparsed = parse_document(serialize(tree))
        assert reparsed.text().split() == tree.text().split()


# ---------------------------------------------------------------------------
# Segmentation
# ---------------------------------------------------------------------------

class TestSegmentation:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(_WORDS), max_size=120), st.integers(1, 40))
    def test_segments_partition_the_words(self, words, size):
        text = " ".join(words)
        segments = segment_text(text, size)
        assert " ".join(segments).split() == words

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(_WORDS), min_size=1, max_size=120), st.integers(1, 40))
    def test_segment_sizes_bounded(self, words, size):
        segments = segment_text(" ".join(words), size)
        for segment in segments[:-1]:
            assert len(segment.split()) == size
        assert 1 <= len(segments[-1].split()) <= size


# ---------------------------------------------------------------------------
# Query parser robustness: random token soup never crashes unexpectedly
# ---------------------------------------------------------------------------

_soup_token = st.sampled_from(
    ["ACCESS", "FROM", "WHERE", "IN", "AND", "p", "q", "PARA", "->", ".",
     "(", ")", ",", "'x'", "0.5", "=", ">", "getIRSValue", "COUNT", "*",
     "GROUP", "BY", "ORDER", "LIMIT", "3", "$t", ";"]
)


class TestParserRobustness:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(_soup_token, max_size=15))
    def test_parse_or_clean_syntax_error(self, tokens):
        text = " ".join(tokens)
        try:
            parse_query(text)
        except QuerySyntaxError:
            pass  # the only acceptable failure mode
        except ReproError as exc:  # pragma: no cover
            pytest.fail(f"non-syntax repro error from parser: {exc!r}")
