"""Property-based proof that sharded scoring is *exactly* unsharded scoring.

The sharding design note (DESIGN.md §"Sharded scoring") claims bit-identical
results — not approximately equal: the union view sums integer statistics
across shards, norms are accumulated in one canonical term order everywhere,
and the scatter merge keeps the total rank order ``(-value, doc_id)``.  These
tests let hypothesis hunt for a corpus that breaks the claim:

* exhaustive scoring equality (``==`` on the score dicts, no tolerance) for
  shard counts {1, 2, 4, 7} under all three retrieval models;
* top-k equality for k in {1, 10, 100} with deliberate ties at the cut —
  every corpus is doubled so *every* score is tied at least once;
* equality preserved across interleaved adds / removes / replacements
  applied mid-run to both layouts.

Profiles: the default ``shard-fixed`` profile is derandomized (reproducible
CI gate); set ``HYPOTHESIS_PROFILE=shard-random`` for a shorter randomized
pass (CI runs both).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.models import MODELS
from repro.irs.queries import parse_irs_query
from repro.irs.segments import SegmentConfig
from repro.irs.shards import ShardedCollection
from repro.irs.topk import topk_scores, truncate_top_k

settings.register_profile(
    "shard-fixed",
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "shard-random",
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
_SETTINGS = settings.get_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "shard-fixed")
)

SHARD_COUNTS = [1, 2, 4, 7]
TOP_KS = [1, 10, 100]

VOCABULARY = [
    "www", "nii", "telnet", "database", "information", "retrieval",
    "remote", "pages",
] + [f"w{i}" for i in range(20)]

QUERIES = [
    "www",
    "www nii",
    "#sum(www nii telnet)",
    "#and(www nii)",
    "#or(telnet database)",
    "#wsum(2 www 1 nii 0.5 telnet)",
]

_documents = st.lists(
    st.lists(st.sampled_from(VOCABULARY), min_size=1, max_size=12),
    min_size=3,
    max_size=30,
)

_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.lists(st.sampled_from(VOCABULARY), min_size=1, max_size=8),
        ),
        st.tuples(st.just("remove"), st.integers(0, 50)),
        st.tuples(
            st.just("replace"),
            st.tuples(
                st.integers(0, 50),
                st.lists(st.sampled_from(VOCABULARY), min_size=1, max_size=8),
            ),
        ),
    ),
    max_size=10,
)


def build_pair(texts, shard_count, segment_config=None):
    """The same corpus in both layouts; doc ids allocate identically."""
    analyzer = Analyzer()
    plain = IRSCollection("plain", analyzer)
    sharded = ShardedCollection(
        "sharded", analyzer, segment_config=segment_config,
        shard_count=shard_count,
    )
    for text in texts:
        assert plain.add_document(text) == sharded.add_document(text)
    return plain, sharded


def engine_topk(collection, model_name, model_impl, tree, k):
    """Top-k exactly as the engine computes it: pruned, else truncated."""
    outcome = topk_scores(collection, model_name, model_impl, tree, k)
    if outcome.values is not None:
        return outcome.values
    return truncate_top_k(model_impl.score(collection, tree), k)


def ranking(values):
    return sorted(values, key=lambda doc_id: (-values[doc_id], doc_id))


def assert_bit_identical(sharded_values, plain_values, context):
    # Dict equality is float bit-equality here — no tolerance on purpose.
    assert sharded_values == plain_values, (
        f"{context}: sharded scores diverge from unsharded"
    )
    assert ranking(sharded_values) == ranking(plain_values), (
        f"{context}: rank order diverges"
    )


class TestExhaustiveEquivalence:
    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    @_SETTINGS
    @given(_documents)
    def test_all_models_bit_identical(self, shard_count, documents):
        texts = [" ".join(words) for words in documents]
        plain, sharded = build_pair(texts, shard_count)
        for model_name, model_cls in MODELS.items():
            model = model_cls()
            for query in QUERIES:
                tree = parse_irs_query(
                    query, default_operator=model.default_operator
                )
                assert_bit_identical(
                    model.score(sharded, tree),
                    model.score(plain, tree),
                    f"{model_name}/{query}/shards={shard_count}",
                )

    @_SETTINGS
    @given(_documents)
    def test_segmented_shards_bit_identical(self, documents):
        # Each shard running its own memtable/seal lifecycle must not
        # change a single bit either.
        texts = [" ".join(words) for words in documents]
        plain, sharded = build_pair(
            texts, 3, segment_config=SegmentConfig(seal_document_count=4)
        )
        model = MODELS["inquery"]()
        for query in QUERIES:
            tree = parse_irs_query(
                query, default_operator=model.default_operator
            )
            assert_bit_identical(
                model.score(sharded, tree),
                model.score(plain, tree),
                f"segmented-shards/{query}",
            )


class TestTopKEquivalence:
    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    @pytest.mark.parametrize("model_name", sorted(MODELS))
    @_SETTINGS
    @given(_documents)
    def test_topk_bit_identical_with_ties_at_k(
        self, shard_count, model_name, documents
    ):
        # Double the corpus: every document exists twice, so every score
        # is tied — k routinely lands *inside* a tie group and the
        # (-value, doc_id) tie-break must agree across layouts.
        texts = [" ".join(words) for words in documents] * 2
        plain, sharded = build_pair(texts, shard_count)
        model = MODELS[model_name]()
        for query in QUERIES:
            tree = parse_irs_query(
                query, default_operator=model.default_operator
            )
            for k in TOP_KS:
                assert_bit_identical(
                    engine_topk(sharded, model_name, model, tree, k),
                    engine_topk(plain, model_name, model, tree, k),
                    f"{model_name}/{query}/k={k}/shards={shard_count}",
                )


class TestEquivalenceUnderUpdates:
    @pytest.mark.parametrize("shard_count", [2, 4])
    @_SETTINGS
    @given(_documents, _operations)
    def test_interleaved_updates_and_deletes(
        self, shard_count, documents, operations
    ):
        texts = [" ".join(words) for words in documents]
        plain, sharded = build_pair(texts, shard_count)
        models = [(name, MODELS[name]()) for name in ("vector", "inquery")]
        trees = {
            name: parse_irs_query("www nii", default_operator=model.default_operator)
            for name, model in models
        }
        for op, payload in operations:
            live = sorted(plain._documents)
            if op == "add":
                text = " ".join(payload)
                assert plain.add_document(text) == sharded.add_document(text)
            elif op == "remove" and live:
                victim = live[payload % len(live)]
                plain.remove_document(victim)
                sharded.remove_document(victim)
            elif op == "replace" and live:
                position, words = payload
                victim = live[position % len(live)]
                text = " ".join(words)
                plain.replace_document(victim, text)
                sharded.replace_document(victim, text)
            # Equality must hold at *every* intermediate state, not just
            # the final one — a stale shard statistic would surface here.
            for name, model in models:
                assert_bit_identical(
                    model.score(sharded, trees[name]),
                    model.score(plain, trees[name]),
                    f"{name}/after-{op}",
                )
                assert_bit_identical(
                    engine_topk(sharded, name, model, trees[name], 10),
                    engine_topk(plain, name, model, trees[name], 10),
                    f"{name}/topk-after-{op}",
                )
        assert set(plain._documents) == set(sharded._documents)
