"""Failure injection: torn WAL tails, corrupt logs, crash windows."""

import os

import pytest

from repro.errors import RecoveryError
from repro.oodb import Database
from repro.oodb.wal import WriteAheadLog


def make_db(path):
    db = Database(directory=path)
    if not db.schema.has_class("Doc"):
        db.define_class("Doc", attributes={"n": "INT"})
    return db


class TestTornTail:
    def test_truncated_last_record_is_dropped(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", n=1)
        db._wal.close()
        wal_path = os.path.join(path, "wal.log")
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"lsn": 99, "kind": "WRITE", "txn"')  # torn mid-write
        recovered = make_db(path)
        assert [o.get("n") for o in recovered.instances_of("Doc")] == [1]
        recovered.close()

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", n=1)
        db.create_object("Doc", n=2)
        db._wal.close()
        wal_path = os.path.join(path, "wal.log")
        lines = open(wal_path, "r", encoding="utf-8").read().splitlines()
        lines[1] = "GARBAGE NOT JSON"
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError):
            Database(directory=path)

    def test_torn_tail_of_uncommitted_txn_loses_nothing(self, tmp_path):
        # The torn record necessarily belongs to an uncommitted transaction,
        # because COMMIT records are fsynced before append() returns.
        path = str(tmp_path)
        db = make_db(path)
        committed = db.create_object("Doc", n=1)
        db._wal.close()
        wal_path = os.path.join(path, "wal.log")
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"lsn": 50, "kind": "BEGIN", "txn": 77, "payload": {}}\n')
            fh.write('{"lsn": 51, "kind": "CREATE", "txn": 77, "pay')  # torn
        recovered = make_db(path)
        assert recovered.object_exists(committed.oid)
        assert len(recovered.instances_of("Doc")) == 1
        recovered.close()


class TestCrashWindows:
    def test_crash_before_first_checkpoint(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", n=5)
        db._wal.close()  # no snapshot ever written
        recovered = make_db(path)
        assert [o.get("n") for o in recovered.instances_of("Doc")] == [5]
        recovered.close()

    def test_crash_between_checkpoints(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", n=1)
        db.checkpoint()
        db.create_object("Doc", n=2)
        db.checkpoint()
        db.create_object("Doc", n=3)
        db._wal.close()
        recovered = make_db(path)
        assert sorted(o.get("n") for o in recovered.instances_of("Doc")) == [1, 2, 3]
        recovered.close()

    def test_double_recovery_is_idempotent(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", n=1)
        db._wal.close()
        once = make_db(path)
        state_once = sorted(o.get("n") for o in once.instances_of("Doc"))
        once._wal.close()
        twice = make_db(path)
        assert sorted(o.get("n") for o in twice.instances_of("Doc")) == state_once
        twice.close()

    def test_empty_wal_file(self, tmp_path):
        path = str(tmp_path)
        os.makedirs(path, exist_ok=True)
        open(os.path.join(path, "wal.log"), "w").close()
        db = make_db(path)
        assert db.object_count() == 0
        db.close()


class TestWALUnit:
    def test_reader_skips_blank_lines(self, tmp_path):
        wal_path = str(tmp_path / "wal.log")
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.write('{"lsn": 1, "kind": "BEGIN", "txn": 1, "payload": {}}\n\n\n')
        log = WriteAheadLog(wal_path)
        assert len(log) == 1
        log.close()
