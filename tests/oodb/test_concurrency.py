"""Concurrency: multi-threaded transactions against one database."""

import threading

import pytest

from repro.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.oodb import Database


@pytest.fixture
def db():
    d = Database(lock_timeout=2.0)
    d.define_class("Account", attributes={"balance": "INT"})
    return d


class TestParallelTransactions:
    def test_disjoint_writers_proceed_in_parallel(self, db):
        objs = [db.create_object("Account", balance=0) for _ in range(8)]
        errors = []

        def worker(start):
            try:
                with db.begin():
                    for obj in objs[start::2]:
                        obj.set("balance", obj.get("balance") + 1)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(obj.get("balance") == 1 for obj in objs)

    def test_conflicting_writers_serialize(self, db):
        obj = db.create_object("Account", balance=0)
        barrier = threading.Barrier(4, timeout=10)
        failures = []

        def worker():
            barrier.wait()
            for _ in range(5):
                try:
                    with db.begin():
                        obj.set("balance", obj.get("balance") + 1)
                except (DeadlockError, LockTimeoutError):
                    failures.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every successful increment is atomic under X locks.
        assert obj.get("balance") + len(failures) == 20

    def test_transfer_invariant_under_contention(self, db):
        accounts = [db.create_object("Account", balance=100) for _ in range(4)]
        total = sum(a.get("balance") for a in accounts)
        aborted = []

        def transfer(src, dst, amount):
            try:
                with db.begin():
                    # Deterministic lock order prevents deadlock.
                    first, second = sorted((src, dst), key=lambda o: o.oid)
                    first.get("balance")
                    second.get("balance")
                    src.set("balance", src.get("balance") - amount)
                    dst.set("balance", dst.get("balance") + amount)
            except (DeadlockError, LockTimeoutError):
                aborted.append(1)

        threads = []
        for i in range(12):
            src = accounts[i % 4]
            dst = accounts[(i + 1) % 4]
            threads.append(threading.Thread(target=transfer, args=(src, dst, 5)))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(a.get("balance") for a in accounts) == total

    def test_per_thread_transaction_state(self, db):
        results = {}

        def worker(name):
            txn = db.begin()
            results[name] = db.in_transaction()
            txn.rollback()

        thread = threading.Thread(target=worker, args=("other",))
        thread.start()
        thread.join()
        assert results["other"] is True
        assert not db.in_transaction()  # main thread unaffected

    def test_nested_begin_still_rejected_per_thread(self, db):
        with db.begin():
            with pytest.raises(TransactionError):
                db.begin()
