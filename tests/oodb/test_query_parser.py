"""Query language parser: AST shapes and error reporting."""

import pytest

from repro.errors import QuerySyntaxError
from repro.oodb.query.ast import (
    AttributeAccess,
    BooleanOp,
    Comparison,
    Literal,
    MethodCall,
    NotOp,
    Parameter,
    Variable,
)
from repro.oodb.query.parser import parse_query


class TestStructure:
    def test_minimal_query(self):
        query = parse_query("ACCESS p FROM p IN PARA")
        assert [r.variable for r in query.ranges] == ["p"]
        assert query.ranges[0].class_name == "PARA"
        assert query.select == [Variable("p")]
        assert query.where is None

    def test_multiple_ranges(self):
        query = parse_query("ACCESS d FROM d IN MMFDOC, p IN PARA")
        assert [(r.variable, r.class_name) for r in query.ranges] == [
            ("d", "MMFDOC"),
            ("p", "PARA"),
        ]

    def test_duplicate_range_variable_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("ACCESS p FROM p IN A, p IN B")

    def test_trailing_semicolon_optional(self):
        parse_query("ACCESS p FROM p IN PARA;")
        parse_query("ACCESS p FROM p IN PARA")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("ACCESS p FROM p IN PARA extra")

    def test_order_by_and_limit(self):
        query = parse_query("ACCESS p.n FROM p IN PARA ORDER BY p.n DESC LIMIT 3")
        assert query.order_desc
        assert query.limit == 3

    def test_order_by_asc_default(self):
        query = parse_query("ACCESS p FROM p IN PARA ORDER BY p.n")
        assert not query.order_desc


class TestExpressions:
    def test_method_call_with_args(self):
        query = parse_query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(coll, 'WWW') > 0.6"
        )
        comparison = query.where
        assert isinstance(comparison, Comparison)
        call = comparison.left
        assert isinstance(call, MethodCall)
        assert call.method == "getIRSValue"
        assert call.args == (Variable("coll"), Literal("WWW"))
        assert comparison.right == Literal(0.6)

    def test_chained_calls(self):
        query = parse_query("ACCESS p -> getNext() -> length() FROM p IN PARA")
        outer = query.select[0]
        assert isinstance(outer, MethodCall)
        assert outer.method == "length"
        assert isinstance(outer.target, MethodCall)

    def test_attribute_access(self):
        query = parse_query("ACCESS p.n FROM p IN PARA")
        assert query.select[0] == AttributeAccess(Variable("p"), "n")

    def test_parameter(self):
        query = parse_query("ACCESS p FROM p IN PARA WHERE p.n = $k")
        assert query.where.right == Parameter("k")

    def test_and_flattening(self):
        query = parse_query(
            "ACCESS p FROM p IN PARA WHERE p.n > 1 AND p.n < 5 AND p.n != 3"
        )
        assert len(query.conjuncts) == 3

    def test_or_precedence(self):
        query = parse_query("ACCESS p FROM p IN PARA WHERE p.n = 1 OR p.n = 2 AND p.n = 3")
        assert isinstance(query.where, BooleanOp)
        assert query.where.op == "OR"

    def test_parentheses_override_precedence(self):
        query = parse_query("ACCESS p FROM p IN PARA WHERE (p.n = 1 OR p.n = 2) AND p.n = 3")
        assert query.where.op == "AND"

    def test_not(self):
        query = parse_query("ACCESS p FROM p IN PARA WHERE NOT p.n = 1")
        assert isinstance(query.where, NotOp)

    def test_boolean_literals(self):
        query = parse_query("ACCESS p FROM p IN PARA WHERE p -> isLeaf() = TRUE")
        assert query.where.right == Literal(True)

    def test_null_literal(self):
        query = parse_query("ACCESS p FROM p IN PARA WHERE p.parent = NULL")
        assert query.where.right == Literal(None)

    def test_arithmetic(self):
        query = parse_query("ACCESS p -> length() * 2 + 1 FROM p IN PARA")
        assert query.select[0].op == "+"

    def test_free_identifiers_allowed(self):
        # collPara is not declared; it resolves from bindings at runtime.
        query = parse_query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'x') > 0.5"
        )
        assert "collPara" in query.where.variables()


class TestPaperQueries:
    def test_query_one_parses(self):
        parse_query(
            "ACCESS p, p -> length() FROM p IN PARA "
            "WHERE p -> getIRSValue (collPara, 'WWW') > 0.6;"
        )

    def test_query_two_parses(self):
        query = parse_query(
            "ACCESS d -> getAttributeValue ('TITLE') "
            "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
            "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
            "p1 -> getNext() == p2 AND "
            "p1 -> getContaining ('MMFDOC') == d AND "
            "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
            "p2 -> getIRSValue (collPara, 'NII') > 0.4;"
        )
        assert len(query.ranges) == 3
        assert len(query.conjuncts) == 5


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FROM p IN PARA",
            "ACCESS FROM p IN PARA",
            "ACCESS p",
            "ACCESS p FROM p",
            "ACCESS p FROM p IN",
            "ACCESS p FROM p IN PARA WHERE",
            "ACCESS p FROM p IN PARA WHERE p ->",
            "ACCESS p FROM p IN PARA WHERE p -> m(",
            "ACCESS p FROM p IN PARA LIMIT",
        ],
    )
    def test_malformed_queries_raise(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)
