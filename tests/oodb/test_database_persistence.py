"""Durable databases: checkpoints, WAL replay, schema restoration."""

import pytest

from repro.oodb import Database
from repro.oodb.oid import OID


def make_db(path):
    db = Database(directory=path)
    if not db.schema.has_class("Doc"):
        db.define_class("Doc", attributes={"title": "STRING", "n": "INT"})
    return db


class TestCheckpointRecovery:
    def test_snapshot_restores_objects(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", title="a", n=1)
        db.close()
        db2 = make_db(path)
        objs = db2.instances_of("Doc")
        assert [o.get("title") for o in objs] == ["a"]
        db2.close()

    def test_schema_structure_restored(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.close()
        db2 = Database(directory=path)
        assert db2.schema.has_class("Doc")
        assert db2.schema.resolve_attribute("Doc", "n").type_name == "INT"
        db2.close()

    def test_oids_not_reused_after_restart(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        first = db.create_object("Doc", n=1)
        db.close()
        db2 = make_db(path)
        second = db2.create_object("Doc", n=2)
        assert second.oid.value > first.oid.value
        db2.close()


class TestWALReplay:
    def test_uncheckpointed_committed_work_survives(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.checkpoint()
        db.create_object("Doc", title="late", n=9)
        db._wal.close()  # simulate crash: no close/checkpoint
        db2 = make_db(path)
        titles = sorted(o.get("title") for o in db2.instances_of("Doc"))
        assert titles == ["late"]
        db2.close()

    def test_aborted_transaction_not_replayed(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        txn = db.begin()
        db.create_object("Doc", title="ghost", n=1)
        txn.rollback()
        db._wal.close()
        db2 = make_db(path)
        assert db2.instances_of("Doc") == []
        db2.close()

    def test_open_transaction_not_replayed(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.begin()
        db.create_object("Doc", title="ghost", n=1)
        db._wal.close()  # crash with the transaction still open
        db2 = make_db(path)
        assert db2.instances_of("Doc") == []
        db2.close()

    def test_delete_replayed(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        obj = db.create_object("Doc", title="x", n=1)
        db.checkpoint()
        db.delete_object(obj)
        db._wal.close()
        db2 = make_db(path)
        assert not db2.object_exists(obj.oid)
        db2.close()

    def test_attribute_writes_replayed_in_order(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        obj = db.create_object("Doc", n=1)
        obj.set("n", 2)
        obj.set("n", 3)
        db._wal.close()
        db2 = make_db(path)
        assert db2.get_object(obj.oid).get("n") == 3
        db2.close()

    def test_oid_references_survive(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        a = db.create_object("Doc", n=1)
        b = db.create_object("Doc", n=2)
        a.set("title", "ref-holder")
        db.write_attribute(a.oid, "n", 5)
        a.set("ref", b.oid) if db.schema.has_attribute("Doc", "ref") else db.write_attribute(a.oid, "ref", b.oid)
        db._wal.close()
        db2 = make_db(path)
        assert db2.read_attribute(a.oid, "ref") == b.oid
        db2.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_object("Doc", n=1)
        assert len(db._wal) > 0
        db.checkpoint()
        assert len(db._wal) == 0
        db.close()


class TestIndexRecovery:
    def test_indexes_rebuilt_and_backfilled(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_index("Doc", "n")
        for i in range(5):
            db.create_object("Doc", n=i)
        db.close()
        db2 = make_db(path)
        index = db2.indexes.find("Doc", "n")
        assert index is not None
        objs = db2.instances_of("Doc")
        assert index.lookup(3) == {o.oid for o in objs if o.get("n") == 3}
        db2.close()

    def test_rebuilt_index_covers_wal_replayed_objects(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_index("Doc", "n")
        db.checkpoint()
        late = db.create_object("Doc", n=42)  # only in the WAL
        db._wal.close()
        db2 = make_db(path)
        assert db2.indexes.find("Doc", "n").lookup(42) == {late.oid}
        db2.close()

    def test_index_kind_preserved(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_index("Doc", "title", kind="hash")
        db.close()
        db2 = make_db(path)
        assert db2.indexes.find("Doc", "title").kind == "hash"
        db2.close()

    def test_queries_use_rebuilt_index(self, tmp_path):
        path = str(tmp_path)
        db = make_db(path)
        db.create_index("Doc", "n")
        db.create_object("Doc", n=9)
        db.close()
        db2 = make_db(path)
        plan = db2.explain("ACCESS d FROM d IN Doc WHERE d.n = 9")
        assert plan["variables"]["d"]["access_path"] == "index probe"
        assert db2.query("ACCESS d.n FROM d IN Doc WHERE d.n = 9") == [(9,)]
        db2.close()
