"""OID values and allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oodb.oid import OID, OIDAllocator


class TestOID:
    def test_string_round_trip(self):
        assert OID.parse(str(OID(42))) == OID(42)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            OID.parse("42")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            OID.parse("OIDabc")

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            OID(-1)

    def test_non_int_rejected(self):
        with pytest.raises(ValueError):
            OID("7")

    def test_ordering_follows_value(self):
        assert OID(1) < OID(2) < OID(10)

    def test_equality_and_hash(self):
        assert OID(5) == OID(5)
        assert len({OID(5), OID(5), OID(6)}) == 2

    @given(st.integers(min_value=0, max_value=10**12))
    def test_round_trip_property(self, value):
        assert OID.parse(str(OID(value))).value == value


class TestOIDAllocator:
    def test_allocations_are_distinct_and_increasing(self):
        allocator = OIDAllocator()
        oids = [allocator.allocate() for _ in range(100)]
        assert len(set(oids)) == 100
        assert oids == sorted(oids)

    def test_advance_to_skips_values(self):
        allocator = OIDAllocator()
        allocator.advance_to(50)
        assert allocator.allocate().value == 50

    def test_advance_to_never_goes_backwards(self):
        allocator = OIDAllocator()
        first = allocator.allocate()
        allocator.advance_to(0)
        assert allocator.allocate().value > first.value

    def test_high_water_mark_tracks_next(self):
        allocator = OIDAllocator(start=7)
        assert allocator.high_water_mark == 7
        allocator.allocate()
        assert allocator.high_water_mark == 8
