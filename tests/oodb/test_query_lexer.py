"""Query language tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.oodb.query.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)][:-1]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("access FROM Where")[0] == ("KEYWORD", "ACCESS")
        assert kinds("access FROM Where")[2] == ("KEYWORD", "WHERE")

    def test_identifiers_keep_case(self):
        assert kinds("collPara") == [("IDENT", "collPara")]

    def test_arrow_operator(self):
        assert ("OP", "->") in kinds("p -> length()")

    def test_comparison_operators(self):
        for op in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            assert ("OP", op) in kinds(f"a {op} b")

    def test_single_quoted_string(self):
        assert kinds("'WWW'") == [("STRING", "WWW")]

    def test_double_quoted_string(self):
        assert kinds('"NII"') == [("STRING", "NII")]

    def test_doubled_quote_escape(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    def test_integer_and_float(self):
        assert kinds("42 0.6") == [("NUMBER", "42"), ("NUMBER", "0.6")]

    def test_number_then_member_access(self):
        # "p.n" must not lex "n" into a number context
        assert kinds("p.n") == [("IDENT", "p"), ("OP", "."), ("IDENT", "n")]

    def test_parameter(self):
        assert kinds("$coll") == [("PARAM", "coll")]

    def test_empty_parameter_raises(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("$ x")

    def test_unexpected_character_raises(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a @ b")

    def test_paper_query_tokenizes(self):
        text = (
            "ACCESS p, p -> length() FROM p IN PARA "
            "WHERE p -> getIRSValue (collPara, 'WWW') > 0.6;"
        )
        tokens = tokenize(text)
        assert tokens[-1].kind == "EOF"
        assert ("STRING", "WWW") in [(t.kind, t.text) for t in tokens]
