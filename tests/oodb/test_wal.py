"""Write-ahead log: records, persistence, corruption handling."""

import os

import pytest

from repro.errors import RecoveryError
from repro.oodb import wal as w
from repro.oodb.wal import LogRecord, WriteAheadLog


class TestInMemoryLog:
    def test_lsns_monotone(self):
        log = WriteAheadLog()
        records = [log.append(w.BEGIN, 1), log.append(w.COMMIT, 1)]
        assert [r.lsn for r in records] == [1, 2]

    def test_committed_transactions(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, 1)
        log.append(w.COMMIT, 1)
        log.append(w.BEGIN, 2)
        log.append(w.ABORT, 2)
        assert log.committed_transactions() == {1}

    def test_truncate_clears(self):
        log = WriteAheadLog()
        log.append(w.BEGIN, 1)
        log.truncate()
        assert len(log) == 0


class TestFileLog:
    def test_records_survive_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as log:
            log.append(w.BEGIN, 1)
            log.append(w.WRITE, 1, {"oid": 3, "attr": "x", "value": 1})
            log.append(w.COMMIT, 1)
        reopened = WriteAheadLog(path)
        kinds = [r.kind for r in reopened.records()]
        assert kinds == [w.BEGIN, w.WRITE, w.COMMIT]
        reopened.close()

    def test_lsn_continues_after_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as log:
            log.append(w.BEGIN, 1)
        with WriteAheadLog(path) as log:
            record = log.append(w.BEGIN, 2)
            assert record.lsn == 2

    def test_truncate_empties_file(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append(w.BEGIN, 1)
        log.append(w.COMMIT, 1)
        log.truncate()
        log.close()
        assert os.path.getsize(path) == 0

    def test_payload_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        payload = {"oid": 9, "attr": "text", "value": {"__oid__": 4}}
        with WriteAheadLog(path) as log:
            log.append(w.WRITE, 5, payload)
        reopened = WriteAheadLog(path)
        assert next(iter(reopened.records())).payload == payload
        reopened.close()


class TestRecordParsing:
    def test_round_trip(self):
        record = LogRecord(3, w.WRITE, 7, {"a": 1})
        assert LogRecord.from_json(record.to_json()) == record

    def test_corrupt_json_raises(self):
        with pytest.raises(RecoveryError):
            LogRecord.from_json("{not json")

    def test_unknown_kind_raises(self):
        with pytest.raises(RecoveryError):
            LogRecord.from_json('{"lsn":1,"kind":"NOPE","txn":1,"payload":{}}')

    def test_missing_field_raises(self):
        with pytest.raises(RecoveryError):
            LogRecord.from_json('{"lsn":1,"kind":"BEGIN"}')
