"""ORDER BY over join results (the ordered-rows join path)."""

import pytest

from repro.oodb import Database


@pytest.fixture
def db():
    d = Database()
    d.define_class("Doc", attributes={"year": "STRING"})
    d.define_class("Para", attributes={"n": "INT", "doc": "OID"})
    d.schema.get_class("Para").add_method(
        "getDoc", lambda o: o.database.get_object(o.get("doc"))
    )
    d1 = d.create_object("Doc", year="1993")
    d2 = d.create_object("Doc", year="1994")
    for i in range(6):
        d.create_object("Para", n=i, doc=(d1 if i % 2 else d2).oid)
    return d


class TestOrderedJoins:
    def test_order_by_on_join(self, db):
        rows = db.query(
            "ACCESS d.year, p.n FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d ORDER BY p.n DESC"
        )
        assert [r[1] for r in rows] == [5, 4, 3, 2, 1, 0]

    def test_order_with_pushdown_filters(self, db):
        rows = db.query(
            "ACCESS p.n FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d AND d.year = '1994' AND p.n > 0 "
            "ORDER BY p.n"
        )
        assert rows == [(2,), (4,)]

    def test_order_limit_on_join(self, db):
        rows = db.query(
            "ACCESS d.year, p.n FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d ORDER BY p.n LIMIT 2"
        )
        assert rows == [("1994", 0), ("1993", 1)]

    def test_order_key_with_nulls_sorts_last(self, db):
        db.create_object("Para", n=None)
        rows = db.query("ACCESS p.n FROM p IN Para ORDER BY p.n")
        assert rows[-1] == (None,)
        assert [r[0] for r in rows[:-1]] == [0, 1, 2, 3, 4, 5]

    def test_order_by_expression(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para ORDER BY 0 - p.n LIMIT 1")
        assert rows == [(5,)]


class TestShellMain:
    def test_main_runs_script(self, monkeypatch, capsys, tmp_path):
        import io
        import sys as _sys

        from repro.shell import main

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(".mmf\n.quit\n")
        )
        monkeypatch.setattr("sys.stdin.isatty", lambda: False, raising=False)
        exit_code = main([])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "repro shell" in out
        assert "bye" in out

    def test_main_with_directory(self, monkeypatch, capsys, tmp_path):
        import io

        from repro.shell import main

        monkeypatch.setattr("sys.stdin", io.StringIO(".quit\n"))
        monkeypatch.setattr("sys.stdin.isatty", lambda: False, raising=False)
        assert main([str(tmp_path)]) == 0
        assert (tmp_path / "db").exists()
