"""Lock manager: modes, blocking, deadlock detection."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.oodb.locks import LockManager, LockMode


@pytest.fixture
def locks():
    return LockManager(timeout=0.5)


class TestGrants:
    def test_shared_locks_coexist(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        assert locks.holds(1, "r", LockMode.SHARED)
        assert locks.holds(2, "r", LockMode.SHARED)

    def test_exclusive_lock_granted_alone(self, locks):
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_reacquire_is_noop(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.SHARED)
        assert locks.held_resources(1) == {"r"}

    def test_lone_holder_upgrades(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_exclusive_implies_shared(self, locks):
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.SHARED)

    def test_release_all_frees_everything(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.SHARED)
        locks.release_all(1)
        assert locks.held_resources(1) == set()
        locks.acquire(2, "a", LockMode.EXCLUSIVE)  # no blocking


class TestConflicts:
    def test_exclusive_blocks_shared_until_release(self, locks):
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def attempt():
            locks.acquire(2, "r", LockMode.SHARED)
            acquired.set()

        thread = threading.Thread(target=attempt)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release_all(1)
        thread.join(timeout=1)
        assert acquired.is_set()

    def test_timeout_raises(self):
        locks = LockManager(timeout=0.05)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "r", LockMode.EXCLUSIVE)

    def test_holds_false_for_strangers(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        assert not locks.holds(2, "r")
        assert not locks.holds(1, "other")


class TestDeadlock:
    def test_two_party_deadlock_detected(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        failures = []
        done = threading.Barrier(3, timeout=5)

        def txn1():
            try:
                locks.acquire(1, "b", LockMode.EXCLUSIVE)
            except (DeadlockError, LockTimeoutError) as exc:
                failures.append(exc)
                locks.release_all(1)
            done.wait()

        def txn2():
            time.sleep(0.1)  # let txn1 start waiting first
            try:
                locks.acquire(2, "a", LockMode.EXCLUSIVE)
            except (DeadlockError, LockTimeoutError) as exc:
                failures.append(exc)
                locks.release_all(2)
            done.wait()

        t1 = threading.Thread(target=txn1)
        t2 = threading.Thread(target=txn2)
        t1.start()
        t2.start()
        done.wait()
        t1.join()
        t2.join()
        assert any(isinstance(f, DeadlockError) for f in failures)

    def test_self_wait_is_not_deadlock(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)  # upgrade: no other holder
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)
