"""Attribute indexes: maintenance, probes, catalog."""

import pytest

from repro.oodb import Database
from repro.oodb.indexes import BTreeIndex, HashIndex, IndexCatalog
from repro.oodb.oid import OID


class TestBTreeIndex:
    def test_lookup(self):
        index = BTreeIndex("X", "v")
        index.insert(5, OID(1))
        index.insert(5, OID(2))
        assert index.lookup(5) == {OID(1), OID(2)}

    def test_range(self):
        index = BTreeIndex("X", "v")
        for i in range(10):
            index.insert(i, OID(i))
        assert index.range(low=7) == {OID(7), OID(8), OID(9)}
        assert index.range(high=2, include_high=False) == {OID(0), OID(1)}

    def test_none_keys_skipped(self):
        index = BTreeIndex("X", "v")
        index.insert(None, OID(1))
        assert index.entry_count == 0

    def test_bool_keys_kept_distinct_from_ints(self):
        index = BTreeIndex("X", "v")
        index.insert(True, OID(1))
        index.insert(1, OID(2))
        assert index.lookup(True) == {OID(1)}
        assert index.lookup(1) == {OID(2)}

    def test_remove(self):
        index = BTreeIndex("X", "v")
        index.insert(5, OID(1))
        index.remove(5, OID(1))
        assert index.lookup(5) == set()


class TestHashIndex:
    def test_lookup_and_remove(self):
        index = HashIndex("X", "v")
        index.insert("a", OID(1))
        index.insert("a", OID(2))
        index.remove("a", OID(1))
        assert index.lookup("a") == {OID(2)}

    def test_no_range_support(self):
        index = HashIndex("X", "v")
        assert not index.supports_range()
        with pytest.raises(NotImplementedError):
            index.range(low=1)

    def test_entry_count(self):
        index = HashIndex("X", "v")
        index.insert("a", OID(1))
        index.insert("b", OID(2))
        assert index.entry_count == 2


class TestCatalog:
    def test_create_is_idempotent(self):
        catalog = IndexCatalog()
        first = catalog.create("X", "v")
        second = catalog.create("X", "v")
        assert first is second

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            IndexCatalog().create("X", "v", kind="bitmap")

    def test_covering_finds_first_match(self):
        catalog = IndexCatalog()
        created = catalog.create("Element", "tag")
        assert catalog.covering(["PARA", "Element"], "tag") is created
        assert catalog.covering(["PARA"], "tag") is None

    def test_drop(self):
        catalog = IndexCatalog()
        catalog.create("X", "v")
        catalog.drop("X", "v")
        assert catalog.find("X", "v") is None


class TestDatabaseIndexMaintenance:
    @pytest.fixture
    def db(self):
        d = Database()
        d.define_class("Base", attributes={"v": "INT"})
        d.define_class("Sub", superclass="Base")
        return d

    def test_backfill_on_create_index(self, db):
        objs = [db.create_object("Base", v=i) for i in range(5)]
        index = db.create_index("Base", "v")
        assert index.lookup(3) == {objs[3].oid}

    def test_index_covers_subclasses(self, db):
        db.create_index("Base", "v")
        sub = db.create_object("Sub", v=9)
        assert db.indexes.find("Base", "v").lookup(9) == {sub.oid}

    def test_write_updates_index(self, db):
        db.create_index("Base", "v")
        obj = db.create_object("Base", v=1)
        obj.set("v", 2)
        index = db.indexes.find("Base", "v")
        assert index.lookup(1) == set()
        assert index.lookup(2) == {obj.oid}

    def test_delete_unindexes(self, db):
        db.create_index("Base", "v")
        obj = db.create_object("Base", v=1)
        db.delete_object(obj)
        assert db.indexes.find("Base", "v").lookup(1) == set()

    def test_query_uses_index(self, db):
        db.create_index("Base", "v")
        for i in range(20):
            db.create_object("Base", v=i)
        plan = db.explain("ACCESS x FROM x IN Base WHERE x.v = 5")
        assert plan["variables"]["x"]["index_predicates"] == ["Base.v = 5"]
