"""Optimizer: index selection, join ordering, semantic restrictors."""

import pytest

from repro.oodb import Database
from repro.oodb.oid import OID
from repro.oodb.query.evaluator import QueryEvaluator
from repro.oodb.query.optimizer import (
    register_restrictor,
    restrictor_for,
    unregister_restrictor,
)


@pytest.fixture
def db():
    d = Database()
    d.define_class("Item", attributes={"v": "INT", "name": "STRING"})
    d.schema.get_class("Item").add_method(
        "getAttributeValue", lambda o, a: o.get(a)
    )
    d.schema.get_class("Item").add_method("score", lambda o, q: float(o.get("v")))
    for i in range(50):
        d.create_object("Item", v=i, name=f"item{i}")
    return d


class TestIndexSelection:
    def test_equality_uses_index(self, db):
        db.create_index("Item", "v")
        plan = db.explain("ACCESS x FROM x IN Item WHERE x.v = 7")
        assert plan["variables"]["x"]["index_predicates"] == ["Item.v = 7"]

    def test_range_uses_btree(self, db):
        db.create_index("Item", "v")
        plan = db.explain("ACCESS x FROM x IN Item WHERE x.v > 40")
        assert "Item.v > 40" in plan["variables"]["x"]["index_predicates"]

    def test_hash_index_not_used_for_range(self, db):
        db.create_index("Item", "name", kind="hash")
        plan = db.explain("ACCESS x FROM x IN Item WHERE x.name > 'a'")
        assert plan["variables"]["x"]["index_predicates"] == []
        assert plan["variables"]["x"]["residual_filters"] == 1

    def test_flipped_comparison_normalized(self, db):
        db.create_index("Item", "v")
        plan = db.explain("ACCESS x FROM x IN Item WHERE 7 = x.v")
        assert plan["variables"]["x"]["index_predicates"] == ["Item.v = 7"]

    def test_get_attribute_value_recognized(self, db):
        db.create_index("Item", "v")
        plan = db.explain(
            "ACCESS x FROM x IN Item WHERE x -> getAttributeValue('v') = 7"
        )
        assert plan["variables"]["x"]["index_predicates"] == ["Item.v = 7"]

    def test_no_index_means_filter(self, db):
        plan = db.explain("ACCESS x FROM x IN Item WHERE x.v = 7")
        assert plan["variables"]["x"]["index_predicates"] == []
        assert plan["variables"]["x"]["residual_filters"] == 1

    def test_indexed_result_correct(self, db):
        db.create_index("Item", "v")
        rows = db.query("ACCESS x.v FROM x IN Item WHERE x.v >= 47")
        assert sorted(r[0] for r in rows) == [47, 48, 49]

    def test_parameter_constant_usable(self, db):
        db.create_index("Item", "v")
        evaluator = QueryEvaluator(db)
        rows, stats = evaluator.run_with_stats(
            "ACCESS x.v FROM x IN Item WHERE x.v = $k", {"k": 5}
        )
        assert rows == [(5,)]
        assert stats.index_probes == 1


class TestJoinBehaviour:
    def test_multi_variable_conjunct_becomes_join_predicate(self, db):
        plan = db.explain(
            "ACCESS a, b FROM a IN Item, b IN Item WHERE a.v = b.v"
        )
        assert plan["join_conjuncts"] == 1

    def test_selective_variable_drives_join(self, db):
        db.create_index("Item", "v")
        evaluator = QueryEvaluator(db)
        _rows, stats = evaluator.run_with_stats(
            "ACCESS a, b FROM a IN Item, b IN Item WHERE a.v = 1 AND a.v = b.v"
        )
        # a is restricted to 1 candidate by the index; tuples examined should
        # be far below the 50*50 cross product.
        assert stats.tuples_examined <= 51 + 1


class TestRestrictors:
    def test_registered_restrictor_is_used(self, db):
        calls = []

        def restrict(database, args, op, constant):
            calls.append((args, op, constant))
            return {
                obj.oid
                for obj in database.instances_of("Item")
                if float(obj.get("v")) > constant
            }

        register_restrictor("score", restrict)
        try:
            evaluator = QueryEvaluator(db)
            rows, stats = evaluator.run_with_stats(
                "ACCESS x.v FROM x IN Item WHERE x -> score('q') > 47"
            )
            assert sorted(r[0] for r in rows) == [48, 49]
            assert stats.restrictor_calls == 1
            assert stats.method_calls == 0  # never evaluated per object
            assert calls == [(("q",), ">", 47)]
        finally:
            unregister_restrictor("score")

    def test_declining_restrictor_falls_back(self, db):
        register_restrictor("score", lambda *a: None)
        try:
            rows = db.query("ACCESS x.v FROM x IN Item WHERE x -> score('q') > 47")
            assert sorted(r[0] for r in rows) == [48, 49]
        finally:
            unregister_restrictor("score")

    def test_unregistered_method_evaluates_per_object(self, db):
        assert restrictor_for("score") is None
        evaluator = QueryEvaluator(db)
        _rows, stats = evaluator.run_with_stats(
            "ACCESS x FROM x IN Item WHERE x -> score('q') > 47"
        )
        assert stats.method_calls == 50
