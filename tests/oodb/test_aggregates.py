"""Aggregate functions and GROUP BY in the query language."""

import pytest

from repro.errors import QuerySyntaxError
from repro.oodb import Database


@pytest.fixture
def db():
    d = Database()
    d.define_class("Doc", attributes={"year": "STRING"})
    d.define_class("Para", attributes={"n": "INT", "doc": "OID", "label": "STRING"})
    d.schema.get_class("Para").add_method(
        "getDoc", lambda o: o.database.get_object(o.get("doc"))
    )
    d1 = d.create_object("Doc", year="1993")
    d2 = d.create_object("Doc", year="1994")
    for i in range(6):
        d.create_object("Para", n=i, doc=(d1 if i % 2 else d2).oid, label=f"p{i}")
    d.docs = (d1, d2)
    return d


class TestWholeResultAggregates:
    def test_count_star(self, db):
        assert db.query("ACCESS COUNT(*) FROM p IN Para") == [(6,)]

    def test_count_expr_skips_nulls(self, db):
        db.create_object("Para", n=None)
        assert db.query("ACCESS COUNT(p.n) FROM p IN Para") == [(6,)]
        assert db.query("ACCESS COUNT(*) FROM p IN Para") == [(7,)]

    def test_sum_avg_min_max(self, db):
        rows = db.query(
            "ACCESS SUM(p.n), AVG(p.n), MIN(p.n), MAX(p.n) FROM p IN Para"
        )
        assert rows == [(15.0, 2.5, 0, 5)]

    def test_aggregate_with_where(self, db):
        rows = db.query("ACCESS COUNT(*) FROM p IN Para WHERE p.n >= 4")
        assert rows == [(2,)]

    def test_empty_result_aggregates(self, db):
        rows = db.query(
            "ACCESS COUNT(*), SUM(p.n), AVG(p.n), MIN(p.n) FROM p IN Para WHERE p.n > 99"
        )
        assert rows == []  # no tuples at all -> no groups

    def test_min_max_over_strings(self, db):
        rows = db.query("ACCESS MIN(p.label), MAX(p.label) FROM p IN Para")
        assert rows == [("p0", "p5")]

    def test_aggregate_of_method_result(self, db):
        rows = db.query("ACCESS MAX(p.n * 10) FROM p IN Para")
        assert rows == [(50,)]


class TestGroupBy:
    def test_group_by_object(self, db):
        rows = db.query(
            "ACCESS d.year, COUNT(*) FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d GROUP BY d"
        )
        assert sorted(rows) == [("1993", 3), ("1994", 3)]

    def test_group_by_attribute(self, db):
        rows = db.query(
            "ACCESS d.year, AVG(p.n) FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d GROUP BY d.year"
        )
        assert sorted(rows) == [("1993", 3.0), ("1994", 2.0)]

    def test_group_preserves_first_seen_order(self, db):
        rows = db.query(
            "ACCESS p.n, COUNT(*) FROM p IN Para GROUP BY p.n LIMIT 3"
        )
        assert rows == [(0, 1), (1, 1), (2, 1)]

    def test_limit_applies_to_groups(self, db):
        rows = db.query(
            "ACCESS d.year, COUNT(*) FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d GROUP BY d LIMIT 1"
        )
        assert len(rows) == 1


class TestValidation:
    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(QuerySyntaxError):
            db.query("ACCESS p FROM p IN Para GROUP BY p.n")

    def test_order_by_with_aggregate_rejected(self, db):
        with pytest.raises(QuerySyntaxError):
            db.query("ACCESS COUNT(*) FROM p IN Para ORDER BY p.n")

    def test_count_requires_parenthesis(self, db):
        with pytest.raises(QuerySyntaxError):
            db.query("ACCESS COUNT * FROM p IN Para")


class TestMixedQueryAggregates:
    """Aggregates compose with the coupling: counting relevant elements."""

    def test_count_relevant_paragraphs_per_document(self, mmf_system, para_collection):
        rows = mmf_system.query(
            "ACCESS d -> getAttributeValue('TITLE'), COUNT(*) "
            "FROM d IN MMFDOC, p IN PARA "
            "WHERE p -> getContaining('MMFDOC') == d AND "
            "p -> getIRSValue(c, 'telnet') > 0.45 GROUP BY d",
            {"c": para_collection},
        )
        assert rows == [("Telnet", 2)]

    def test_average_relevance(self, mmf_system, para_collection):
        rows = mmf_system.query(
            "ACCESS AVG(p -> getIRSValue(c, 'nii')) FROM p IN PARA",
            {"c": para_collection},
        )
        assert 0.0 <= rows[0][0] <= 1.0
