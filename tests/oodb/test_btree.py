"""B-tree: operations plus invariant-preserving property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oodb.btree import BTree


class TestBasicOperations:
    def test_insert_and_get(self):
        tree = BTree(min_degree=2)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == {"a", "b"}

    def test_get_missing_returns_empty(self):
        assert BTree().get(99) == set()

    def test_contains(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "x")
        assert 1 in tree
        assert 2 not in tree

    def test_len_counts_distinct_keys(self):
        tree = BTree(min_degree=2)
        for key in [3, 1, 2, 1, 3]:
            tree.insert(key, f"v{key}")
        assert len(tree) == 3

    def test_entry_count_counts_pairs(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        tree.insert(1, "b")
        tree.insert(2, "a")
        assert tree.entry_count == 3

    def test_duplicate_pair_is_idempotent(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        tree.insert(1, "a")
        assert tree.entry_count == 1

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)


class TestOrderedIteration:
    def test_items_sorted(self):
        tree = BTree(min_degree=2)
        for key in [9, 3, 7, 1, 5]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_range_inclusive(self):
        tree = BTree(min_degree=2)
        for key in range(10):
            tree.insert(key, key)
        assert [k for k, _ in tree.range(3, 6)] == [3, 4, 5, 6]

    def test_range_exclusive_bounds(self):
        tree = BTree(min_degree=2)
        for key in range(10):
            tree.insert(key, key)
        keys = [k for k, _ in tree.range(3, 6, include_low=False, include_high=False)]
        assert keys == [4, 5]

    def test_range_open_ended(self):
        tree = BTree(min_degree=2)
        for key in range(5):
            tree.insert(key, key)
        assert [k for k, _ in tree.range(low=3)] == [3, 4]
        assert [k for k, _ in tree.range(high=1)] == [0, 1]

    def test_height_grows_logarithmically(self):
        tree = BTree(min_degree=2)
        for key in range(100):
            tree.insert(key, key)
        assert tree.height() <= 7  # 2-3-4 tree of 100 keys


class TestDeletion:
    def test_remove_value_keeps_key_with_remaining_values(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.get(1) == {"b"}

    def test_remove_last_value_drops_key(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        assert tree.remove(1, "a")
        assert 1 not in tree
        assert len(tree) == 0

    def test_remove_missing_returns_false(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "a")
        assert not tree.remove(1, "zz")
        assert not tree.remove(9, "a")

    def test_remove_everything_in_insertion_order(self):
        tree = BTree(min_degree=2)
        keys = list(range(50))
        for key in keys:
            tree.insert(key, key)
        for key in keys:
            assert tree.remove(key, key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_remove_everything_in_reverse_order(self):
        tree = BTree(min_degree=2)
        keys = list(range(50))
        for key in keys:
            tree.insert(key, key)
        for key in reversed(keys):
            assert tree.remove(key, key)
            tree.check_invariants()
        assert len(tree) == 0


@st.composite
def operations(draw):
    """A sequence of insert/remove operations over a small key space."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove"]),
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=200,
        )
    )
    return ops


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(operations(), st.integers(min_value=2, max_value=5))
    def test_matches_reference_dict_and_keeps_invariants(self, ops, degree):
        tree = BTree(min_degree=degree)
        reference = {}
        for op, key, value in ops:
            if op == "insert":
                tree.insert(key, value)
                reference.setdefault(key, set()).add(value)
            else:
                removed = tree.remove(key, value)
                expected = key in reference and value in reference[key]
                assert removed == expected
                if expected:
                    reference[key].discard(value)
                    if not reference[key]:
                        del reference[key]
        tree.check_invariants()
        assert dict(tree.items()) == reference
        assert len(tree) == len(reference)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), unique=True, max_size=120))
    def test_iteration_always_sorted(self, keys):
        tree = BTree(min_degree=3)
        for key in keys:
            tree.insert(key, "v")
        listed = [k for k, _ in tree.items()]
        assert listed == sorted(keys)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 100), unique=True, min_size=1, max_size=60),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    def test_range_matches_filter(self, keys, a, b):
        low, high = min(a, b), max(a, b)
        tree = BTree(min_degree=2)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range(low, high)]
        assert got == sorted(k for k in keys if low <= k <= high)
