"""Query evaluation: scans, joins, methods, ordering, errors."""

import pytest

from repro.errors import QueryEvaluationError
from repro.oodb import Database
from repro.oodb.query.evaluator import QueryEvaluator


@pytest.fixture
def db():
    d = Database()
    d.define_class("Doc", attributes={"year": "STRING", "title": "STRING"})
    d.define_class("Para", attributes={"text": "STRING", "doc": "OID", "n": "INT"})
    d.schema.get_class("Para").add_method("length", lambda o: len(o.get("text") or ""))
    d.schema.get_class("Para").add_method(
        "getDoc", lambda o: o.database.get_object(o.get("doc"))
    )
    docs = [
        d.create_object("Doc", year="1993", title="Telnet"),
        d.create_object("Doc", year="1994", title="Web"),
    ]
    for i in range(6):
        d.create_object(
            "Para", text=f"text {i}", doc=docs[i % 2].oid, n=i
        )
    d.docs = docs
    return d


class TestSelection:
    def test_full_scan(self, db):
        rows = db.query("ACCESS p FROM p IN Para")
        assert len(rows) == 6

    def test_equality_filter(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n = 3")
        assert rows == [(3,)]

    def test_range_filter(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n >= 4")
        assert sorted(rows) == [(4,), (5,)]

    def test_not_equal(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n != 0 AND p.n <> 1")
        assert sorted(r[0] for r in rows) == [2, 3, 4, 5]

    def test_method_call_in_where(self, db):
        rows = db.query("ACCESS p FROM p IN Para WHERE p -> length() = 6")
        assert len(rows) == 6  # "text N" is six characters

    def test_projection_of_multiple_columns(self, db):
        rows = db.query("ACCESS p.n, p -> length() FROM p IN Para WHERE p.n = 1")
        assert rows == [(1, 6)]

    def test_or_condition(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n = 0 OR p.n = 5")
        assert sorted(rows) == [(0,), (5,)]

    def test_not_condition(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE NOT (p.n < 4)")
        assert sorted(rows) == [(4,), (5,)]

    def test_arithmetic_projection(self, db):
        rows = db.query("ACCESS p.n * 2 + 1 FROM p IN Para WHERE p.n = 3")
        assert rows == [(7,)]


class TestJoins:
    def test_join_on_method_result(self, db):
        rows = db.query(
            "ACCESS d.title, p.n FROM d IN Doc, p IN Para "
            "WHERE p -> getDoc() == d AND d.year = '1994'"
        )
        assert sorted(rows) == [("Web", 1), ("Web", 3), ("Web", 5)]

    def test_cross_product_without_predicate(self, db):
        rows = db.query("ACCESS d, p FROM d IN Doc, p IN Para")
        assert len(rows) == 12

    def test_self_join(self, db):
        rows = db.query(
            "ACCESS p1.n, p2.n FROM p1 IN Para, p2 IN Para "
            "WHERE p1.n + 1 = p2.n AND p1.n >= 4"
        )
        assert rows == [(4, 5)]


class TestOrderingAndLimit:
    def test_order_by_desc(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para ORDER BY p.n DESC")
        assert [r[0] for r in rows] == [5, 4, 3, 2, 1, 0]

    def test_order_by_method(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para ORDER BY p.n ASC LIMIT 2")
        assert rows == [(0,), (1,)]

    def test_limit_without_order(self, db):
        rows = db.query("ACCESS p FROM p IN Para LIMIT 4")
        assert len(rows) == 4


class TestBindings:
    def test_parameter_binding(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n = $k", {"k": 2})
        assert rows == [(2,)]

    def test_free_identifier_binding(self, db):
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n = threshold", {"threshold": 2})
        assert rows == [(2,)]

    def test_unbound_parameter_raises(self, db):
        with pytest.raises(QueryEvaluationError):
            db.query("ACCESS p FROM p IN Para WHERE p.n = $missing")

    def test_unknown_identifier_raises(self, db):
        with pytest.raises(QueryEvaluationError):
            db.query("ACCESS p FROM p IN Para WHERE p.n = mystery")


class TestErrors:
    def test_attribute_on_non_object(self, db):
        with pytest.raises(QueryEvaluationError):
            db.query("ACCESS p.n.m FROM p IN Para")

    def test_method_on_non_object(self, db):
        with pytest.raises(QueryEvaluationError):
            db.query("ACCESS p FROM p IN Para WHERE p.n -> f() = 1")

    def test_incomparable_types(self, db):
        with pytest.raises(QueryEvaluationError):
            db.query("ACCESS p FROM p IN Para WHERE p.text > 5")

    def test_null_ordering_comparison_is_false(self, db):
        db.create_object("Para", text=None, n=None)
        rows = db.query("ACCESS p FROM p IN Para WHERE p.n < 100")
        assert len(rows) == 6  # the NULL row never satisfies <

    def test_division_by_zero(self, db):
        with pytest.raises(QueryEvaluationError):
            db.query("ACCESS p.n / 0 FROM p IN Para")


class TestStats:
    def test_stats_counts_candidates_and_methods(self, db):
        evaluator = QueryEvaluator(db)
        _rows, stats = evaluator.run_with_stats(
            "ACCESS p FROM p IN Para WHERE p -> length() = 6"
        )
        assert stats.per_variable_candidates["p"] == 6
        assert stats.method_calls == 6
        assert stats.rows_produced == 6

    def test_subclass_extents_included(self, db):
        db.define_class("SubPara", superclass="Para")
        db.create_object("SubPara", text="sub", n=77)
        rows = db.query("ACCESS p.n FROM p IN Para WHERE p.n = 77")
        assert rows == [(77,)]
