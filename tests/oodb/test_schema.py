"""Class schema: definitions, inheritance, member resolution."""

import pytest

from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownMethodError,
)
from repro.oodb.oid import OID
from repro.oodb.schema import AttributeDefinition, Schema


@pytest.fixture
def schema():
    s = Schema()
    s.define_class("IRSObject", attributes={"default_collection": "OID"})
    s.define_class("Element", superclass="IRSObject", attributes={"tag": "STRING"})
    s.define_class("PARA", superclass="Element")
    return s


class TestClassDefinition:
    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_class("PARA")

    def test_unknown_superclass_rejected(self, schema):
        with pytest.raises(UnknownClassError):
            schema.define_class("X", superclass="NoSuchClass")

    def test_duplicate_attribute_rejected(self, schema):
        cdef = schema.get_class("PARA")
        cdef.add_attribute("n", "INT")
        with pytest.raises(SchemaError):
            cdef.add_attribute("n", "INT")

    def test_unknown_attribute_type_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDefinition("x", "FLOAT32")

    def test_class_names_in_definition_order(self, schema):
        assert schema.class_names() == ["IRSObject", "Element", "PARA"]


class TestInheritance:
    def test_ancestry_most_specific_first(self, schema):
        names = [c.name for c in schema.ancestry("PARA")]
        assert names == ["PARA", "Element", "IRSObject"]

    def test_is_subclass_reflexive_and_transitive(self, schema):
        assert schema.is_subclass("PARA", "PARA")
        assert schema.is_subclass("PARA", "IRSObject")
        assert not schema.is_subclass("IRSObject", "PARA")

    def test_subclasses_lists_whole_subtree(self, schema):
        assert set(schema.subclasses("IRSObject")) == {"IRSObject", "Element", "PARA"}
        assert schema.subclasses("PARA") == ["PARA"]

    def test_attribute_resolution_walks_up(self, schema):
        adef = schema.resolve_attribute("PARA", "default_collection")
        assert adef.type_name == "OID"

    def test_unknown_attribute_raises(self, schema):
        with pytest.raises(UnknownAttributeError):
            schema.resolve_attribute("PARA", "no_such")

    def test_method_override_wins(self, schema):
        schema.get_class("IRSObject").add_method("getText", lambda o: "base")
        schema.get_class("PARA").add_method("getText", lambda o: "para")
        assert schema.resolve_method("PARA", "getText")(None) == "para"
        assert schema.resolve_method("Element", "getText")(None) == "base"

    def test_unknown_method_raises(self, schema):
        with pytest.raises(UnknownMethodError):
            schema.resolve_method("PARA", "noSuchMethod")

    def test_all_attributes_merges_ancestry(self, schema):
        merged = schema.all_attributes("PARA")
        assert set(merged) == {"default_collection", "tag"}


class TestTypeChecking:
    @pytest.mark.parametrize(
        "type_name,good,bad",
        [
            ("STRING", "x", 5),
            ("INT", 5, "x"),
            ("REAL", 1.5, "x"),
            ("BOOL", True, 1),
            ("OID", OID(1), 1),
            ("LIST", [1], (1,)),
            ("DICT", {"a": 1}, [1]),
        ],
    )
    def test_check_accepts_and_rejects(self, type_name, good, bad):
        adef = AttributeDefinition("a", type_name)
        assert adef.check(good)
        assert not adef.check(bad)

    def test_none_always_accepted(self):
        assert AttributeDefinition("a", "INT").check(None)

    def test_any_accepts_everything(self):
        adef = AttributeDefinition("a", "ANY")
        assert adef.check(object())

    def test_int_rejects_bool(self):
        assert not AttributeDefinition("a", "INT").check(True)

    def test_real_accepts_int(self):
        assert AttributeDefinition("a", "REAL").check(3)
