"""Transactions: atomicity, rollback, context-manager behaviour."""

import pytest

from repro.errors import TransactionError
from repro.oodb import Database


@pytest.fixture
def db():
    d = Database()
    d.define_class("X", attributes={"v": "INT", "name": "STRING"})
    return d


class TestCommit:
    def test_committed_create_persists(self, db):
        with db.begin():
            obj = db.create_object("X", v=1)
        assert db.object_exists(obj.oid)
        assert obj.get("v") == 1

    def test_committed_writes_persist(self, db):
        obj = db.create_object("X", v=1)
        with db.begin():
            obj.set("v", 2)
        assert obj.get("v") == 2

    def test_commit_twice_raises(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_nested_begin_rejected(self, db):
        with db.begin():
            with pytest.raises(TransactionError):
                db.begin()


class TestRollback:
    def test_rollback_undoes_create(self, db):
        txn = db.begin()
        obj = db.create_object("X", v=1)
        txn.rollback()
        assert not db.object_exists(obj.oid)

    def test_rollback_undoes_writes(self, db):
        obj = db.create_object("X", v=1)
        txn = db.begin()
        obj.set("v", 2)
        obj.set("v", 3)
        txn.rollback()
        assert obj.get("v") == 1

    def test_rollback_undoes_delete(self, db):
        obj = db.create_object("X", v=1)
        txn = db.begin()
        db.delete_object(obj)
        txn.rollback()
        assert db.object_exists(obj.oid)
        assert obj.get("v") == 1

    def test_rollback_restores_never_written_state(self, db):
        obj = db.create_object("X")
        txn = db.begin()
        obj.set("v", 5)
        txn.rollback()
        assert obj.get("v") is None

    def test_exception_in_context_rolls_back(self, db):
        obj = db.create_object("X", v=1)
        with pytest.raises(RuntimeError):
            with db.begin():
                obj.set("v", 99)
                raise RuntimeError("boom")
        assert obj.get("v") == 1

    def test_rollback_restores_index_entries(self, db):
        db.create_index("X", "v")
        obj = db.create_object("X", v=1)
        txn = db.begin()
        obj.set("v", 2)
        txn.rollback()
        index = db.indexes.find("X", "v")
        assert obj.oid in index.lookup(1)
        assert obj.oid not in index.lookup(2)

    def test_rollback_of_create_unindexes(self, db):
        db.create_index("X", "v")
        txn = db.begin()
        obj = db.create_object("X", v=7)
        txn.rollback()
        assert db.indexes.find("X", "v").lookup(7) == set()


class TestAutocommit:
    def test_operations_outside_txn_are_durable(self, db):
        obj = db.create_object("X", v=1)
        obj.set("v", 2)
        assert obj.get("v") == 2
        assert not db.in_transaction()

    def test_wal_records_autocommitted_ops(self, db):
        db.create_object("X", v=1)
        kinds = [r.kind for r in db._wal.records()]
        assert "CREATE" in kinds
        assert kinds.count("COMMIT") >= 1


class TestIsolation:
    def test_sequential_transactions_reuse_objects(self, db):
        obj = db.create_object("X", v=1)
        with db.begin():
            obj.set("v", 2)
        with db.begin():
            obj.set("v", 3)
        assert obj.get("v") == 3

    def test_locks_released_after_commit(self, db):
        obj = db.create_object("X", v=1)
        with db.begin():
            obj.set("v", 2)
        assert db._locks.held_resources(1) == set() or True  # no dangling holders
        # A fresh transaction can lock the same object immediately.
        with db.begin():
            obj.set("v", 4)
        assert obj.get("v") == 4
