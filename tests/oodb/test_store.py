"""Object store: lifecycle, extents, snapshots, value encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ObjectNotFoundError
from repro.oodb.oid import OID
from repro.oodb.store import ObjectStore, decode_value, encode_value


@pytest.fixture
def store():
    s = ObjectStore()
    s.create(OID(1), "PARA")
    s.create(OID(2), "PARA")
    s.create(OID(3), "MMFDOC")
    return s


class TestLifecycle:
    def test_create_and_exists(self, store):
        assert store.exists(OID(1))
        assert not store.exists(OID(99))

    def test_duplicate_create_rejected(self, store):
        with pytest.raises(ValueError):
            store.create(OID(1), "PARA")

    def test_delete_removes(self, store):
        store.delete(OID(1))
        assert not store.exists(OID(1))
        with pytest.raises(ObjectNotFoundError):
            store.read(OID(1), "x")

    def test_restore_reinstates(self, store):
        store.write(OID(1), "text", "hello")
        stored = store.delete(OID(1))
        store.restore(OID(1), stored)
        assert store.read(OID(1), "text") == "hello"

    def test_len(self, store):
        assert len(store) == 3


class TestAttributes:
    def test_read_default(self, store):
        assert store.read(OID(1), "missing") is None
        assert store.read(OID(1), "missing", default=7) == 7

    def test_write_returns_previous(self, store):
        first = store.write(OID(1), "x", 1)
        second = store.write(OID(1), "x", 2)
        assert second == 1
        assert store.read(OID(1), "x") == 2
        # first is the missing sentinel; unwrite restores "never written"
        store.unwrite(OID(1), "x", first)
        assert not store.has_written(OID(1), "x")

    def test_unwrite_restores_value(self, store):
        store.write(OID(1), "x", 1)
        previous = store.write(OID(1), "x", 2)
        store.unwrite(OID(1), "x", previous)
        assert store.read(OID(1), "x") == 1

    def test_read_all_copies(self, store):
        store.write(OID(1), "x", 1)
        snapshot = store.read_all(OID(1))
        snapshot["x"] = 99
        assert store.read(OID(1), "x") == 1


class TestExtents:
    def test_extent_per_class(self, store):
        assert store.extent("PARA") == {OID(1), OID(2)}
        assert store.extent("MMFDOC") == {OID(3)}

    def test_extent_updates_on_delete(self, store):
        store.delete(OID(1))
        assert store.extent("PARA") == {OID(2)}

    def test_unknown_class_extent_empty(self, store):
        assert store.extent("NOPE") == set()


class TestSnapshots:
    def test_round_trip(self, store, tmp_path):
        store.write(OID(1), "text", "hello")
        store.write(OID(1), "ref", OID(3))
        store.write(OID(2), "children", [OID(1), OID(3)])
        path = str(tmp_path / "snap.json")
        store.snapshot(path, oid_high_water=10, schema_payload=[{"name": "PARA"}])
        fresh = ObjectStore()
        info = fresh.load_snapshot(path)
        assert info.oid_high_water == 10
        assert info.schema_payload == [{"name": "PARA"}]
        assert fresh.read(OID(1), "ref") == OID(3)
        assert fresh.read(OID(2), "children") == [OID(1), OID(3)]
        assert fresh.extent("PARA") == {OID(1), OID(2)}


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.builds(OID, st.integers(0, 10**6)),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=12,
)


class TestValueEncoding:
    @given(_value)
    def test_encode_decode_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_oid_encoding_shape(self):
        assert encode_value(OID(7)) == {"__oid__": 7}

    def test_nested_structures(self):
        value = {"a": [OID(1), {"b": (OID(2), 3)}]}
        assert decode_value(encode_value(value)) == value

    def test_plain_dict_passthrough(self):
        assert decode_value(encode_value({"k": 1})) == {"k": 1}
