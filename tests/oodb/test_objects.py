"""DBObject handles: identity, attributes, dispatch, navigation."""

import pytest

from repro.errors import ObjectNotFoundError, SchemaError, UnknownMethodError
from repro.oodb import Database
from repro.oodb.oid import OID


@pytest.fixture
def db():
    d = Database()
    d.define_class("Node", attributes={"name": "STRING", "next": "OID", "items": "LIST"})
    d.schema.get_class("Node").add_method("greet", lambda o, who="world": f"hi {who}")
    return d


class TestIdentity:
    def test_equality_by_oid(self, db):
        obj = db.create_object("Node", name="a")
        assert obj == db.get_object(obj.oid)
        assert hash(obj) == hash(db.get_object(obj.oid))

    def test_inequality(self, db):
        a = db.create_object("Node")
        b = db.create_object("Node")
        assert a != b
        assert a != "not an object"

    def test_repr_contains_class_and_oid(self, db):
        obj = db.create_object("Node")
        assert "Node" in repr(obj) and "OID" in repr(obj)


class TestAttributes:
    def test_get_set(self, db):
        obj = db.create_object("Node")
        obj.set("name", "x")
        assert obj.get("name") == "x"

    def test_type_check_enforced(self, db):
        obj = db.create_object("Node")
        with pytest.raises(SchemaError):
            obj.set("name", 42)

    def test_undeclared_attribute_allowed(self, db):
        obj = db.create_object("Node")
        obj.set("extra", {"free": "form"})
        assert obj.get("extra") == {"free": "form"}

    def test_attributes_snapshot(self, db):
        obj = db.create_object("Node", name="x")
        snapshot = obj.attributes()
        assert snapshot["name"] == "x"
        assert "next" in snapshot  # declared attrs appear with defaults

    def test_attribute_of_deleted_object_raises(self, db):
        obj = db.create_object("Node")
        db.delete_object(obj)
        with pytest.raises(ObjectNotFoundError):
            obj.get("name")


class TestDispatch:
    def test_send_with_kwargs(self, db):
        obj = db.create_object("Node")
        assert obj.send("greet") == "hi world"
        assert obj.send("greet", who="there") == "hi there"

    def test_unknown_method_raises(self, db):
        obj = db.create_object("Node")
        with pytest.raises(UnknownMethodError):
            obj.send("nope")

    def test_responds_to(self, db):
        obj = db.create_object("Node")
        assert obj.responds_to("greet")
        assert not obj.responds_to("nope")

    def test_isa(self, db):
        db.define_class("Special", superclass="Node")
        obj = db.create_object("Special")
        assert obj.isa("Node")
        assert obj.isa("Special")
        assert not obj.isa("COLLECTION") if db.schema.has_class("COLLECTION") else True


class TestNavigation:
    def test_deref(self, db):
        a = db.create_object("Node", name="a")
        b = db.create_object("Node", name="b")
        a.set("next", b.oid)
        assert a.deref("next") == b

    def test_deref_non_oid_raises(self, db):
        a = db.create_object("Node", name="a")
        with pytest.raises(SchemaError):
            a.deref("name")

    def test_deref_list(self, db):
        a = db.create_object("Node")
        b = db.create_object("Node")
        c = db.create_object("Node")
        a.set("items", [b.oid, c.oid])
        assert a.deref_list("items") == [b, c]

    def test_deref_list_empty_default(self, db):
        a = db.create_object("Node")
        assert a.deref_list("items") == []

    def test_deref_list_skips_non_oids(self, db):
        a = db.create_object("Node")
        b = db.create_object("Node")
        a.set("items", [b.oid, "junk", 3])
        assert a.deref_list("items") == [b]

    def test_database_property(self, db):
        obj = db.create_object("Node")
        assert obj.database is db
