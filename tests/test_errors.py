"""The exception hierarchy: one base, catchable by subsystem."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.UnknownClassError,
            errors.ObjectNotFoundError,
            errors.TransactionError,
            errors.DeadlockError,
            errors.LockTimeoutError,
            errors.QuerySyntaxError,
            errors.QueryEvaluationError,
            errors.RecoveryError,
        ],
    )
    def test_database_errors(self, exc):
        assert issubclass(exc, errors.DatabaseError)
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize(
        "exc",
        [
            errors.UnknownCollectionError,
            errors.DuplicateCollectionError,
            errors.IRSQuerySyntaxError,
            errors.UnknownOperatorError,
            errors.DocumentMissingError,
        ],
    )
    def test_retrieval_errors(self, exc):
        assert issubclass(exc, errors.RetrievalError)
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize(
        "exc",
        [errors.DTDSyntaxError, errors.SGMLSyntaxError, errors.ValidationError],
    )
    def test_sgml_errors(self, exc):
        assert issubclass(exc, errors.SGMLError)

    @pytest.mark.parametrize(
        "exc", [errors.NotIndexedError, errors.StalePropagationError]
    )
    def test_coupling_errors(self, exc):
        assert issubclass(exc, errors.CouplingError)

    def test_one_except_clause_catches_everything(self):
        # The property applications rely on: any repro failure is ReproError.
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_deadlock_is_a_transaction_error(self):
        # Applications retry transactions on DeadlockError specifically.
        with pytest.raises(errors.TransactionError):
            raise errors.DeadlockError("victim")
