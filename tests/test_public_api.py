"""Snapshot of the supported public surface.

If one of these assertions fails, the public API changed: that is either a
deliberate, documented decision (update the snapshot AND ``docs/api.md``),
or a regression this test just caught.
"""

from __future__ import annotations

import inspect

import repro
from repro.service.session import Session

EXPECTED_ALL = [
    "DocumentSystem",
    "ReproError",
    "ResultSet",
    "ScoredHit",
    "ServiceConfig",
    "Session",
    "__version__",
]

SESSION_SIGNATURES = {
    "__init__": "(self, source, workers=0, config=None)",
    "create_collection": "(self, name, spec_query='', **options)",
    "index": "(self, collection_obj, **options)",
    "propagate": "(self, collection_obj)",
    "remove": "(self, collection_obj, obj)",
    "query": "(self, collection_obj, irs_query, model=None, timeout=<unset>, top_k=None)",
    "query_batch": "(self, items, timeout=<unset>)",
    "find_value": "(self, collection_obj, irs_query, obj)",
    "execute": "(self, text, bindings=None, timeout=<unset>)",
    "explain": "(self, text, bindings=None)",
    "close": "(self)",
}

RESULT_SET_METHODS = {"from_values", "top", "oids", "scores", "to_dict"}


def _signature(fn) -> str:
    parts = []
    for name, parameter in inspect.signature(fn).parameters.items():
        if parameter.default is inspect.Parameter.empty:
            parts.append(name if parameter.kind != inspect.Parameter.VAR_KEYWORD else f"**{name}")
        elif type(parameter.default).__name__ == "object":
            parts.append(f"{name}=<unset>")
        else:
            parts.append(f"{name}={parameter.default!r}")
    return f"({', '.join(parts)})"


class TestPublicSurface:
    def test_repro_all_snapshot(self):
        assert sorted(repro.__all__) == sorted(EXPECTED_ALL)
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_session_is_the_exported_class(self):
        assert repro.Session is Session

    def test_session_method_signatures(self):
        for method, expected in SESSION_SIGNATURES.items():
            actual = _signature(getattr(Session, method))
            assert actual == expected, (
                f"Session.{method} signature drifted: {actual} != {expected}"
            )

    def test_session_has_no_unexpected_public_methods(self):
        public = {
            name
            for name, member in vars(Session).items()
            if not name.startswith("_") and callable(member)
        }
        assert public == set(SESSION_SIGNATURES) - {"__init__"}

    def test_result_set_surface(self):
        from repro import ResultSet, ScoredHit

        assert RESULT_SET_METHODS <= {
            name for name in vars(ResultSet) if not name.startswith("_")
        }
        hit = ScoredHit.__new__(ScoredHit)
        assert hasattr(type(hit), "element")
        assert set(ScoredHit.__slots__) >= {"oid", "score"}

    def test_version(self):
        assert repro.__version__ == "1.1.0"
