"""Snapshot of the supported public surface.

If one of these assertions fails, the public API changed: that is either a
deliberate, documented decision (update the snapshot AND ``docs/api.md``),
or a regression this test just caught.

Since PR 9 the surface is the *transport-agnostic Session contract*: the
local :class:`repro.Session`, the network :class:`repro.RemoteSession`
and the awaitable :class:`repro.AsyncSession` expose the same methods
with the same parameters — application code chooses a transport with
:func:`repro.connect`, nothing else changes.
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro.net.aio import AsyncSession
from repro.net.client import RemoteSession
from repro.service.session import Session

EXPECTED_ALL = [
    "AsyncSession",
    "DocumentServer",
    "DocumentSystem",
    "RemoteSession",
    "ReproError",
    "ResultSet",
    "ScoredHit",
    "ServiceConfig",
    "Session",
    "__version__",
    "connect",
]

#: The transport-agnostic contract: identical on every session flavour.
SESSION_CONTRACT = {
    "create_collection": "(self, name, spec_query='', **options)",
    "collection": "(self, name)",
    "collections": "(self)",
    "index": "(self, collection_obj, **options)",
    "propagate": "(self, collection_obj)",
    "remove": "(self, collection_obj, obj)",
    "query": "(self, collection_obj, irs_query, model=None, timeout=<unset>, top_k=None)",
    "query_batch": "(self, items, timeout=<unset>)",
    "find_value": "(self, collection_obj, irs_query, obj)",
    "execute": "(self, text, bindings=None, timeout=<unset>)",
    "ping": "(self)",
    "health": "(self, slo_seconds=None)",
    "checkpoint": "(self)",
    "close": "(self)",
}

#: Extras beyond the contract, per flavour.
SESSION_EXTRAS = {"explain"}  # trace objects do not cross the wire
REMOTE_EXTRAS = {"pool_stats"}

SESSION_SIGNATURES = dict(
    SESSION_CONTRACT,
    __init__="(self, source, workers=0, config=None)",
    explain="(self, text, bindings=None)",
)

RESULT_SET_METHODS = {"from_values", "top", "oids", "scores", "to_dict"}


def _signature(fn) -> str:
    parts = []
    for name, parameter in inspect.signature(fn).parameters.items():
        if parameter.default is inspect.Parameter.empty:
            parts.append(name if parameter.kind != inspect.Parameter.VAR_KEYWORD else f"**{name}")
        elif type(parameter.default).__name__ == "object":
            parts.append(f"{name}=<unset>")
        else:
            parts.append(f"{name}={parameter.default!r}")
    return f"({', '.join(parts)})"


def _public_methods(cls) -> set:
    return {
        name
        for name, member in vars(cls).items()
        if not name.startswith("_") and (callable(member) or isinstance(member, property))
    }


class TestPublicSurface:
    def test_repro_all_snapshot(self):
        assert sorted(repro.__all__) == sorted(EXPECTED_ALL)
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name!r}"

    def test_session_is_the_exported_class(self):
        assert repro.Session is Session
        assert repro.RemoteSession is RemoteSession
        assert repro.AsyncSession is AsyncSession

    def test_session_method_signatures(self):
        for method, expected in SESSION_SIGNATURES.items():
            actual = _signature(getattr(Session, method))
            assert actual == expected, (
                f"Session.{method} signature drifted: {actual} != {expected}"
            )

    def test_session_has_no_unexpected_public_methods(self):
        public = {
            name
            for name, member in vars(Session).items()
            if not name.startswith("_") and callable(member)
        }
        assert public == (set(SESSION_CONTRACT) | SESSION_EXTRAS)

    def test_result_set_surface(self):
        from repro import ResultSet, ScoredHit

        assert RESULT_SET_METHODS <= {
            name for name in vars(ResultSet) if not name.startswith("_")
        }
        hit = ScoredHit.__new__(ScoredHit)
        assert hasattr(type(hit), "element")
        assert set(ScoredHit.__slots__) >= {"oid", "score"}

    def test_version(self):
        assert repro.__version__ == "1.2.0"


class TestSessionContract:
    """Every transport exposes the same contract with the same parameters."""

    @pytest.mark.parametrize("method, expected", sorted(SESSION_CONTRACT.items()))
    def test_remote_session_matches_contract(self, method, expected):
        actual = _signature(getattr(RemoteSession, method))
        assert actual == expected, (
            f"RemoteSession.{method} drifted from the contract: "
            f"{actual} != {expected}"
        )

    @pytest.mark.parametrize("method, expected", sorted(SESSION_CONTRACT.items()))
    def test_async_session_matches_contract(self, method, expected):
        fn = getattr(AsyncSession, method)
        assert inspect.iscoroutinefunction(fn), f"AsyncSession.{method} must be async"
        actual = _signature(fn)
        assert actual == expected, (
            f"AsyncSession.{method} drifted from the contract: "
            f"{actual} != {expected}"
        )

    def test_remote_session_surface(self):
        assert _public_methods(RemoteSession) == (
            set(SESSION_CONTRACT) | REMOTE_EXTRAS | {"pooled"}
        )
        assert isinstance(vars(RemoteSession)["pooled"], property)
        assert isinstance(vars(RemoteSession)["pool_stats"], property)

    def test_async_session_surface(self):
        public = {
            name
            for name, member in vars(AsyncSession).items()
            if not name.startswith("_") and callable(member)
        }
        assert public == set(SESSION_CONTRACT)

    def test_remote_session_is_a_context_manager(self):
        assert hasattr(RemoteSession, "__enter__")
        assert hasattr(RemoteSession, "__exit__")
        assert hasattr(AsyncSession, "__aenter__")
        assert hasattr(AsyncSession, "__aexit__")


class TestConnect:
    """``repro.connect`` is the transport-agnostic front door."""

    def test_connect_signature(self):
        assert _signature(repro.connect) == (
            "(target, workers=0, config=None, asynchronous=False, **options)"
        )

    def test_connect_local_returns_system_session(self):
        with repro.DocumentSystem() as system:
            session = repro.connect(system)
            assert session is system.session

    def test_connect_pooled_opens_worker_session(self):
        with repro.DocumentSystem() as system:
            session = repro.connect(system, workers=2)
            assert session is not system.session
            assert session.pooled

    def test_connect_async_wraps_local(self):
        with repro.DocumentSystem() as system:
            session = repro.connect(system, asynchronous=True)
            assert isinstance(session, repro.AsyncSession)
            assert session.session is system.session

    def test_connect_rejects_workers_for_remote_target(self):
        with pytest.raises(ValueError, match="pool_size"):
            repro.connect("tcp://127.0.0.1:1", workers=4)
