"""Shared helpers for timing-sensitive tests.

Fixed ``time.sleep`` waits encode an assumption about machine speed; on a
loaded 1-2 core CI runner they either flake (too short) or waste wall
clock (too long).  :func:`wait_until` polls a predicate instead: it
returns as soon as the condition holds and only the *failure* case pays
the full timeout.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = 5.0,
    interval: float = 0.005,
    message: Optional[str] = None,
) -> None:
    """Poll ``predicate`` until it is truthy; fail the test on timeout.

    ``interval`` is the polling period (seconds).  ``message`` names the
    awaited condition in the failure output.
    """
    deadline = time.monotonic() + timeout
    while True:
        if predicate():
            return
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"condition not reached within {timeout}s"
            )
        time.sleep(interval)


def wait_for_value(
    supplier: Callable[[], object],
    timeout: float = 5.0,
    interval: float = 0.005,
    message: Optional[str] = None,
):
    """Poll ``supplier`` until it returns a truthy value; return that value."""
    deadline = time.monotonic() + timeout
    while True:
        value = supplier()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"no value produced within {timeout}s"
            )
        time.sleep(interval)
